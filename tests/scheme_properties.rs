//! Property-based integration tests of the scheme itself on random small
//! circuits: the coverage guarantee and the compaction invariants must
//! hold for *every* circuit, not just the benchmark suite. Seeded random
//! sampling replaces proptest (unavailable offline).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subseq_bist::core::{
    compact_set, run_scheme, select_subsequences, verify_full_coverage, SchemeConfig,
};
use subseq_bist::expand::expansion::{Expand, ExpansionConfig};
use subseq_bist::netlist::generate::GeneratorSpec;
use subseq_bist::netlist::Circuit;
use subseq_bist::sim::FaultSimulator;
use subseq_bist::tgen::{generate_t0, TgenConfig};

const CASES: usize = 12;

fn random_circuit(rng: &mut StdRng) -> Circuit {
    GeneratorSpec::new("scheme-prop")
        .inputs(rng.gen_range(2usize..=5))
        .outputs(2)
        .dffs(rng.gen_range(1usize..=5))
        .gates(rng.gen_range(8usize..=36))
        .seed(rng.gen::<u64>())
        .build()
        .expect("valid spec")
}

/// The central theorem of the paper, as a property: for any circuit
/// and any T0 with known coverage, the selected set's expansions
/// detect every fault T0 detects — before AND after compaction.
#[test]
fn selection_guarantee_holds() {
    let mut rng = StdRng::seed_from_u64(0x5c4e_3e01);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng);
        let seed = rng.gen::<u64>();
        let n = rng.gen_range(1usize..=4);
        let t0 =
            generate_t0(&c, &TgenConfig::new().seed(seed).max_length(128).compaction_budget(20))
                .expect("t0");
        if t0.coverage.detected_count() == 0 {
            continue;
        }
        let sim = FaultSimulator::new(&c);
        let expansion = ExpansionConfig::new(n).expect("valid");
        let selection = select_subsequences(&sim, &t0.sequence, &t0.coverage, &expansion, seed)
            .expect("selects");
        let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
        assert!(verify_full_coverage(&sim, &selection.sequences, &expansion, &detected)
            .expect("verifies"));

        let (compacted, _) = compact_set(&sim, selection.sequences.clone(), &detected, &expansion)
            .expect("compacts");
        assert!(compacted.len() <= selection.sequences.len());
        assert!(verify_full_coverage(&sim, &compacted, &expansion, &detected).expect("verifies"));
    }
}

/// Every selected sequence is a genuine achievement: its window ends
/// at its target's detection time and the sequence is no longer than
/// its window.
#[test]
fn selected_sequences_are_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x5c4e_3e02);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng);
        let seed = rng.gen::<u64>();
        let t0 =
            generate_t0(&c, &TgenConfig::new().seed(seed).max_length(96).compaction_budget(10))
                .expect("t0");
        if t0.coverage.detected_count() == 0 {
            continue;
        }
        let sim = FaultSimulator::new(&c);
        let expansion = ExpansionConfig::new(2).expect("valid");
        let selection = select_subsequences(&sim, &t0.sequence, &t0.coverage, &expansion, seed)
            .expect("selects");
        for sel in &selection.sequences {
            let (a, b) = sel.window;
            assert!(a <= b && b < t0.sequence.len());
            assert!(!sel.sequence.is_empty());
            assert!(sel.len() <= b - a + 1, "omission only shrinks");
            assert_eq!(
                t0.coverage.detection_time(sel.target),
                Some(b),
                "window ends at the target's udet"
            );
            // The defining property of Procedure 2, checked through the
            // streaming path the selection itself uses.
            assert!(sim
                .detects_stream(&expansion.stream(&sel.sequence), sel.target)
                .expect("simulates"));
        }
    }
}

/// The best-n rule returns a run minimizing max_len among the sweep.
#[test]
fn best_n_rule() {
    let mut rng = StdRng::seed_from_u64(0x5c4e_3e03);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng);
        let seed = rng.gen::<u64>();
        let t0 =
            generate_t0(&c, &TgenConfig::new().seed(seed).max_length(64).compaction_budget(10))
                .expect("t0");
        if t0.coverage.detected_count() == 0 {
            continue;
        }
        let sim = FaultSimulator::new(&c);
        let cfg = SchemeConfig::new().ns(vec![1, 2, 4]).seed(seed);
        let result = run_scheme(&sim, &t0.sequence, &t0.coverage, &cfg).expect("runs");
        let best = result.best_run();
        for run in &result.runs {
            assert!(best.after.max_len <= run.after.max_len);
        }
    }
}
