//! Property-based integration tests of the scheme itself on random small
//! circuits: the coverage guarantee and the compaction invariants must
//! hold for *every* circuit, not just the benchmark suite.

use proptest::prelude::*;
use subseq_bist::core::{
    compact_set, run_scheme, select_subsequences, verify_full_coverage, SchemeConfig,
};
use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::netlist::generate::GeneratorSpec;
use subseq_bist::netlist::Circuit;
use subseq_bist::sim::FaultSimulator;
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn circuits() -> impl Strategy<Value = Circuit> {
    (2usize..=5, 1usize..=5, 8usize..=36, any::<u64>()).prop_map(|(pis, ffs, gates, seed)| {
        GeneratorSpec::new("scheme-prop")
            .inputs(pis)
            .outputs(2)
            .dffs(ffs)
            .gates(gates)
            .seed(seed)
            .build()
            .expect("valid spec")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The central theorem of the paper, as a property: for any circuit
    /// and any T0 with known coverage, the selected set's expansions
    /// detect every fault T0 detects — before AND after compaction.
    #[test]
    fn selection_guarantee_holds(c in circuits(), n in 1usize..=4, seed in any::<u64>()) {
        let t0 = generate_t0(
            &c,
            &TgenConfig::new().seed(seed).max_length(128).compaction_budget(20),
        ).expect("t0");
        prop_assume!(t0.coverage.detected_count() > 0);
        let sim = FaultSimulator::new(&c);
        let expansion = ExpansionConfig::new(n).expect("valid");
        let selection =
            select_subsequences(&sim, &t0.sequence, &t0.coverage, &expansion, seed)
                .expect("selects");
        let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
        prop_assert!(verify_full_coverage(&sim, &selection.sequences, &expansion, &detected)
            .expect("verifies"));

        let (compacted, _) =
            compact_set(&sim, selection.sequences.clone(), &detected, &expansion)
                .expect("compacts");
        prop_assert!(compacted.len() <= selection.sequences.len());
        prop_assert!(verify_full_coverage(&sim, &compacted, &expansion, &detected)
            .expect("verifies"));
    }

    /// Every selected sequence is a genuine achievement: its window ends
    /// at its target's detection time and the sequence is no longer than
    /// its window.
    #[test]
    fn selected_sequences_are_well_formed(c in circuits(), seed in any::<u64>()) {
        let t0 = generate_t0(
            &c,
            &TgenConfig::new().seed(seed).max_length(96).compaction_budget(10),
        ).expect("t0");
        prop_assume!(t0.coverage.detected_count() > 0);
        let sim = FaultSimulator::new(&c);
        let expansion = ExpansionConfig::new(2).expect("valid");
        let selection =
            select_subsequences(&sim, &t0.sequence, &t0.coverage, &expansion, seed)
                .expect("selects");
        for sel in &selection.sequences {
            let (a, b) = sel.window;
            prop_assert!(a <= b && b < t0.sequence.len());
            prop_assert!(!sel.sequence.is_empty());
            prop_assert!(sel.len() <= b - a + 1, "omission only shrinks");
            prop_assert_eq!(
                t0.coverage.detection_time(sel.target),
                Some(b),
                "window ends at the target's udet"
            );
            // The defining property of Procedure 2.
            prop_assert!(sim
                .detects(&expansion.expand(&sel.sequence), sel.target)
                .expect("simulates"));
        }
    }

    /// The best-n rule returns a run minimizing max_len among the sweep.
    #[test]
    fn best_n_rule(c in circuits(), seed in any::<u64>()) {
        let t0 = generate_t0(
            &c,
            &TgenConfig::new().seed(seed).max_length(64).compaction_budget(10),
        ).expect("t0");
        prop_assume!(t0.coverage.detected_count() > 0);
        let sim = FaultSimulator::new(&c);
        let cfg = SchemeConfig::new().ns(vec![1, 2, 4]).seed(seed);
        let result = run_scheme(&sim, &t0.sequence, &t0.coverage, &cfg).expect("runs");
        let best = result.best_run();
        for run in &result.runs {
            prop_assert!(best.after.max_len <= run.after.max_len);
        }
    }
}
