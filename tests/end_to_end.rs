//! Cross-crate integration tests: the complete flow from netlist to
//! verified on-chip test session.

use subseq_bist::core::{
    run_scheme, verify_full_coverage, SchemeConfig,
};
use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::expand::hardware::OnChipExpander;
use subseq_bist::netlist::benchmarks::{self, suite};
use subseq_bist::sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};
use subseq_bist::tgen::{generate_t0, TgenConfig};

/// The paper's central guarantee, end to end on s27: generate T0, select
/// subsequences, and confirm the union of the *hardware-generated*
/// expansions detects every fault T0 detects.
#[test]
fn s27_hardware_expansions_cover_everything_t0_detects() {
    let circuit = benchmarks::s27();
    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(11)).expect("t0 generates");
    assert_eq!(t0.coverage.detected_count(), 32, "s27 is fully coverable");

    let sim = FaultSimulator::new(&circuit);
    let scheme = run_scheme(
        &sim,
        &t0.sequence,
        &t0.coverage,
        &SchemeConfig::new().ns(vec![2, 4]).seed(11),
    )
    .expect("scheme runs");
    let best = scheme.best_run();
    let expansion = ExpansionConfig::new(best.n).expect("valid n");

    // Stream every expansion through the cycle-accurate hardware model
    // and fault simulate the streamed sequences.
    let mut remaining: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
    let max_len = best.after.max_len.max(1);
    let mut hw = OnChipExpander::new(max_len, circuit.num_inputs(), expansion);
    for sel in &best.sequences {
        hw.load(&sel.sequence).expect("fits in the sized memory");
        let streamed = hw.run().expect("loaded");
        assert_eq!(streamed, expansion.expand(&sel.sequence), "hardware == software");
        let times = sim.detection_times(&streamed, &remaining).expect("simulates");
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    assert!(
        remaining.is_empty(),
        "{} faults escaped the hardware-applied session",
        remaining.len()
    );
}

/// The same guarantee on a mid-size synthetic analog, via the software
/// path (hardware equivalence is covered above and by property tests).
#[test]
fn synthetic_analog_scheme_guarantee() {
    let entry = &suite()[1]; // a298
    let circuit = entry.build().expect("builds");
    let t0 = generate_t0(
        &circuit,
        &TgenConfig::new().seed(5).max_length(256).compaction_budget(60),
    )
    .expect("t0 generates");
    assert!(t0.coverage.detected_count() > 0);

    let sim = FaultSimulator::new(&circuit);
    let scheme = run_scheme(
        &sim,
        &t0.sequence,
        &t0.coverage,
        &SchemeConfig::new().ns(vec![4]).seed(5),
    )
    .expect("scheme runs");
    let best = scheme.best_run();
    let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
    assert!(verify_full_coverage(
        &sim,
        &best.sequences,
        &ExpansionConfig::new(best.n).expect("valid"),
        &detected
    )
    .expect("verifies"));

    // The paper's two headline structural claims, qualitatively: the
    // loaded total is (much) shorter than T0 would be, and the memory
    // depth is a fraction of |T0|.
    assert!(best.after.total_len <= t0.sequence.len());
    assert!(best.after.max_len <= t0.sequence.len());
}

/// Collapsed fault classes behave identically through the whole pipeline:
/// targeting a representative also covers its class members.
#[test]
fn class_members_covered_by_representative_selection() {
    let circuit = benchmarks::s27();
    let universe = fault_universe(&circuit);
    let collapsed = collapse(&circuit, &universe);
    let sim = FaultSimulator::new(&circuit);
    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(3)).expect("t0");

    let scheme = run_scheme(
        &sim,
        &t0.sequence,
        &t0.coverage,
        &SchemeConfig::new().ns(vec![2]).seed(3),
    )
    .expect("scheme");
    let best = scheme.best_run();

    // Simulate the full *uncollapsed* universe under the expansions: every
    // fault whose representative was detected by T0 must be covered.
    let expansion = ExpansionConfig::new(best.n).expect("valid");
    let mut remaining = universe.clone();
    for sel in &best.sequences {
        let times = sim
            .detection_times(&expansion.expand(&sel.sequence), &remaining)
            .expect("simulates");
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    for f in remaining {
        let rep = collapsed.representative_of(f).expect("in universe");
        assert!(
            t0.coverage.detection_time(rep).is_none(),
            "fault {} escaped although its class was covered",
            f.describe(&circuit)
        );
    }
}

/// Determinism across the whole pipeline: identical seeds, identical
/// results (sequences, stats, coverage).
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let circuit = benchmarks::s27();
        let t0 = generate_t0(&circuit, &TgenConfig::new().seed(77)).expect("t0");
        let sim = FaultSimulator::new(&circuit);
        let scheme = run_scheme(
            &sim,
            &t0.sequence,
            &t0.coverage,
            &SchemeConfig::new().ns(vec![2, 8]).seed(77),
        )
        .expect("scheme");
        let best = scheme.best_run();
        (
            t0.sequence.to_string(),
            best.n,
            best.sequences
                .iter()
                .map(|s| s.sequence.to_string())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// The expanded sequences must work from the all-unknown state — no
/// dependence on the state left by previous subsequences. Shuffling the
/// application order must not lose coverage.
#[test]
fn subsequences_are_order_independent() {
    let circuit = benchmarks::s27();
    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(13)).expect("t0");
    let sim = FaultSimulator::new(&circuit);
    let scheme = run_scheme(
        &sim,
        &t0.sequence,
        &t0.coverage,
        &SchemeConfig::new().ns(vec![2]).seed(13),
    )
    .expect("scheme");
    let best = scheme.best_run();
    let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();

    let mut reversed = best.sequences.clone();
    reversed.reverse();
    assert!(verify_full_coverage(
        &sim,
        &reversed,
        &ExpansionConfig::new(best.n).expect("valid"),
        &detected
    )
    .expect("verifies"));
}

/// FaultCoverage::simulate and the simulator agree (API-level glue).
#[test]
fn coverage_api_consistency() {
    let circuit = benchmarks::s27();
    let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(&circuit);
    let t0: subseq_bist::expand::TestSequence =
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
    let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).expect("simulates");
    let times = sim.detection_times(&t0, &faults).expect("simulates");
    assert_eq!(cov.times(), &times[..]);
    assert_eq!(cov.detected_count(), 32);
}
