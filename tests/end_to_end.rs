//! Cross-crate integration tests: the complete flow from netlist to
//! verified on-chip test session, driven through the `Session` pipeline.

use subseq_bist::expand::expansion::{Expand, ExpansionConfig};
use subseq_bist::expand::hardware::OnChipExpander;
use subseq_bist::expand::TestSequence;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};
use subseq_bist::tgen::TgenConfig;
use subseq_bist::Session;

/// The paper's central guarantee, end to end on s27: generate T0, select
/// subsequences, and confirm the union of the *hardware-generated*
/// expansions detects every fault T0 detects.
#[test]
fn s27_hardware_expansions_cover_everything_t0_detects() {
    let report = Session::builder()
        .s27()
        .seed(11)
        .ns(vec![2, 4])
        .verify(false) // verified by hand below, through the hardware model
        .run()
        .expect("session runs");
    assert_eq!(report.coverage().detected_count(), 32, "s27 is fully coverable");

    let circuit = report.circuit();
    let sim = FaultSimulator::new(circuit);
    let best = report.best();
    let expansion = ExpansionConfig::new(best.n).expect("valid n");

    // Stream every expansion through the cycle-accurate hardware model
    // and fault simulate the streamed sequences.
    let mut remaining: Vec<_> = report.coverage().detected().map(|(f, _)| f).collect();
    let max_len = best.after.max_len.max(1);
    let mut hw = OnChipExpander::new(max_len, circuit.num_inputs(), expansion);
    for sel in &best.sequences {
        hw.load(&sel.sequence).expect("fits in the sized memory");
        let streamed = hw.run().expect("loaded");
        assert_eq!(streamed, expansion.expand(&sel.sequence), "hardware == software");
        // The lazy ExpansionIter must agree with the RTL model too.
        assert_eq!(
            streamed,
            TestSequence::from_vectors(expansion.stream(&sel.sequence).collect()).expect("uniform"),
            "hardware == streaming iterator"
        );
        let times = sim.detection_times(&streamed, &remaining).expect("simulates");
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    assert!(
        remaining.is_empty(),
        "{} faults escaped the hardware-applied session",
        remaining.len()
    );
}

/// The same guarantee on a mid-size synthetic analog, via the session's
/// own streamed verification (hardware equivalence is covered above and
/// by property tests).
#[test]
fn synthetic_analog_scheme_guarantee() {
    let report = Session::builder()
        .suite_circuit("a298")
        .tgen(TgenConfig::new().max_length(256).compaction_budget(60))
        .seed(5)
        .ns(vec![4])
        .run()
        .expect("session runs");
    assert!(report.coverage().detected_count() > 0);
    assert_eq!(report.verified(), Some(true));

    // The paper's two headline structural claims, qualitatively: the
    // loaded total is (much) shorter than T0 would be, and the memory
    // depth is a fraction of |T0|.
    let best = report.best();
    assert!(best.after.total_len <= report.t0().len());
    assert!(best.after.max_len <= report.t0().len());
    assert!(report.loaded_fraction() <= 1.0);
}

/// Collapsed fault classes behave identically through the whole pipeline:
/// targeting a representative also covers its class members.
#[test]
fn class_members_covered_by_representative_selection() {
    let report = Session::builder().s27().seed(3).ns(vec![2]).run().expect("session runs");
    let circuit = report.circuit();
    let universe = fault_universe(circuit);
    let collapsed = collapse(circuit, &universe);
    let sim = FaultSimulator::new(circuit);
    let best = report.best();

    // Simulate the full *uncollapsed* universe under the expansions: every
    // fault whose representative was detected by T0 must be covered. The
    // expansions are streamed, never materialized.
    let expansion = ExpansionConfig::new(best.n).expect("valid");
    let mut remaining = universe.clone();
    for sel in &best.sequences {
        let times = sim
            .detection_times_stream(&expansion.stream(&sel.sequence), &remaining)
            .expect("simulates");
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    for f in remaining {
        let rep = collapsed.representative_of(f).expect("in universe");
        assert!(
            report.coverage().detection_time(rep).is_none(),
            "fault {} escaped although its class was covered",
            f.describe(circuit)
        );
    }
}

/// Determinism across the whole pipeline: identical seeds, identical
/// results (sequences, stats, coverage).
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let report = Session::builder().s27().seed(77).ns(vec![2, 8]).run().expect("session runs");
        let best = report.best();
        (
            report.t0().to_string(),
            best.n,
            best.sequences.iter().map(|s| s.sequence.to_string()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// The expanded sequences must work from the all-unknown state — no
/// dependence on the state left by previous subsequences. Shuffling the
/// application order must not lose coverage.
#[test]
fn subsequences_are_order_independent() {
    let report = Session::builder().s27().seed(13).ns(vec![2]).run().expect("session runs");
    let sim = FaultSimulator::new(report.circuit());
    let best = report.best();
    let detected: Vec<_> = report.coverage().detected().map(|(f, _)| f).collect();

    let mut reversed = best.sequences.clone();
    reversed.reverse();
    assert!(subseq_bist::core::verify_full_coverage(
        &sim,
        &reversed,
        &ExpansionConfig::new(best.n).expect("valid"),
        &detected
    )
    .expect("verifies"));
}

/// A session over the scalar reference backend selects sequences with the
/// same coverage guarantee (and identical detection times drive identical
/// structure) — the backend is genuinely pluggable end to end.
#[test]
fn scalar_backend_session_end_to_end() {
    let t0: TestSequence =
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
    let packed =
        Session::builder().s27().t0(t0.clone()).ns(vec![1]).seed(0).run().expect("packed session");
    let scalar = Session::builder()
        .s27()
        .t0(t0)
        .ns(vec![1])
        .seed(0)
        .backend(subseq_bist::Backend::Scalar)
        .run()
        .expect("scalar session");
    assert_eq!(packed.verified(), Some(true));
    assert_eq!(scalar.verified(), Some(true));
    assert_eq!(packed.coverage().times(), scalar.coverage().times());
    let (p, s) = (packed.best(), scalar.best());
    assert_eq!(p.after.count, s.after.count);
    assert_eq!(p.after.total_len, s.after.total_len);
    assert_eq!(p.after.max_len, s.after.max_len);
}

/// Degenerate netlists must flow through the whole Session pipeline
/// without panicking: a zero-gate circuit (POs wired straight to a PI
/// and a DFF) and an explicit tiny T0. The scheme degenerates to the
/// identity — every fault is either detected by the pass-through
/// observations or reported undetected — and verification still holds.
#[test]
fn zero_gate_circuit_session_is_well_defined() {
    let mut b = subseq_bist::netlist::CircuitBuilder::new("zero_gate");
    b.add_input("a");
    b.add_dff("q", "a");
    b.add_output("a");
    b.add_output("q");
    let circuit = b.finish().expect("zero-gate circuit is valid");

    let t0: TestSequence = "1 0 1 1".parse().expect("valid");
    let report = Session::builder()
        .circuit(circuit)
        .t0(t0)
        .ns(vec![1, 2])
        .seed(3)
        .run()
        .expect("zero-gate session must not panic or error");
    // 4 stem faults, no branches; all collapse survivors detectable by
    // the mixed 0/1 stream through the direct PI/DFF observations.
    assert_eq!(report.coverage().total(), report.coverage().detected_count());
    assert_eq!(report.verified(), Some(true));
    // A generated-T0 session over the same circuit must also run.
    let generated = Session::builder()
        .circuit(report.circuit().clone())
        .seed(7)
        .ns(vec![1])
        .run()
        .expect("generated-T0 zero-gate session runs");
    assert!(generated.coverage().detected_count() > 0);
}

/// FaultCoverage::simulate and the simulator agree (API-level glue).
#[test]
fn coverage_api_consistency() {
    let circuit = benchmarks::s27();
    let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(&circuit);
    let t0: TestSequence =
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
    let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).expect("simulates");
    let times = sim.detection_times(&t0, &faults).expect("simulates");
    assert_eq!(cov.times(), &times[..]);
    assert_eq!(cov.detected_count(), 32);
}
