//! The unified `Session` pipeline: one entry point for the whole scheme.
//!
//! A [`Session`] owns everything the paper's flow needs — the circuit, the
//! off-chip test sequence `T0`, the fault universe, the scheme
//! configuration and the simulation backend — and runs
//! circuit → `T0` → fault simulation → Procedure 1/2 → §3.2 compaction →
//! verification in one call. [`SessionBuilder`] is the only configuration
//! surface; no direct imports from `bist_sim` / `bist_expand` internals
//! are needed:
//!
//! ```
//! use subseq_bist::Session;
//!
//! let report = Session::builder().s27().seed(1999).run()?;
//! assert_eq!(report.verified(), Some(true));
//! println!("{}", report.summary());
//! # Ok::<(), subseq_bist::BistError>(())
//! ```
//!
//! The expanded sequences are simulated through the streaming
//! [`ExpansionIter`](bist_expand::ExpansionIter) path: `Sexp` is never
//! materialized during selection, compaction or verification.

use crate::BistError;
use bist_core::{
    monolithic_cost, run_scheme, scheme_cost, verify_full_coverage, MemoryCost, SchemeConfig,
    SchemeResult, SchemeRun,
};
use bist_expand::expansion::ExpansionConfig;
use bist_expand::TestSequence;
use bist_netlist::{
    benchmarks, compile_staged_with_baseline, Circuit, CompileOptions, CompiledCircuit, GateTape,
};
use bist_obs::Obs;
use bist_sim::{
    collapse, fault_universe, Fault, FaultCoverage, FaultSimulator, ShardedBackend, SimBackend,
    WordWidth,
};
use bist_tgen::{generate_t0_with_artifacts, GeneratedTest, TgenConfig};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which fault-simulation engine a session uses.
///
/// Maps onto the [`SimBackend`](bist_sim::SimBackend) implementations of
/// `bist-sim`; the scalar engine exists for differential testing and is
/// dramatically slower on large fault lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// 63 faulty machines + the fused good machine per pass (the default
    /// single-threaded production engine).
    #[default]
    Packed,
    /// One faulty machine at a time (reference engine).
    Scalar,
    /// Fault-list sharding across OS threads × wide-word lane packing.
    ///
    /// `width` is the packed word width in lanes — 64, 256 or 512; any
    /// other value is rejected at [`SessionBuilder::build`] with a typed
    /// configuration error. `threads == 0` means "auto": it resolves to
    /// [`std::thread::available_parallelism`] at build time, so portable
    /// configurations (batch campaign specs in particular) can say "use
    /// all cores" without probing the host. The raw
    /// [`ShardedBackend::new`] boundary keeps its typed `ZeroThreads`
    /// error — only the Session level interprets 0.
    Sharded {
        /// Number of worker threads (0 = one per available core).
        threads: usize,
        /// Packed word width in lanes (64, 256 or 512).
        width: usize,
    },
}

impl Backend {
    fn engine(self) -> Result<Arc<dyn SimBackend>, BistError> {
        match self {
            Backend::Packed => Ok(Arc::new(bist_sim::PackedBackend)),
            Backend::Scalar => Ok(Arc::new(bist_sim::ScalarBackend)),
            Backend::Sharded { threads, width } => {
                let width = WordWidth::from_lanes(width).ok_or_else(|| {
                    BistError::Config(format!(
                        "sharded backend width must be 64, 256 or 512 lanes, got {width}"
                    ))
                })?;
                let threads = match threads {
                    0 => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
                    n => n,
                };
                Ok(Arc::new(ShardedBackend::new(threads, width)?))
            }
        }
    }
}

/// Pre-built pipeline artifacts injected through
/// [`SessionBuilder::with_artifacts`].
///
/// A batch campaign (or any caller running many sessions over the same
/// circuit) computes these once and shares them via [`Arc`] across every
/// session that touches the circuit: the parsed [`Circuit`], its
/// compiled [`GateTape`], its collapsed fault universe, and a generated
/// `T0` with coverage. All fields are optional; anything absent is
/// computed by the session as usual. The caller is responsible for
/// keying artifacts by circuit identity — the builder only checks cheap
/// invariants (fault sites in range, tape node count, `T0` width).
#[derive(Debug, Clone, Default)]
pub struct SessionArtifacts {
    circuit: Option<Arc<Circuit>>,
    tape: Option<Arc<GateTape>>,
    compiled: Option<Arc<CompiledCircuit>>,
    faults: Option<Arc<Vec<Fault>>>,
    t0: Option<Arc<GeneratedTest>>,
    t0_seconds: Option<f64>,
}

impl SessionArtifacts {
    /// No pre-built artifacts.
    #[must_use]
    pub fn new() -> Self {
        SessionArtifacts::default()
    }

    /// Supplies the parsed circuit (overrides any circuit source set on
    /// the builder).
    #[must_use]
    pub fn circuit(mut self, circuit: Arc<Circuit>) -> Self {
        self.circuit = Some(circuit);
        self
    }

    /// Supplies the compiled gate tape of the session's circuit, so the
    /// session (and everything it fault-simulates — `T0` generation,
    /// Procedure 1/2 sweeps, verification) compiles nothing.
    #[must_use]
    pub fn tape(mut self, tape: Arc<GateTape>) -> Self {
        self.tape = Some(tape);
        self
    }

    /// Supplies a staged compile of the session's circuit (as produced by
    /// [`compile_staged`](bist_netlist::compile_staged)), so the session
    /// neither compiles nor re-optimizes anything. Its pass options take
    /// precedence over [`SessionBuilder::optimize`], and its baseline
    /// tape also fills the session's tape slot when no explicit
    /// [`tape`](Self::tape) artifact was supplied.
    #[must_use]
    pub fn compiled(mut self, compiled: Arc<CompiledCircuit>) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Supplies the collapsed fault universe (the representatives of
    /// [`collapse`] for the session's circuit, in its order).
    #[must_use]
    pub fn faults(mut self, faults: Arc<Vec<Fault>>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Supplies a generated `T0` with its coverage (as produced by
    /// [`bist_tgen::generate_t0`]), skipping test generation entirely.
    /// Ignored when an explicit [`SessionBuilder::t0`] is also set.
    #[must_use]
    pub fn generated_t0(mut self, t0: Arc<GeneratedTest>) -> Self {
        self.t0 = Some(t0);
        self
    }

    /// Records how long producing the injected `T0` originally took;
    /// reported as the session's
    /// [`t0_seconds`](SessionReport::t0_seconds) so timing context
    /// survives cache injection (otherwise a prebuilt `T0` reports the
    /// near-zero time of cloning it).
    #[must_use]
    pub fn t0_seconds(mut self, seconds: f64) -> Self {
        self.t0_seconds = Some(seconds);
        self
    }
}

/// How the builder's engine was selected: by name (resolved and validated
/// at [`SessionBuilder::build`] time) or supplied directly.
#[derive(Debug, Clone)]
enum EngineSel {
    Named(Backend),
    Custom(Arc<dyn SimBackend>),
}

impl EngineSel {
    fn resolve(&self) -> Result<Arc<dyn SimBackend>, BistError> {
        match self {
            EngineSel::Named(backend) => backend.engine(),
            EngineSel::Custom(engine) => Ok(Arc::clone(engine)),
        }
    }
}

/// Where a session's circuit comes from.
#[derive(Debug, Clone)]
enum CircuitSource {
    /// The paper's worked example (ISCAS-89 `s27`).
    S27,
    /// A circuit supplied directly.
    Owned(Box<Circuit>),
    /// Inline ISCAS-89 `.bench` text.
    Bench { name: String, text: String },
    /// An ISCAS-89 `.bench` file on disk.
    File(PathBuf),
    /// A named entry of the built-in benchmark suite (`s27`, `a298`, ...).
    Suite(String),
}

impl CircuitSource {
    fn build(&self) -> Result<Circuit, BistError> {
        match self {
            CircuitSource::S27 => Ok(benchmarks::s27()),
            CircuitSource::Owned(c) => Ok((**c).clone()),
            CircuitSource::Bench { name, text } => {
                Ok(bist_netlist::parser::parse_bench(name.clone(), text)?)
            }
            CircuitSource::File(path) => {
                // Attach the offending path: a bare io::Error ("No such
                // file or directory") is useless once the builder chain
                // has moved on.
                let text = std::fs::read_to_string(path).map_err(|e| {
                    BistError::Io(std::io::Error::new(
                        e.kind(),
                        format!("reading bench file `{}`: {e}", path.display()),
                    ))
                })?;
                let name =
                    path.file_stem().and_then(|s| s.to_str()).unwrap_or("circuit").to_string();
                Ok(bist_netlist::parser::parse_bench(name, &text)?)
            }
            CircuitSource::Suite(name) => {
                let entries = benchmarks::suite();
                let entry = entries.iter().find(|e| e.name == name).ok_or_else(|| {
                    let known: Vec<&str> = entries.iter().map(|e| e.name).collect();
                    BistError::Config(format!(
                        "unknown suite circuit `{name}`; known: {}",
                        known.join(", ")
                    ))
                })?;
                Ok(entry.build()?)
            }
        }
    }
}

/// Builder for a [`Session`]. Obtained from [`Session::builder`].
///
/// Defaults: the `s27` circuit, a generated `T0` (seed 0), the paper's
/// `n ∈ {2, 4, 8, 16}` sweep with §3.2 postprocessing, the packed
/// backend, and post-run coverage verification.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    source: CircuitSource,
    tgen: TgenConfig,
    scheme: SchemeConfig,
    engine: EngineSel,
    seed: Option<u64>,
    t0: Option<TestSequence>,
    artifacts: SessionArtifacts,
    optimize: CompileOptions,
    verify: bool,
    obs: Obs,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            source: CircuitSource::S27,
            tgen: TgenConfig::new(),
            scheme: SchemeConfig::new(),
            engine: EngineSel::Named(Backend::Packed),
            seed: None,
            t0: None,
            artifacts: SessionArtifacts::default(),
            optimize: CompileOptions::none(),
            verify: true,
            obs: Obs::noop(),
        }
    }
}

impl SessionBuilder {
    /// Uses the paper's worked example circuit (ISCAS-89 `s27`).
    #[must_use]
    pub fn s27(mut self) -> Self {
        self.source = CircuitSource::S27;
        self
    }

    /// Uses a circuit built elsewhere.
    #[must_use]
    pub fn circuit(mut self, circuit: Circuit) -> Self {
        self.source = CircuitSource::Owned(Box::new(circuit));
        self
    }

    /// Parses an ISCAS-89 `.bench` netlist from text.
    #[must_use]
    pub fn bench(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.source = CircuitSource::Bench { name: name.into(), text: text.into() };
        self
    }

    /// Reads an ISCAS-89 `.bench` netlist from a file.
    #[must_use]
    pub fn bench_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = CircuitSource::File(path.into());
        self
    }

    /// Uses a circuit of the built-in benchmark suite by name
    /// (`"s27"`, `"a298"`, ...).
    #[must_use]
    pub fn suite_circuit(mut self, name: impl Into<String>) -> Self {
        self.source = CircuitSource::Suite(name.into());
        self
    }

    /// Supplies `T0` directly instead of generating it. Its coverage
    /// (detected faults + `udet`) is obtained by fault simulation.
    #[must_use]
    pub fn t0(mut self, t0: TestSequence) -> Self {
        self.t0 = Some(t0);
        self
    }

    /// Seeds both `T0` generation and Procedure 2's omission order.
    ///
    /// Applied at [`build`](Self::build) time, so the call order relative
    /// to [`tgen`](Self::tgen) does not matter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The repetition counts to sweep (the paper's default is
    /// `[2, 4, 8, 16]`).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is empty or contains 0.
    #[must_use]
    pub fn ns(mut self, ns: impl Into<Vec<usize>>) -> Self {
        self.scheme = self.scheme.ns(ns.into());
        self
    }

    /// Enables/disables the §3.2 static compaction of `S`.
    #[must_use]
    pub fn postprocess(mut self, on: bool) -> Self {
        self.scheme = self.scheme.postprocess(on);
        self
    }

    /// Selects one of the built-in fault-simulation engines. Invalid
    /// configurations (e.g. `Backend::Sharded` with zero threads or an
    /// unsupported width) surface as typed errors at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.engine = EngineSel::Named(backend);
        self
    }

    /// Plugs in any [`SimBackend`] implementation — the extension point
    /// for engines beyond the built-in three.
    #[must_use]
    pub fn backend_impl(mut self, engine: Arc<dyn SimBackend>) -> Self {
        self.engine = EngineSel::Custom(engine);
        self
    }

    /// Replaces the `T0`-generation configuration wholesale (burst length,
    /// stall limit, hold probability, length cap, compaction budget).
    #[must_use]
    pub fn tgen(mut self, config: TgenConfig) -> Self {
        self.tgen = config;
        self
    }

    /// Selects the staged-compiler passes the session's fault simulation
    /// runs on (off by default — [`CompileOptions::none`]).
    ///
    /// With a non-empty set, the circuit is compiled once through the
    /// semantics-preserving pass pipeline and every fault-simulation
    /// phase (`T0` coverage, the Procedure 1/2 sweeps, verification) is
    /// routed through the optimized tape by fault-site mapping — results
    /// are bit-identical to the unoptimized session. `T0` *generation*
    /// always runs on the unoptimized baseline tape, so the produced
    /// sequence is independent of this setting.
    #[must_use]
    pub fn optimize(mut self, options: CompileOptions) -> Self {
        self.optimize = options;
        self
    }

    /// Enables/disables the post-run coverage verification (streamed
    /// re-simulation of the best run's expansions; on by default).
    #[must_use]
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Attaches a telemetry sink. Every pipeline stage (parse, collapse,
    /// tape compile, staged optimize, `T0`, the scheme's fault-simulation
    /// sweeps, verification) records a `session.*_us` span into it, and
    /// the sink is threaded through the fault-simulation engines
    /// ([`bist_sim::SimBackend::detection_times_tape_obs`]).
    /// Observation-only: results are bit-identical to an uninstrumented
    /// session, and the default no-op sink records nothing.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Injects pre-built artifacts shared across sessions — the facade's
    /// entry point for the batch campaign's [`Arc`]-shared caches. A
    /// supplied circuit overrides the builder's circuit source; supplied
    /// faults pre-fill the session's collapsed-universe cache; a supplied
    /// generated `T0` skips test generation (unless an explicit
    /// [`t0`](Self::t0) takes precedence).
    #[must_use]
    pub fn with_artifacts(mut self, artifacts: SessionArtifacts) -> Self {
        self.artifacts = artifacts;
        self
    }

    /// Materializes the circuit and fixes the configuration.
    ///
    /// # Errors
    ///
    /// Circuit construction / file / configuration errors.
    pub fn build(self) -> Result<Session, BistError> {
        let circuit = match self.artifacts.circuit {
            Some(shared) => shared,
            None => {
                let _span = self.obs.span("session.parse_us", String::new());
                Arc::new(self.source.build()?)
            }
        };
        let engine = self.engine.resolve()?;
        if let Some(t0) = &self.t0 {
            if t0.is_empty() {
                return Err(BistError::Config("supplied T0 is empty".to_string()));
            }
            if t0.width() != circuit.num_inputs() {
                return Err(BistError::Config(format!(
                    "supplied T0 width {} does not match circuit input count {}",
                    t0.width(),
                    circuit.num_inputs()
                )));
            }
        }
        // Same O(1) shape fingerprint the sim layer checks
        // (`SimError::TapeMismatch`), surfaced as a config error at
        // build time instead of deep inside the first run.
        let check_shape = |shared: &GateTape, what: &str| -> Result<(), BistError> {
            let tape_shape = (
                shared.num_nodes(),
                shared.num_inputs(),
                shared.num_outputs(),
                shared.num_dffs(),
                shared.num_gates(),
            );
            let circuit_shape = (
                circuit.num_nodes(),
                circuit.num_inputs(),
                circuit.num_outputs(),
                circuit.num_dffs(),
                circuit.num_gates(),
            );
            if tape_shape != circuit_shape {
                return Err(BistError::Config(format!(
                    "injected {what} does not match circuit `{}`: tape shape {tape_shape:?} vs \
                     circuit shape {circuit_shape:?} (nodes/inputs/outputs/DFFs/gates)",
                    circuit.name(),
                )));
            }
            Ok(())
        };
        let tape = OnceLock::new();
        if let Some(shared) = self.artifacts.tape {
            check_shape(&shared, "tape")?;
            let _ = tape.set(shared);
        }
        let compiled = OnceLock::new();
        if let Some(shared) = self.artifacts.compiled {
            check_shape(shared.baseline(), "compiled artifact's baseline tape")?;
            if shared.site_map().num_nodes() != circuit.num_nodes() {
                return Err(BistError::Config(format!(
                    "injected compiled artifact does not match circuit `{}`: site map covers {} \
                     nodes vs {} circuit nodes",
                    circuit.name(),
                    shared.site_map().num_nodes(),
                    circuit.num_nodes(),
                )));
            }
            if tape.get().is_none() {
                let _ = tape.set(Arc::clone(shared.baseline()));
            }
            let _ = compiled.set(shared);
        }
        let faults = OnceLock::new();
        if let Some(shared) = self.artifacts.faults {
            if let Some(bad) = shared.iter().find(|f| f.site.node().index() >= circuit.num_nodes())
            {
                return Err(BistError::Config(format!(
                    "injected fault universe does not match circuit `{}`: site index {} out of \
                     range",
                    circuit.name(),
                    bad.site.node().index()
                )));
            }
            let _ = faults.set(shared);
        }
        let prebuilt = match self.artifacts.t0 {
            Some(gen) => {
                if gen.sequence.is_empty() {
                    return Err(BistError::Config("injected generated T0 is empty".to_string()));
                }
                if gen.sequence.width() != circuit.num_inputs() {
                    return Err(BistError::Config(format!(
                        "injected generated T0 width {} does not match circuit input count {}",
                        gen.sequence.width(),
                        circuit.num_inputs()
                    )));
                }
                Some(gen)
            }
            None => None,
        };
        let (mut tgen, mut scheme) = (self.tgen, self.scheme);
        if let Some(seed) = self.seed {
            tgen = tgen.seed(seed);
            scheme = scheme.seed(seed);
        }
        Ok(Session {
            circuit,
            t0: self.t0,
            prebuilt,
            prebuilt_seconds: self.artifacts.t0_seconds,
            tape,
            compiled,
            optimize: self.optimize,
            faults,
            tgen,
            scheme,
            engine,
            verify: self.verify,
            obs: self.obs,
        })
    }

    /// [`build`](Self::build) + [`Session::run`] in one call.
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build) and [`Session::run`].
    pub fn run(self) -> Result<SessionReport, BistError> {
        self.build()?.run()
    }
}

/// A fully configured pipeline over one circuit.
///
/// Create with [`Session::builder`]; [`run`](Session::run) executes the
/// complete flow and can be called repeatedly (it is deterministic for a
/// fixed configuration).
#[derive(Debug, Clone)]
pub struct Session {
    circuit: Arc<Circuit>,
    t0: Option<TestSequence>,
    /// Injected generated `T0` (sequence + coverage), if any.
    prebuilt: Option<Arc<GeneratedTest>>,
    /// Original generation time of the injected `T0`, if recorded.
    prebuilt_seconds: Option<f64>,
    /// Compiled (unoptimized) gate tape, compiled on first
    /// [`run`](Session::run) (or injected at build time). It is the tape
    /// every simulation executes when no optimization is configured, and
    /// the staged compiler's baseline otherwise.
    tape: OnceLock<Arc<GateTape>>,
    /// Staged compile of the circuit — produced on first
    /// [`run`](Session::run) when [`SessionBuilder::optimize`] selected
    /// any pass (or injected at build time), `None`-state otherwise.
    compiled: OnceLock<Arc<CompiledCircuit>>,
    /// The pass selection [`compiled`](Self::compiled) is built with.
    optimize: CompileOptions,
    /// Collapsed fault universe, computed on first [`run`](Session::run)
    /// (or injected at build time) and shared by every later run.
    faults: OnceLock<Arc<Vec<Fault>>>,
    tgen: TgenConfig,
    scheme: SchemeConfig,
    engine: Arc<dyn SimBackend>,
    verify: bool,
    /// Telemetry sink every stage and engine pass records into
    /// ([`SessionBuilder::obs`]; no-op by default).
    obs: Obs,
}

impl Session {
    /// Starts configuring a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiled gate tape of the circuit — compiled on first access
    /// (or injected via [`SessionBuilder::with_artifacts`]) and cached
    /// for the session's lifetime; every simulation the session performs
    /// (T0 generation, selection sweeps, verification, repeated
    /// [`run`](Session::run) calls) executes this one tape.
    #[must_use]
    pub fn tape(&self) -> &Arc<GateTape> {
        self.tape.get_or_init(|| {
            let _span = self.obs.span("session.tape_compile_us", self.circuit.name().to_string());
            let tape = Arc::new(GateTape::compile(&self.circuit));
            #[cfg(debug_assertions)]
            bist_verify::audit_tape(&self.circuit, &tape);
            tape
        })
    }

    /// The staged compile the session's fault simulation runs on, if
    /// any — `None` when the session is unoptimized
    /// ([`CompileOptions::none`] and no injected compiled artifact).
    /// Compiled on first access against the session's baseline
    /// [`tape`](Session::tape) and cached for the session's lifetime.
    #[must_use]
    pub fn compiled(&self) -> Option<&Arc<CompiledCircuit>> {
        if self.compiled.get().is_none() && self.optimize.is_none() {
            return None;
        }
        Some(self.compiled.get_or_init(|| {
            let baseline = Arc::clone(self.tape());
            let _span = self.obs.span("session.optimize_us", self.circuit.name().to_string());
            Arc::new(compile_staged_with_baseline(&self.circuit, self.optimize, baseline))
        }))
    }

    /// The collapsed fault universe of the circuit — computed on first
    /// access (or injected via [`SessionBuilder::with_artifacts`]) and
    /// cached for the session's lifetime; repeated [`run`](Session::run)
    /// calls never re-collapse.
    #[must_use]
    pub fn collapsed_faults(&self) -> &[Fault] {
        self.faults
            .get_or_init(|| {
                let _span = self.obs.span("session.collapse_us", self.circuit.name().to_string());
                Arc::new(
                    collapse(&self.circuit, &fault_universe(&self.circuit))
                        .representatives()
                        .to_vec(),
                )
            })
            .as_slice()
    }

    /// Runs the full pipeline: collapse the fault universe (once per
    /// session), obtain `T0` and its coverage, sweep the scheme over the
    /// configured `n` values, and (unless disabled) verify the best run's
    /// joint coverage through the streaming expansion path.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (these indicate impossible
    /// configurations and do not occur for valid circuits).
    pub fn run(&self) -> Result<SessionReport, BistError> {
        let mut stages = StageSeconds::default();

        // The three lazy artifacts record their compile time into the run
        // that first forces them; cached runs observe ~0 here.
        let stage = Instant::now();
        let faults = self.collapsed_faults();
        stages.collapse = stage.elapsed().as_secs_f64();
        let stage = Instant::now();
        let tape = Arc::clone(self.tape());
        stages.tape_compile = stage.elapsed().as_secs_f64();
        let stage = Instant::now();
        let sim = match self.compiled() {
            Some(compiled) => FaultSimulator::with_backend_and_compiled(
                &self.circuit,
                Arc::clone(compiled),
                Arc::clone(&self.engine),
            )?,
            None => FaultSimulator::with_backend_and_tape(
                &self.circuit,
                Arc::clone(&tape),
                Arc::clone(&self.engine),
            )?,
        }
        .with_obs(self.obs.clone());
        stages.optimize = stage.elapsed().as_secs_f64();

        let span = self.obs.span("session.t0_us", self.circuit.name().to_string());
        let started = Instant::now();
        let mut injected = false;
        let (t0, coverage) = match (&self.t0, &self.prebuilt) {
            (Some(seq), _) => (seq.clone(), FaultCoverage::simulate(&sim, seq, faults.to_vec())?),
            (None, Some(gen)) => {
                injected = true;
                (gen.sequence.clone(), gen.coverage.clone())
            }
            (None, None) => {
                let generated =
                    generate_t0_with_artifacts(&self.circuit, &self.tgen, faults.to_vec(), tape)?;
                (generated.sequence, generated.coverage)
            }
        };
        stages.t0 = started.elapsed().as_secs_f64();
        drop(span);
        // An injected T0 reports the producer's recorded generation time
        // (cloning an Arc'd artifact would otherwise report ~0).
        let t0_seconds = match (injected, self.prebuilt_seconds) {
            (true, Some(seconds)) => seconds,
            _ => stages.t0,
        };

        let span = self.obs.span("session.fault_sim_us", self.circuit.name().to_string());
        let stage = Instant::now();
        let scheme = run_scheme(&sim, &t0, &coverage, &self.scheme)?;
        stages.fault_sim = stage.elapsed().as_secs_f64();
        drop(span);

        let span = self.obs.span("session.verify_us", self.circuit.name().to_string());
        let stage = Instant::now();
        let verified = if self.verify {
            let best = scheme.best_run();
            let detected: Vec<Fault> = coverage.detected().map(|(f, _)| f).collect();
            Some(verify_full_coverage(
                &sim,
                &best.sequences,
                &ExpansionConfig::new(best.n)?,
                &detected,
            )?)
        } else {
            None
        };
        stages.verify = stage.elapsed().as_secs_f64();
        drop(span);

        Ok(SessionReport {
            circuit: (*self.circuit).clone(),
            backend: sim.backend().name(),
            faults_total: faults.len(),
            gates_removed: self.compiled().map_or(0, |c| c.gates_removed()),
            t0,
            coverage,
            scheme,
            verified,
            t0_seconds,
            stages,
        })
    }

    /// The telemetry sink this session records into (no-op unless set via
    /// [`SessionBuilder::obs`]).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

/// Wall-clock seconds spent in each pipeline stage of one
/// [`Session::run`], independent of any telemetry sink (always recorded).
///
/// The lazy artifacts (fault collapse, tape compile, staged optimize)
/// charge their cost to the run that first forces them; cached later runs
/// observe ~0 for those stages.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSeconds {
    /// Fault-universe collapse (~0 when injected or cached).
    pub collapse: f64,
    /// Baseline tape compile (~0 when injected or cached).
    pub tape_compile: f64,
    /// Staged optimize + simulator construction (~0 when unoptimized,
    /// injected or cached).
    pub optimize: f64,
    /// Obtaining `T0` and its coverage (generation or re-simulation).
    pub t0: f64,
    /// The scheme sweep — Procedure 1/2 + compaction over every `n`.
    pub fault_sim: f64,
    /// Post-run coverage verification (0 when disabled).
    pub verify: f64,
}

impl StageSeconds {
    /// Sum over all stages — the pipeline time this run accounts for.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.collapse + self.tape_compile + self.optimize + self.t0 + self.fault_sim + self.verify
    }
}

/// A [`SessionReport`] decomposed into owned pieces — for consumers that
/// keep the data (pipelines, caches) without re-cloning what the report
/// already owns. See [`SessionReport::into_parts`].
#[derive(Debug, Clone)]
pub struct SessionParts {
    /// The circuit under test.
    pub circuit: Circuit,
    /// Name of the fault-simulation engine used.
    pub backend: &'static str,
    /// Size of the collapsed fault universe.
    pub faults_total: usize,
    /// Gates the staged compiler removed from the simulated tape (0 for
    /// an unoptimized session).
    pub gates_removed: usize,
    /// The off-chip test sequence the scheme started from.
    pub t0: TestSequence,
    /// Coverage of `T0` (detected set + `udet` times).
    pub coverage: FaultCoverage,
    /// The full sweep result.
    pub scheme: SchemeResult,
    /// Outcome of the post-run verification (`None` if disabled).
    pub verified: Option<bool>,
    /// Wall-clock seconds spent obtaining `T0` and its coverage.
    pub t0_seconds: f64,
    /// Per-stage wall-clock breakdown of the run.
    pub stages: StageSeconds,
}

/// Everything one pipeline run produced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    circuit: Circuit,
    backend: &'static str,
    faults_total: usize,
    gates_removed: usize,
    t0: TestSequence,
    coverage: FaultCoverage,
    scheme: SchemeResult,
    verified: Option<bool>,
    t0_seconds: f64,
    stages: StageSeconds,
}

impl SessionReport {
    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Name of the fault-simulation engine used.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend
    }

    /// Size of the collapsed fault universe.
    #[must_use]
    pub fn faults_total(&self) -> usize {
        self.faults_total
    }

    /// Gates the staged compiler removed from the simulated tape (0 for
    /// an unoptimized session).
    #[must_use]
    pub fn gates_removed(&self) -> usize {
        self.gates_removed
    }

    /// The off-chip test sequence the scheme started from.
    #[must_use]
    pub fn t0(&self) -> &TestSequence {
        &self.t0
    }

    /// Coverage of `T0` (detected set + `udet` times).
    #[must_use]
    pub fn coverage(&self) -> &FaultCoverage {
        &self.coverage
    }

    /// Wall-clock seconds spent obtaining `T0` and its coverage.
    #[must_use]
    pub fn t0_seconds(&self) -> f64 {
        self.t0_seconds
    }

    /// Per-stage wall-clock breakdown of the run (always recorded, with
    /// or without a telemetry sink).
    #[must_use]
    pub fn stages(&self) -> &StageSeconds {
        &self.stages
    }

    /// The full sweep result (one run per `n`).
    #[must_use]
    pub fn scheme(&self) -> &SchemeResult {
        &self.scheme
    }

    /// The best run per the paper's rule (smallest max len, then total
    /// len, then run time).
    #[must_use]
    pub fn best(&self) -> &SchemeRun {
        self.scheme.best_run()
    }

    /// Whether the best run's expansions were re-verified to cover every
    /// fault `T0` detects (`None` if verification was disabled).
    #[must_use]
    pub fn verified(&self) -> Option<bool> {
        self.verified
    }

    /// Loaded vectors as a fraction of `|T0|` — the paper's headline
    /// *tot len / |T0|* ratio (Table 5 averages 0.46).
    #[must_use]
    pub fn loaded_fraction(&self) -> f64 {
        self.best().after.total_len as f64 / self.t0.len().max(1) as f64
    }

    /// On-chip memory cost of the best run vs. storing all of `T0`.
    #[must_use]
    pub fn memory_costs(&self) -> (MemoryCost, MemoryCost) {
        let width = self.circuit.num_inputs();
        let best = self.best();
        (
            scheme_cost(best.after.max_len.max(1), width, best.n),
            monolithic_cost(self.t0.len().max(1), width),
        )
    }

    /// Decomposes the report into its owned pieces (no cloning).
    #[must_use]
    pub fn into_parts(self) -> SessionParts {
        SessionParts {
            circuit: self.circuit,
            backend: self.backend,
            faults_total: self.faults_total,
            gates_removed: self.gates_removed,
            t0: self.t0,
            coverage: self.coverage,
            scheme: self.scheme,
            verified: self.verified,
            t0_seconds: self.t0_seconds,
            stages: self.stages,
        }
    }

    /// A compact human-readable summary of the run.
    #[must_use]
    pub fn summary(&self) -> String {
        let best = self.best();
        let verified = match self.verified {
            Some(true) => "verified",
            Some(false) => "FAILED VERIFICATION",
            None => "not verified",
        };
        let optimized = if self.gates_removed > 0 {
            format!(", optimized tape (-{} gates)", self.gates_removed)
        } else {
            String::new()
        };
        format!(
            "{}: T0 = {} vectors covering {}/{} faults; best n = {}: |S| = {}, \
             tot len = {} ({:.0}% of T0), max len = {}, applied at speed = {} \
             [{} backend, coverage {}{}]",
            self.circuit.name(),
            self.t0.len(),
            self.coverage.detected_count(),
            self.faults_total,
            best.n,
            best.after.count,
            best.after.total_len,
            100.0 * self.loaded_fraction(),
            best.after.max_len,
            best.applied_test_len(),
            self.backend,
            verified,
            optimized,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_session_runs_s27() {
        let report = Session::builder().seed(1999).ns(vec![1, 2]).run().unwrap();
        assert_eq!(report.circuit().name(), "s27");
        assert_eq!(report.faults_total(), 32);
        assert_eq!(report.coverage().detected_count(), 32);
        assert_eq!(report.verified(), Some(true));
        assert!(report.loaded_fraction() <= 1.0);
        assert!(report.summary().contains("s27"));
    }

    #[test]
    fn supplied_t0_is_used_verbatim() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let report = Session::builder().s27().t0(t0.clone()).ns(vec![1]).run().unwrap();
        assert_eq!(report.t0(), &t0);
        assert_eq!(report.coverage().detected_count(), 32);
    }

    #[test]
    fn t0_width_mismatch_is_a_config_error() {
        let t0: TestSequence = "000 111".parse().unwrap();
        let err = Session::builder().s27().t0(t0).build().unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err}");
    }

    #[test]
    fn unknown_suite_circuit_is_a_config_error() {
        let err = Session::builder().suite_circuit("nope").build().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn scalar_backend_matches_packed_results() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let run = |backend| {
            Session::builder().s27().t0(t0.clone()).ns(vec![1]).backend(backend).run().unwrap()
        };
        let packed = run(Backend::Packed);
        let scalar = run(Backend::Scalar);
        assert_eq!(packed.backend_name(), "packed64");
        assert_eq!(scalar.backend_name(), "scalar");
        // Identical detection times drive identical selections.
        assert_eq!(packed.coverage().times(), scalar.coverage().times());
        assert_eq!(packed.best().after.total_len, scalar.best().after.total_len);
    }

    #[test]
    fn sharded_backend_matches_packed_results() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let run = |backend| {
            Session::builder().s27().t0(t0.clone()).ns(vec![1]).backend(backend).run().unwrap()
        };
        let packed = run(Backend::Packed);
        for (threads, width, name) in
            [(1, 64, "sharded64"), (2, 256, "sharded256"), (4, 512, "sharded512")]
        {
            let sharded = run(Backend::Sharded { threads, width });
            assert_eq!(sharded.backend_name(), name);
            assert_eq!(packed.coverage().times(), sharded.coverage().times());
            assert_eq!(packed.best().after.total_len, sharded.best().after.total_len);
            assert_eq!(sharded.verified(), Some(true));
        }
    }

    #[test]
    fn sharded_misconfiguration_is_a_typed_error_not_a_panic() {
        let bad_width =
            Session::builder().s27().backend(Backend::Sharded { threads: 4, width: 100 }).build();
        match bad_width {
            Err(BistError::Config(msg)) => assert!(msg.contains("100"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_zero_threads_means_auto_at_the_session_level() {
        // `threads: 0` resolves to available_parallelism at build time;
        // the raw backend boundary keeps its typed ZeroThreads error.
        let report = Session::builder()
            .s27()
            .seed(5)
            .ns(vec![1])
            .backend(Backend::Sharded { threads: 0, width: 256 })
            .run()
            .unwrap();
        assert_eq!(report.backend_name(), "sharded256");
        assert_eq!(report.verified(), Some(true));
        assert_eq!(
            bist_sim::ShardedBackend::new(0, bist_sim::WordWidth::W256),
            Err(bist_sim::SimError::ZeroThreads)
        );
    }

    #[test]
    fn tape_is_compiled_once_and_cached_across_runs() {
        let session = Session::builder().s27().seed(7).ns(vec![1]).build().unwrap();
        let before = Arc::as_ptr(session.tape());
        session.run().unwrap();
        session.run().unwrap();
        assert_eq!(before, Arc::as_ptr(session.tape()), "tape was recompiled");
    }

    #[test]
    fn injected_tape_is_served_back_and_validated() {
        let circuit = Arc::new(benchmarks::s27());
        let tape = Arc::new(GateTape::compile(&circuit));
        let session = Session::builder()
            .with_artifacts(
                SessionArtifacts::new().circuit(Arc::clone(&circuit)).tape(Arc::clone(&tape)),
            )
            .seed(3)
            .ns(vec![1])
            .build()
            .unwrap();
        assert!(Arc::ptr_eq(session.tape(), &tape));
        let report = session.run().unwrap();
        assert_eq!(report.coverage().detected_count(), 32);
        // A tape compiled from another circuit is rejected at build time.
        let alien = Arc::new(GateTape::compile(&benchmarks::suite()[1].build().unwrap()));
        let err = Session::builder()
            .with_artifacts(SessionArtifacts::new().circuit(circuit).tape(alien))
            .build()
            .unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("tape"), "{err}");
    }

    #[test]
    fn optimized_sessions_are_bit_identical_to_unoptimized() {
        for name in ["s27", "a298"] {
            let base =
                Session::builder().suite_circuit(name).seed(1999).ns(vec![1, 2]).run().unwrap();
            let session = Session::builder()
                .suite_circuit(name)
                .seed(1999)
                .ns(vec![1, 2])
                .optimize(CompileOptions::all())
                .build()
                .unwrap();
            let opt = session.run().unwrap();
            assert_eq!(opt.t0(), base.t0(), "{name}: T0 must stay baseline-generated");
            assert_eq!(opt.coverage(), base.coverage(), "{name}");
            assert_eq!(opt.best().after.total_len, base.best().after.total_len, "{name}");
            assert_eq!(opt.best().after.max_len, base.best().after.max_len, "{name}");
            assert_eq!(opt.verified(), Some(true), "{name}");
            assert_eq!(base.gates_removed(), 0);
            assert_eq!(opt.gates_removed(), session.compiled().unwrap().gates_removed(), "{name}");
            if opt.gates_removed() > 0 {
                assert!(opt.summary().contains("optimized tape"), "{}", opt.summary());
            }
        }
    }

    #[test]
    fn injected_compiled_artifact_is_served_back_and_validated() {
        use bist_netlist::compile_staged;

        let circuit = Arc::new(benchmarks::s27());
        let compiled = Arc::new(compile_staged(&circuit, CompileOptions::all()));
        let session = Session::builder()
            .with_artifacts(
                SessionArtifacts::new()
                    .circuit(Arc::clone(&circuit))
                    .compiled(Arc::clone(&compiled)),
            )
            .seed(3)
            .ns(vec![1])
            .build()
            .unwrap();
        // The injected compile is served back, and its baseline fills the
        // session's tape slot.
        assert!(Arc::ptr_eq(session.compiled().unwrap(), &compiled));
        assert!(Arc::ptr_eq(session.tape(), compiled.baseline()));
        let report = session.run().unwrap();
        assert_eq!(report.coverage().detected_count(), 32);
        assert_eq!(report.gates_removed(), compiled.gates_removed());
        // A compile of another circuit is rejected at build time.
        let other = benchmarks::suite()[1].build().unwrap();
        let alien = Arc::new(compile_staged(&other, CompileOptions::all()));
        let err = Session::builder()
            .with_artifacts(SessionArtifacts::new().circuit(circuit).compiled(alien))
            .build()
            .unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("compiled"), "{err}");
    }

    #[test]
    fn collapsed_fault_universe_is_cached_across_runs() {
        let session = Session::builder().s27().seed(7).ns(vec![1]).build().unwrap();
        let before = session.collapsed_faults().as_ptr();
        session.run().unwrap();
        session.run().unwrap();
        let after = session.collapsed_faults().as_ptr();
        assert!(std::ptr::eq(before, after), "fault universe was recomputed");
    }

    #[test]
    fn injected_artifacts_produce_identical_reports() {
        use bist_tgen::generate_t0;

        let circuit = Arc::new(benchmarks::s27());
        let faults =
            Arc::new(collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec());
        let t0 = Arc::new(generate_t0(&circuit, &TgenConfig::new().seed(1999)).unwrap());
        let injected = Session::builder()
            .with_artifacts(
                SessionArtifacts::new()
                    .circuit(Arc::clone(&circuit))
                    .faults(Arc::clone(&faults))
                    .generated_t0(Arc::clone(&t0))
                    .t0_seconds(1.5),
            )
            .seed(1999)
            .ns(vec![1, 2])
            .build()
            .unwrap();
        // The injected universe is served back without re-collapsing.
        assert!(std::ptr::eq(injected.collapsed_faults().as_ptr(), faults.as_ptr()));
        let a = injected.run().unwrap();
        let b = Session::builder().s27().seed(1999).ns(vec![1, 2]).run().unwrap();
        assert_eq!(a.t0(), b.t0());
        assert_eq!(a.coverage(), b.coverage());
        assert_eq!(a.best().after.total_len, b.best().after.total_len);
        assert_eq!(a.verified(), b.verified());
        // The producer's recorded generation time survives injection.
        assert_eq!(a.t0_seconds(), 1.5);
    }

    #[test]
    fn mismatched_injected_artifacts_are_config_errors() {
        let circuit = Arc::new(benchmarks::s27());
        // Fault universe from a bigger circuit: site indices out of range.
        let big = benchmarks::suite()[1].build().unwrap();
        let alien = Arc::new(collapse(&big, &fault_universe(&big)).representatives().to_vec());
        let err = Session::builder()
            .with_artifacts(SessionArtifacts::new().circuit(circuit).faults(alien))
            .build()
            .unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err:?}");
        // Generated T0 of the wrong width.
        let wide = benchmarks::suite()[1].build().unwrap();
        let t0 = Arc::new(
            bist_tgen::generate_t0(&wide, &TgenConfig::new().seed(1).max_length(8)).unwrap(),
        );
        let err = Session::builder()
            .s27()
            .with_artifacts(SessionArtifacts::new().generated_t0(t0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn bench_file_error_names_the_path() {
        let err = Session::builder().bench_file("/no/such/dir/missing.bench").build().unwrap_err();
        assert!(matches!(err, BistError::Io(_)), "{err:?}");
        assert!(err.to_string().contains("missing.bench"), "{err}");
    }

    #[test]
    fn empty_t0_is_a_config_error() {
        let empty = TestSequence::new(4);
        let err = Session::builder().s27().t0(empty).build().unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn custom_backend_impl_plugs_in() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let report = Session::builder()
            .s27()
            .t0(t0)
            .ns(vec![1])
            .backend_impl(Arc::new(bist_sim::ScalarBackend))
            .run()
            .unwrap();
        assert_eq!(report.backend_name(), "scalar");
        assert_eq!(report.verified(), Some(true));
    }

    #[test]
    fn into_parts_decomposes_without_loss() {
        let report = Session::builder().s27().seed(2).ns(vec![1]).run().unwrap();
        let total = report.best().after.total_len;
        let parts = report.into_parts();
        assert_eq!(parts.circuit.name(), "s27");
        assert_eq!(parts.scheme.best_run().after.total_len, total);
        assert_eq!(parts.coverage.detected_count(), 32);
        assert_eq!(parts.verified, Some(true));
    }

    #[test]
    fn session_is_reusable_and_deterministic() {
        let session = Session::builder().s27().seed(7).ns(vec![2]).build().unwrap();
        let a = session.run().unwrap();
        let b = session.run().unwrap();
        assert_eq!(a.t0(), b.t0());
        assert_eq!(a.best().after.total_len, b.best().after.total_len);
    }

    #[test]
    fn bench_text_source() {
        let report = Session::builder()
            .bench("s27", bist_netlist::benchmarks::S27_BENCH)
            .seed(3)
            .ns(vec![1])
            .run()
            .unwrap();
        assert_eq!(report.circuit().num_inputs(), 4);
    }

    #[test]
    fn instrumented_session_records_stage_spans_and_engine_counters() {
        let registry = Arc::new(bist_obs::Registry::new());
        registry.enable_tracing();
        let report = Session::builder()
            .s27()
            .seed(1999)
            .ns(vec![1, 2])
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .run()
            .unwrap();
        let snap = registry.snapshot();
        // Every stage span landed in its histogram exactly once.
        for name in ["session.t0_us", "session.fault_sim_us", "session.verify_us"] {
            let h = snap.histogram(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(h.count, 1, "{name}");
        }
        // Lazy artifacts were forced exactly once by this run.
        assert_eq!(snap.histogram("session.collapse_us").unwrap().count, 1);
        assert_eq!(snap.histogram("session.tape_compile_us").unwrap().count, 1);
        // The scheme sweep recorded one Procedure-1 span per n.
        assert_eq!(snap.histogram("core.procedure1_us").unwrap().count, 2);
        // The engines saw real work through the threaded sink.
        assert!(snap.counter("sim.vectors").unwrap() > 0);
        assert!(snap.counter("sim.chunks").unwrap() > 0);
        // Tracing captured the same spans as events.
        let events = registry.trace_events();
        assert!(events.iter().any(|e| e.span == "session.fault_sim_us" && e.labels == "s27"));
        // Stage wall-clock breakdown is recorded regardless of the sink.
        let stages = report.stages();
        assert!(stages.fault_sim > 0.0);
        assert!(stages.total() >= stages.fault_sim);
    }

    #[test]
    fn instrumented_session_is_bit_identical_to_uninstrumented() {
        let base = Session::builder().s27().seed(7).ns(vec![1, 2]).run().unwrap();
        let registry = Arc::new(bist_obs::Registry::new());
        let instrumented = Session::builder()
            .s27()
            .seed(7)
            .ns(vec![1, 2])
            .obs(Obs::with_registry(registry))
            .run()
            .unwrap();
        assert_eq!(instrumented.t0(), base.t0());
        assert_eq!(instrumented.coverage(), base.coverage());
        assert_eq!(instrumented.best().after.total_len, base.best().after.total_len);
        assert_eq!(instrumented.verified(), base.verified());
    }

    #[test]
    fn memory_costs_favor_the_scheme() {
        let report = Session::builder().s27().seed(1999).ns(vec![2]).run().unwrap();
        let (ours, mono) = report.memory_costs();
        assert!(ours.data_bits <= mono.data_bits);
    }
}
