//! The unified `Session` pipeline: one entry point for the whole scheme.
//!
//! A [`Session`] owns everything the paper's flow needs — the circuit, the
//! off-chip test sequence `T0`, the fault universe, the scheme
//! configuration and the simulation backend — and runs
//! circuit → `T0` → fault simulation → Procedure 1/2 → §3.2 compaction →
//! verification in one call. [`SessionBuilder`] is the only configuration
//! surface; no direct imports from `bist_sim` / `bist_expand` internals
//! are needed:
//!
//! ```
//! use subseq_bist::Session;
//!
//! let report = Session::builder().s27().seed(1999).run()?;
//! assert_eq!(report.verified(), Some(true));
//! println!("{}", report.summary());
//! # Ok::<(), subseq_bist::BistError>(())
//! ```
//!
//! The expanded sequences are simulated through the streaming
//! [`ExpansionIter`](bist_expand::ExpansionIter) path: `Sexp` is never
//! materialized during selection, compaction or verification.

use crate::BistError;
use bist_core::{
    monolithic_cost, run_scheme, scheme_cost, verify_full_coverage, MemoryCost, SchemeConfig,
    SchemeResult, SchemeRun,
};
use bist_expand::expansion::ExpansionConfig;
use bist_expand::TestSequence;
use bist_netlist::{benchmarks, Circuit};
use bist_sim::{
    collapse, fault_universe, Fault, FaultCoverage, FaultSimulator, ShardedBackend, SimBackend,
    WordWidth,
};
use bist_tgen::{generate_t0, TgenConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which fault-simulation engine a session uses.
///
/// Maps onto the [`SimBackend`](bist_sim::SimBackend) implementations of
/// `bist-sim`; the scalar engine exists for differential testing and is
/// dramatically slower on large fault lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// 63 faulty machines + the fused good machine per pass (the default
    /// single-threaded production engine).
    #[default]
    Packed,
    /// One faulty machine at a time (reference engine).
    Scalar,
    /// Fault-list sharding across OS threads × wide-word lane packing.
    ///
    /// `width` is the packed word width in lanes — 64, 256 or 512; any
    /// other value is rejected at [`SessionBuilder::build`] with a typed
    /// configuration error, as is `threads == 0`.
    Sharded {
        /// Number of worker threads (≥ 1).
        threads: usize,
        /// Packed word width in lanes (64, 256 or 512).
        width: usize,
    },
}

impl Backend {
    fn engine(self) -> Result<Arc<dyn SimBackend>, BistError> {
        match self {
            Backend::Packed => Ok(Arc::new(bist_sim::PackedBackend)),
            Backend::Scalar => Ok(Arc::new(bist_sim::ScalarBackend)),
            Backend::Sharded { threads, width } => {
                let width = WordWidth::from_lanes(width).ok_or_else(|| {
                    BistError::Config(format!(
                        "sharded backend width must be 64, 256 or 512 lanes, got {width}"
                    ))
                })?;
                Ok(Arc::new(ShardedBackend::new(threads, width)?))
            }
        }
    }
}

/// How the builder's engine was selected: by name (resolved and validated
/// at [`SessionBuilder::build`] time) or supplied directly.
#[derive(Debug, Clone)]
enum EngineSel {
    Named(Backend),
    Custom(Arc<dyn SimBackend>),
}

impl EngineSel {
    fn resolve(&self) -> Result<Arc<dyn SimBackend>, BistError> {
        match self {
            EngineSel::Named(backend) => backend.engine(),
            EngineSel::Custom(engine) => Ok(Arc::clone(engine)),
        }
    }
}

/// Where a session's circuit comes from.
#[derive(Debug, Clone)]
enum CircuitSource {
    /// The paper's worked example (ISCAS-89 `s27`).
    S27,
    /// A circuit supplied directly.
    Owned(Box<Circuit>),
    /// Inline ISCAS-89 `.bench` text.
    Bench { name: String, text: String },
    /// An ISCAS-89 `.bench` file on disk.
    File(PathBuf),
    /// A named entry of the built-in benchmark suite (`s27`, `a298`, ...).
    Suite(String),
}

impl CircuitSource {
    fn build(&self) -> Result<Circuit, BistError> {
        match self {
            CircuitSource::S27 => Ok(benchmarks::s27()),
            CircuitSource::Owned(c) => Ok((**c).clone()),
            CircuitSource::Bench { name, text } => {
                Ok(bist_netlist::parser::parse_bench(name.clone(), text)?)
            }
            CircuitSource::File(path) => {
                // Attach the offending path: a bare io::Error ("No such
                // file or directory") is useless once the builder chain
                // has moved on.
                let text = std::fs::read_to_string(path).map_err(|e| {
                    BistError::Io(std::io::Error::new(
                        e.kind(),
                        format!("reading bench file `{}`: {e}", path.display()),
                    ))
                })?;
                let name =
                    path.file_stem().and_then(|s| s.to_str()).unwrap_or("circuit").to_string();
                Ok(bist_netlist::parser::parse_bench(name, &text)?)
            }
            CircuitSource::Suite(name) => {
                let entries = benchmarks::suite();
                let entry = entries.iter().find(|e| e.name == name).ok_or_else(|| {
                    let known: Vec<&str> = entries.iter().map(|e| e.name).collect();
                    BistError::Config(format!(
                        "unknown suite circuit `{name}`; known: {}",
                        known.join(", ")
                    ))
                })?;
                Ok(entry.build()?)
            }
        }
    }
}

/// Builder for a [`Session`]. Obtained from [`Session::builder`].
///
/// Defaults: the `s27` circuit, a generated `T0` (seed 0), the paper's
/// `n ∈ {2, 4, 8, 16}` sweep with §3.2 postprocessing, the packed
/// backend, and post-run coverage verification.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    source: CircuitSource,
    tgen: TgenConfig,
    scheme: SchemeConfig,
    engine: EngineSel,
    seed: Option<u64>,
    t0: Option<TestSequence>,
    verify: bool,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            source: CircuitSource::S27,
            tgen: TgenConfig::new(),
            scheme: SchemeConfig::new(),
            engine: EngineSel::Named(Backend::Packed),
            seed: None,
            t0: None,
            verify: true,
        }
    }
}

impl SessionBuilder {
    /// Uses the paper's worked example circuit (ISCAS-89 `s27`).
    #[must_use]
    pub fn s27(mut self) -> Self {
        self.source = CircuitSource::S27;
        self
    }

    /// Uses a circuit built elsewhere.
    #[must_use]
    pub fn circuit(mut self, circuit: Circuit) -> Self {
        self.source = CircuitSource::Owned(Box::new(circuit));
        self
    }

    /// Parses an ISCAS-89 `.bench` netlist from text.
    #[must_use]
    pub fn bench(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.source = CircuitSource::Bench { name: name.into(), text: text.into() };
        self
    }

    /// Reads an ISCAS-89 `.bench` netlist from a file.
    #[must_use]
    pub fn bench_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = CircuitSource::File(path.into());
        self
    }

    /// Uses a circuit of the built-in benchmark suite by name
    /// (`"s27"`, `"a298"`, ...).
    #[must_use]
    pub fn suite_circuit(mut self, name: impl Into<String>) -> Self {
        self.source = CircuitSource::Suite(name.into());
        self
    }

    /// Supplies `T0` directly instead of generating it. Its coverage
    /// (detected faults + `udet`) is obtained by fault simulation.
    #[must_use]
    pub fn t0(mut self, t0: TestSequence) -> Self {
        self.t0 = Some(t0);
        self
    }

    /// Seeds both `T0` generation and Procedure 2's omission order.
    ///
    /// Applied at [`build`](Self::build) time, so the call order relative
    /// to [`tgen`](Self::tgen) does not matter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The repetition counts to sweep (the paper's default is
    /// `[2, 4, 8, 16]`).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is empty or contains 0.
    #[must_use]
    pub fn ns(mut self, ns: impl Into<Vec<usize>>) -> Self {
        self.scheme = self.scheme.ns(ns.into());
        self
    }

    /// Enables/disables the §3.2 static compaction of `S`.
    #[must_use]
    pub fn postprocess(mut self, on: bool) -> Self {
        self.scheme = self.scheme.postprocess(on);
        self
    }

    /// Selects one of the built-in fault-simulation engines. Invalid
    /// configurations (e.g. `Backend::Sharded` with zero threads or an
    /// unsupported width) surface as typed errors at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.engine = EngineSel::Named(backend);
        self
    }

    /// Plugs in any [`SimBackend`] implementation — the extension point
    /// for engines beyond the built-in three.
    #[must_use]
    pub fn backend_impl(mut self, engine: Arc<dyn SimBackend>) -> Self {
        self.engine = EngineSel::Custom(engine);
        self
    }

    /// Replaces the `T0`-generation configuration wholesale (burst length,
    /// stall limit, hold probability, length cap, compaction budget).
    #[must_use]
    pub fn tgen(mut self, config: TgenConfig) -> Self {
        self.tgen = config;
        self
    }

    /// Enables/disables the post-run coverage verification (streamed
    /// re-simulation of the best run's expansions; on by default).
    #[must_use]
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Materializes the circuit and fixes the configuration.
    ///
    /// # Errors
    ///
    /// Circuit construction / file / configuration errors.
    pub fn build(self) -> Result<Session, BistError> {
        let circuit = self.source.build()?;
        let engine = self.engine.resolve()?;
        if let Some(t0) = &self.t0 {
            if t0.is_empty() {
                return Err(BistError::Config("supplied T0 is empty".to_string()));
            }
            if t0.width() != circuit.num_inputs() {
                return Err(BistError::Config(format!(
                    "supplied T0 width {} does not match circuit input count {}",
                    t0.width(),
                    circuit.num_inputs()
                )));
            }
        }
        let (mut tgen, mut scheme) = (self.tgen, self.scheme);
        if let Some(seed) = self.seed {
            tgen = tgen.seed(seed);
            scheme = scheme.seed(seed);
        }
        Ok(Session { circuit, t0: self.t0, tgen, scheme, engine, verify: self.verify })
    }

    /// [`build`](Self::build) + [`Session::run`] in one call.
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build) and [`Session::run`].
    pub fn run(self) -> Result<SessionReport, BistError> {
        self.build()?.run()
    }
}

/// A fully configured pipeline over one circuit.
///
/// Create with [`Session::builder`]; [`run`](Session::run) executes the
/// complete flow and can be called repeatedly (it is deterministic for a
/// fixed configuration).
#[derive(Debug, Clone)]
pub struct Session {
    circuit: Circuit,
    t0: Option<TestSequence>,
    tgen: TgenConfig,
    scheme: SchemeConfig,
    engine: Arc<dyn SimBackend>,
    verify: bool,
}

impl Session {
    /// Starts configuring a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Runs the full pipeline: collapse the fault universe, obtain `T0`
    /// and its coverage, sweep the scheme over the configured `n` values,
    /// and (unless disabled) verify the best run's joint coverage through
    /// the streaming expansion path.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (these indicate impossible
    /// configurations and do not occur for valid circuits).
    pub fn run(&self) -> Result<SessionReport, BistError> {
        let faults =
            collapse(&self.circuit, &fault_universe(&self.circuit)).representatives().to_vec();
        let sim = FaultSimulator::with_backend(&self.circuit, Arc::clone(&self.engine));

        let started = Instant::now();
        let (t0, coverage) = match &self.t0 {
            Some(seq) => (seq.clone(), FaultCoverage::simulate(&sim, seq, faults.clone())?),
            None => {
                let generated = generate_t0(&self.circuit, &self.tgen)?;
                (generated.sequence, generated.coverage)
            }
        };
        let t0_seconds = started.elapsed().as_secs_f64();

        let scheme = run_scheme(&sim, &t0, &coverage, &self.scheme)?;

        let verified = if self.verify {
            let best = scheme.best_run();
            let detected: Vec<Fault> = coverage.detected().map(|(f, _)| f).collect();
            Some(verify_full_coverage(
                &sim,
                &best.sequences,
                &ExpansionConfig::new(best.n)?,
                &detected,
            )?)
        } else {
            None
        };

        Ok(SessionReport {
            circuit: self.circuit.clone(),
            backend: sim.backend().name(),
            faults_total: faults.len(),
            t0,
            coverage,
            scheme,
            verified,
            t0_seconds,
        })
    }
}

/// A [`SessionReport`] decomposed into owned pieces — for consumers that
/// keep the data (pipelines, caches) without re-cloning what the report
/// already owns. See [`SessionReport::into_parts`].
#[derive(Debug, Clone)]
pub struct SessionParts {
    /// The circuit under test.
    pub circuit: Circuit,
    /// Name of the fault-simulation engine used.
    pub backend: &'static str,
    /// Size of the collapsed fault universe.
    pub faults_total: usize,
    /// The off-chip test sequence the scheme started from.
    pub t0: TestSequence,
    /// Coverage of `T0` (detected set + `udet` times).
    pub coverage: FaultCoverage,
    /// The full sweep result.
    pub scheme: SchemeResult,
    /// Outcome of the post-run verification (`None` if disabled).
    pub verified: Option<bool>,
    /// Wall-clock seconds spent obtaining `T0` and its coverage.
    pub t0_seconds: f64,
}

/// Everything one pipeline run produced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    circuit: Circuit,
    backend: &'static str,
    faults_total: usize,
    t0: TestSequence,
    coverage: FaultCoverage,
    scheme: SchemeResult,
    verified: Option<bool>,
    t0_seconds: f64,
}

impl SessionReport {
    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Name of the fault-simulation engine used.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend
    }

    /// Size of the collapsed fault universe.
    #[must_use]
    pub fn faults_total(&self) -> usize {
        self.faults_total
    }

    /// The off-chip test sequence the scheme started from.
    #[must_use]
    pub fn t0(&self) -> &TestSequence {
        &self.t0
    }

    /// Coverage of `T0` (detected set + `udet` times).
    #[must_use]
    pub fn coverage(&self) -> &FaultCoverage {
        &self.coverage
    }

    /// Wall-clock seconds spent obtaining `T0` and its coverage.
    #[must_use]
    pub fn t0_seconds(&self) -> f64 {
        self.t0_seconds
    }

    /// The full sweep result (one run per `n`).
    #[must_use]
    pub fn scheme(&self) -> &SchemeResult {
        &self.scheme
    }

    /// The best run per the paper's rule (smallest max len, then total
    /// len, then run time).
    #[must_use]
    pub fn best(&self) -> &SchemeRun {
        self.scheme.best_run()
    }

    /// Whether the best run's expansions were re-verified to cover every
    /// fault `T0` detects (`None` if verification was disabled).
    #[must_use]
    pub fn verified(&self) -> Option<bool> {
        self.verified
    }

    /// Loaded vectors as a fraction of `|T0|` — the paper's headline
    /// *tot len / |T0|* ratio (Table 5 averages 0.46).
    #[must_use]
    pub fn loaded_fraction(&self) -> f64 {
        self.best().after.total_len as f64 / self.t0.len().max(1) as f64
    }

    /// On-chip memory cost of the best run vs. storing all of `T0`.
    #[must_use]
    pub fn memory_costs(&self) -> (MemoryCost, MemoryCost) {
        let width = self.circuit.num_inputs();
        let best = self.best();
        (
            scheme_cost(best.after.max_len.max(1), width, best.n),
            monolithic_cost(self.t0.len().max(1), width),
        )
    }

    /// Decomposes the report into its owned pieces (no cloning).
    #[must_use]
    pub fn into_parts(self) -> SessionParts {
        SessionParts {
            circuit: self.circuit,
            backend: self.backend,
            faults_total: self.faults_total,
            t0: self.t0,
            coverage: self.coverage,
            scheme: self.scheme,
            verified: self.verified,
            t0_seconds: self.t0_seconds,
        }
    }

    /// A compact human-readable summary of the run.
    #[must_use]
    pub fn summary(&self) -> String {
        let best = self.best();
        let verified = match self.verified {
            Some(true) => "verified",
            Some(false) => "FAILED VERIFICATION",
            None => "not verified",
        };
        format!(
            "{}: T0 = {} vectors covering {}/{} faults; best n = {}: |S| = {}, \
             tot len = {} ({:.0}% of T0), max len = {}, applied at speed = {} \
             [{} backend, coverage {}]",
            self.circuit.name(),
            self.t0.len(),
            self.coverage.detected_count(),
            self.faults_total,
            best.n,
            best.after.count,
            best.after.total_len,
            100.0 * self.loaded_fraction(),
            best.after.max_len,
            best.applied_test_len(),
            self.backend,
            verified,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_session_runs_s27() {
        let report = Session::builder().seed(1999).ns(vec![1, 2]).run().unwrap();
        assert_eq!(report.circuit().name(), "s27");
        assert_eq!(report.faults_total(), 32);
        assert_eq!(report.coverage().detected_count(), 32);
        assert_eq!(report.verified(), Some(true));
        assert!(report.loaded_fraction() <= 1.0);
        assert!(report.summary().contains("s27"));
    }

    #[test]
    fn supplied_t0_is_used_verbatim() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let report = Session::builder().s27().t0(t0.clone()).ns(vec![1]).run().unwrap();
        assert_eq!(report.t0(), &t0);
        assert_eq!(report.coverage().detected_count(), 32);
    }

    #[test]
    fn t0_width_mismatch_is_a_config_error() {
        let t0: TestSequence = "000 111".parse().unwrap();
        let err = Session::builder().s27().t0(t0).build().unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err}");
    }

    #[test]
    fn unknown_suite_circuit_is_a_config_error() {
        let err = Session::builder().suite_circuit("nope").build().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn scalar_backend_matches_packed_results() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let run = |backend| {
            Session::builder().s27().t0(t0.clone()).ns(vec![1]).backend(backend).run().unwrap()
        };
        let packed = run(Backend::Packed);
        let scalar = run(Backend::Scalar);
        assert_eq!(packed.backend_name(), "packed64");
        assert_eq!(scalar.backend_name(), "scalar");
        // Identical detection times drive identical selections.
        assert_eq!(packed.coverage().times(), scalar.coverage().times());
        assert_eq!(packed.best().after.total_len, scalar.best().after.total_len);
    }

    #[test]
    fn sharded_backend_matches_packed_results() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let run = |backend| {
            Session::builder().s27().t0(t0.clone()).ns(vec![1]).backend(backend).run().unwrap()
        };
        let packed = run(Backend::Packed);
        for (threads, width, name) in
            [(1, 64, "sharded64"), (2, 256, "sharded256"), (4, 512, "sharded512")]
        {
            let sharded = run(Backend::Sharded { threads, width });
            assert_eq!(sharded.backend_name(), name);
            assert_eq!(packed.coverage().times(), sharded.coverage().times());
            assert_eq!(packed.best().after.total_len, sharded.best().after.total_len);
            assert_eq!(sharded.verified(), Some(true));
        }
    }

    #[test]
    fn sharded_misconfiguration_is_a_typed_error_not_a_panic() {
        let bad_width =
            Session::builder().s27().backend(Backend::Sharded { threads: 4, width: 100 }).build();
        match bad_width {
            Err(BistError::Config(msg)) => assert!(msg.contains("100"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
        let zero_threads =
            Session::builder().s27().backend(Backend::Sharded { threads: 0, width: 256 }).build();
        assert!(
            matches!(zero_threads, Err(BistError::Sim(bist_sim::SimError::ZeroThreads))),
            "{zero_threads:?}"
        );
    }

    #[test]
    fn bench_file_error_names_the_path() {
        let err = Session::builder().bench_file("/no/such/dir/missing.bench").build().unwrap_err();
        assert!(matches!(err, BistError::Io(_)), "{err:?}");
        assert!(err.to_string().contains("missing.bench"), "{err}");
    }

    #[test]
    fn empty_t0_is_a_config_error() {
        let empty = TestSequence::new(4);
        let err = Session::builder().s27().t0(empty).build().unwrap_err();
        assert!(matches!(err, BistError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn custom_backend_impl_plugs_in() {
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let report = Session::builder()
            .s27()
            .t0(t0)
            .ns(vec![1])
            .backend_impl(Arc::new(bist_sim::ScalarBackend))
            .run()
            .unwrap();
        assert_eq!(report.backend_name(), "scalar");
        assert_eq!(report.verified(), Some(true));
    }

    #[test]
    fn into_parts_decomposes_without_loss() {
        let report = Session::builder().s27().seed(2).ns(vec![1]).run().unwrap();
        let total = report.best().after.total_len;
        let parts = report.into_parts();
        assert_eq!(parts.circuit.name(), "s27");
        assert_eq!(parts.scheme.best_run().after.total_len, total);
        assert_eq!(parts.coverage.detected_count(), 32);
        assert_eq!(parts.verified, Some(true));
    }

    #[test]
    fn session_is_reusable_and_deterministic() {
        let session = Session::builder().s27().seed(7).ns(vec![2]).build().unwrap();
        let a = session.run().unwrap();
        let b = session.run().unwrap();
        assert_eq!(a.t0(), b.t0());
        assert_eq!(a.best().after.total_len, b.best().after.total_len);
    }

    #[test]
    fn bench_text_source() {
        let report = Session::builder()
            .bench("s27", bist_netlist::benchmarks::S27_BENCH)
            .seed(3)
            .ns(vec![1])
            .run()
            .unwrap();
        assert_eq!(report.circuit().num_inputs(), 4);
    }

    #[test]
    fn memory_costs_favor_the_scheme() {
        let report = Session::builder().s27().seed(1999).ns(vec![2]).run().unwrap();
        let (ours, mono) = report.memory_costs();
        assert!(ours.data_bits <= mono.data_bits);
    }
}
