//! The workspace-wide error type.
//!
//! Each crate keeps its own precise error enum (`NetlistError`,
//! `SimError`, `ExpandError`); [`BistError`] unifies them at the facade
//! boundary so that applications — the [`Session`](crate::Session)
//! pipeline, examples, benchmark binaries — handle one type instead of
//! `Box<dyn Error>` plumbing.

use bist_expand::ExpandError;
use bist_netlist::NetlistError;
use bist_sim::SimError;
use std::fmt;

/// Any error the `subseq-bist` pipeline can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum BistError {
    /// Circuit construction or `.bench` parsing failed.
    Netlist(NetlistError),
    /// Simulation rejected its input (width mismatch, empty sequence).
    Sim(SimError),
    /// Sequence construction or expansion configuration failed.
    Expand(ExpandError),
    /// Reading a circuit file failed.
    Io(std::io::Error),
    /// A [`Session`](crate::Session) was configured inconsistently.
    Config(String),
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::Netlist(e) => write!(f, "netlist error: {e}"),
            BistError::Sim(e) => write!(f, "simulation error: {e}"),
            BistError::Expand(e) => write!(f, "expansion error: {e}"),
            BistError::Io(e) => write!(f, "i/o error: {e}"),
            BistError::Config(msg) => write!(f, "session configuration error: {msg}"),
        }
    }
}

impl std::error::Error for BistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BistError::Netlist(e) => Some(e),
            BistError::Sim(e) => Some(e),
            BistError::Expand(e) => Some(e),
            BistError::Io(e) => Some(e),
            BistError::Config(_) => None,
        }
    }
}

impl From<NetlistError> for BistError {
    fn from(e: NetlistError) -> Self {
        BistError::Netlist(e)
    }
}

impl From<SimError> for BistError {
    fn from(e: SimError) -> Self {
        BistError::Sim(e)
    }
}

impl From<ExpandError> for BistError {
    fn from(e: ExpandError) -> Self {
        BistError::Expand(e)
    }
}

impl From<std::io::Error> for BistError {
    fn from(e: std::io::Error) -> Self {
        BistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e: BistError = SimError::EmptySequence.into();
        assert!(e.to_string().contains("simulation"));
        assert!(e.source().is_some());
        let c = BistError::Config("bad".into());
        assert!(c.source().is_none());
        assert!(c.to_string().contains("bad"));
    }

    #[test]
    fn from_conversions() {
        fn takes(_: BistError) {}
        takes(NetlistError::NoInputs.into());
        takes(ExpandError::Empty.into());
        takes(std::io::Error::new(std::io::ErrorKind::NotFound, "x").into());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<BistError>();
    }
}
