//! # subseq-bist — built-in test sequence generation by loading and
//! expansion of test subsequences
//!
//! A full Rust reproduction of **Pomeranz & Reddy, "Built-In Test
//! Sequence Generation for Synchronous Sequential Circuits Based on
//! Loading and Expansion of Test Subsequences", DAC 1999**, including
//! every substrate the paper depends on: a gate-level netlist model with
//! ISCAS-89 `.bench` I/O, a three-valued sequential fault simulator with
//! pluggable backends, a deterministic test generator standing in for
//! STRATEGATE, the on-chip expansion hardware at register-transfer
//! accuracy, and the paper's Procedures 1 & 2 with the §3.2 static
//! compaction.
//!
//! # Quickstart
//!
//! The [`Session`] pipeline is the single entry point: it owns circuit
//! loading, `T0` generation, fault collapsing, the scheme sweep and
//! verification. One builder chain runs the paper's whole flow:
//!
//! ```
//! use subseq_bist::Session;
//!
//! let report = Session::builder().s27().seed(1999).ns(vec![1, 2]).run()?;
//! let best = report.best();
//! println!(
//!     "load {} vectors (T0 has {}), memory depth {}, applied {} at speed",
//!     best.after.total_len,
//!     report.t0().len(),
//!     best.after.max_len,
//!     best.applied_test_len(),
//! );
//! assert_eq!(report.verified(), Some(true));   // the paper's guarantee
//! # Ok::<(), subseq_bist::BistError>(())
//! ```
//!
//! Underneath, the expanded sequences are *streamed*
//! ([`ExpansionIter`](expand::ExpansionIter)) through a pluggable
//! fault-simulation backend ([`SimBackend`](sim::SimBackend)) — the
//! `8·n·|S|`-vector `Sexp` is never materialized on the selection,
//! compaction or verification paths, mirroring the on-chip hardware that
//! regenerates it clock by clock.
//!
//! # Layers
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`netlist`] — circuits, `.bench` parsing, benchmark generators
//! * [`sim`] — 3-valued logic + stuck-at fault simulation backends
//! * [`expand`] — test sequences, the `Sexp` expansion, hardware model
//! * [`tgen`] — `T0` generation and static compaction
//! * [`core`] — subsequence selection (the paper's contribution)
//! * [`obs`] — zero-dependency telemetry: counters, histograms, spans
//!
//! plus the [`Session`] pipeline and the workspace-wide [`BistError`].
//!
//! See `examples/` for runnable end-to-end scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod session;

pub use bist_core as core;
pub use bist_expand as expand;
pub use bist_netlist as netlist;
pub use bist_sim as sim;
pub use bist_tgen as tgen;
pub use bist_verify as verify;

/// Re-exported from `bist-netlist`: the staged-compiler configuration
/// surface consumed by [`SessionBuilder::optimize`] and
/// [`SessionArtifacts::compiled`].
pub use bist_netlist::{compile_staged, CompileOptions, CompiledCircuit};
/// Re-exported from `bist-obs`: the zero-dependency telemetry layer.
/// Pass an active [`Obs`] to [`SessionBuilder::obs`] to collect span
/// histograms, engine counters and (optionally) trace events; snapshot
/// and export via [`obs::Registry`] and [`obs::export`].
pub use bist_obs as obs;
pub use bist_obs::{MetricsSnapshot, Obs, Registry};
pub use error::BistError;
pub use session::{
    Backend, Session, SessionArtifacts, SessionBuilder, SessionParts, SessionReport, StageSeconds,
};
