//! # subseq-bist — built-in test sequence generation by loading and
//! expansion of test subsequences
//!
//! A full Rust reproduction of **Pomeranz & Reddy, "Built-In Test
//! Sequence Generation for Synchronous Sequential Circuits Based on
//! Loading and Expansion of Test Subsequences", DAC 1999**, including
//! every substrate the paper depends on: a gate-level netlist model with
//! ISCAS-89 `.bench` I/O, a three-valued sequential fault simulator, a
//! deterministic test generator standing in for STRATEGATE, the on-chip
//! expansion hardware at register-transfer accuracy, and the paper's
//! Procedures 1 & 2 with the §3.2 static compaction.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`netlist`] — circuits, `.bench` parsing, benchmark generators
//! * [`sim`] — 3-valued logic + stuck-at fault simulation
//! * [`expand`] — test sequences, the `Sexp` expansion, hardware model
//! * [`tgen`] — `T0` generation and static compaction
//! * [`core`] — subsequence selection (the paper's contribution)
//!
//! # Quickstart
//!
//! ```
//! use subseq_bist::core::{run_scheme, SchemeConfig};
//! use subseq_bist::netlist::benchmarks;
//! use subseq_bist::sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};
//! use subseq_bist::tgen::{generate_t0, TgenConfig};
//!
//! // 1. A circuit (the paper's worked example).
//! let circuit = benchmarks::s27();
//!
//! // 2. An off-chip test sequence T0 with known coverage.
//! let t0 = generate_t0(&circuit, &TgenConfig::new().seed(1999))?;
//!
//! // 3. Select the subsequences to load and expand on chip.
//! let sim = FaultSimulator::new(&circuit);
//! let result = run_scheme(&sim, &t0.sequence, &t0.coverage, &SchemeConfig::new())?;
//! let best = result.best_run();
//! println!(
//!     "load {} vectors (T0 has {}), memory depth {}",
//!     best.after.total_len,
//!     t0.sequence.len(),
//!     best.after.max_len,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use bist_core as core;
pub use bist_expand as expand;
pub use bist_netlist as netlist;
pub use bist_sim as sim;
pub use bist_tgen as tgen;
