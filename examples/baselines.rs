//! Comparing the paper's scheme against the two alternatives discussed in
//! its introduction, on the same circuit and fault set:
//!
//! * **partition-and-load** — every vector of `T0` is loaded; only the
//!   per-load memory shrinks;
//! * **LFSR with hold** (Nachman et al. [3]) — nothing is loaded, but
//!   full coverage of `F` is not guaranteed;
//! * **the scheme** — loads less than all of `T0` *and* guarantees `F`.
//!
//! ```text
//! cargo run --release --example baselines [circuit]
//! ```

use subseq_bist::core::{
    lfsr_hold_baseline, partition_baseline, run_scheme, SchemeConfig,
};
use subseq_bist::netlist::benchmarks::suite;
use subseq_bist::sim::FaultSimulator;
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "a298".to_string());
    let entries = suite();
    let entry = entries
        .iter()
        .find(|e| e.name == name)
        .ok_or_else(|| format!("unknown circuit `{name}`"))?;
    let circuit = entry.build()?;
    println!("circuit: {circuit}\n");

    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(1999))?;
    let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
    println!(
        "T0: {} vectors, F = {} detected faults",
        t0.sequence.len(),
        detected.len()
    );

    let sim = FaultSimulator::new(&circuit);

    // The scheme.
    let scheme = run_scheme(&sim, &t0.sequence, &t0.coverage, &SchemeConfig::new())?;
    let best = scheme.best_run();
    println!("\n== proposed scheme (n = {}) ==", best.n);
    println!("  loaded vectors : {}", best.after.total_len);
    println!("  memory depth   : {}", best.after.max_len);
    println!("  applied length : {}", best.applied_test_len());
    println!("  coverage of F  : guaranteed (verified by construction)");

    // Partition baseline.
    let part = partition_baseline(&sim, &t0.sequence, &detected, 32)?;
    println!("\n== partition T0 into blocks and load each ==");
    println!("  loaded vectors : {} (always |T0|)", part.total_len);
    println!("  memory depth   : {} ({} blocks)", part.max_len, part.blocks);
    println!("  coverage of F  : guaranteed");

    // LFSR-with-hold baseline, same applied test length as the scheme.
    let applied = best.applied_test_len().max(1);
    let lfsr = lfsr_hold_baseline(&sim, &detected, applied, 3, 0xBEEF)?;
    println!("\n== LFSR with hold [3], same applied length ==");
    println!("  loaded vectors : 0");
    println!("  memory depth   : 0");
    println!("  applied length : {}", lfsr.applied_len);
    println!(
        "  coverage of F  : {}/{} ({:.1}%) — not guaranteed",
        lfsr.detected,
        lfsr.total,
        100.0 * lfsr.fraction()
    );

    println!(
        "\nsummary: the scheme loads {:.0}% of T0 with a {}-deep memory while keeping\n\
         the coverage guarantee; partitioning loads 100%; the LFSR loads nothing but\n\
         leaves {:.1}% of F undetected at the same applied length.",
        100.0 * best.after.total_len as f64 / t0.sequence.len() as f64,
        best.after.max_len,
        100.0 * (1.0 - lfsr.fraction())
    );
    Ok(())
}
