//! Comparing the paper's scheme against the two alternatives discussed in
//! its introduction, on the same circuit and fault set:
//!
//! * **partition-and-load** — every vector of `T0` is loaded; only the
//!   per-load memory shrinks;
//! * **LFSR with hold** (Nachman et al. [3]) — nothing is loaded, but
//!   full coverage of `F` is not guaranteed;
//! * **the scheme** — loads less than all of `T0` *and* guarantees `F`.
//!
//! ```text
//! cargo run --release --example baselines [circuit]
//! ```

use subseq_bist::core::{lfsr_hold_baseline, partition_baseline};
use subseq_bist::sim::FaultSimulator;
use subseq_bist::{BistError, Session};

fn main() -> Result<(), BistError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "a298".to_string());

    // The scheme, via one Session run.
    let report = Session::builder().suite_circuit(&name).seed(1999).run()?;
    let circuit = report.circuit();
    println!("circuit: {circuit}\n");

    let detected: Vec<_> = report.coverage().detected().map(|(f, _)| f).collect();
    println!("T0: {} vectors, F = {} detected faults", report.t0().len(), detected.len());

    let best = report.best();
    println!("\n== proposed scheme (n = {}) ==", best.n);
    println!("  loaded vectors : {}", best.after.total_len);
    println!("  memory depth   : {}", best.after.max_len);
    println!("  applied length : {}", best.applied_test_len());
    println!("  coverage of F  : guaranteed (verified: {:?})", report.verified());

    // Partition baseline.
    let sim = FaultSimulator::new(circuit);
    let part = partition_baseline(&sim, report.t0(), &detected, 32)?;
    println!("\n== partition T0 into blocks and load each ==");
    println!("  loaded vectors : {} (always |T0|)", part.total_len);
    println!("  memory depth   : {} ({} blocks)", part.max_len, part.blocks);
    println!("  coverage of F  : guaranteed");

    // LFSR-with-hold baseline, same applied test length as the scheme.
    let applied = best.applied_test_len().max(1);
    let lfsr = lfsr_hold_baseline(&sim, &detected, applied, 3, 0xBEEF)?;
    println!("\n== LFSR with hold [3], same applied length ==");
    println!("  loaded vectors : 0");
    println!("  memory depth   : 0");
    println!("  applied length : {}", lfsr.applied_len);
    println!(
        "  coverage of F  : {}/{} ({:.1}%) — not guaranteed",
        lfsr.detected,
        lfsr.total,
        100.0 * lfsr.fraction()
    );

    println!(
        "\nsummary: the scheme loads {:.0}% of T0 with a {}-deep memory while keeping\n\
         the coverage guarantee; partitioning loads 100%; the LFSR loads nothing but\n\
         leaves {:.1}% of F undetected at the same applied length.",
        100.0 * report.loaded_fraction(),
        best.after.max_len,
        100.0 * (1.0 - lfsr.fraction())
    );
    Ok(())
}
