//! The full s27 flow through the unified `Session` pipeline — circuit,
//! `T0` generation, fault collapsing, Procedure 1/2 selection over the
//! paper's `n` sweep, §3.2 compaction, and streamed coverage
//! verification — in one builder chain.
//!
//! ```text
//! cargo run --release --example bist_session
//! ```

use subseq_bist::{BistError, Session};

fn main() -> Result<(), BistError> {
    let report = Session::builder().s27().seed(1999).run()?;
    println!("{}", report.summary());
    Ok(())
}
