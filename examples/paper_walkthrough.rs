//! A guided replay of the paper's §3.1 worked example on `s27`.
//!
//! The paper demonstrates Procedure 2 on the fault it calls `f10` — the
//! fault with the highest detection time (`udet = 9`) under the Table 2
//! test sequence — using `n = 1` repetitions. This example reruns that
//! story with our implementation and prints every step: the detection
//! table, the window growth, the vector omissions, and the remaining
//! Procedure 1 iterations.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use subseq_bist::core::{find_subsequence, select_subsequences};
use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::expand::TestSequence;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};
use subseq_bist::BistError;

fn main() -> Result<(), BistError> {
    let circuit = benchmarks::s27();
    // The exact sequence of the paper's Table 2.
    let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
    let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(&circuit);
    let cov = FaultCoverage::simulate(&sim, &t0, faults)?;

    println!("== Table 2: detection times under T0 ==");
    let mut by_time: Vec<Vec<String>> = vec![Vec::new(); t0.len()];
    for (f, u) in cov.detected() {
        by_time[u].push(f.describe(&circuit));
    }
    for (u, names) in by_time.iter().enumerate() {
        println!("u={u}  T0[u]={}  {}", t0[u], names.join(" "));
    }

    // The paper's f10: the fault with udet = 9.
    let (target, udet) = cov.detected().max_by_key(|&(_, u)| u).expect("full coverage");
    println!(
        "\n== Procedure 2 for the hardest fault ({}, udet = {udet}), n = 1 ==",
        target.describe(&circuit)
    );
    let expansion = ExpansionConfig::new(1)?;

    // Replay the window growth by hand so every probe is visible (the
    // library call does the same internally).
    let mut ustart = udet;
    loop {
        let window = t0.subsequence(ustart, udet);
        let detected = sim.detects(&expansion.expand(&window), target)?;
        println!(
            "T' = T0[{ustart},{udet}] = ({window})  ->  T'exp {}",
            if detected { "DETECTS the fault" } else { "does not detect" }
        );
        if detected {
            break;
        }
        ustart -= 1;
    }
    println!("(the paper reaches ustart = 6 for its fault numbering)");

    let (sel, stats) = find_subsequence(&sim, &t0, target, udet, &expansion, 0)?;
    println!(
        "\nafter random-order vector omission ({} trials, {} vectors removed):",
        stats.omit_simulations, stats.omitted
    );
    println!(
        "T' = ({})  — {} vectors loaded instead of the {}-vector window",
        sel.sequence,
        sel.len(),
        sel.window.1 - sel.window.0 + 1
    );
    println!("T'exp = ({})", expansion.expand(&sel.sequence));

    println!("\n== Procedure 1: full selection, n = 1 ==");
    let selection = select_subsequences(&sim, &t0, &cov, &expansion, 0)?;
    for (i, s) in selection.sequences.iter().enumerate() {
        println!(
            "S{} targets {} (udet {}): window T0[{},{}], loaded ({})",
            i + 1,
            s.target.describe(&circuit),
            s.window.1,
            s.window.0,
            s.window.1,
            s.sequence
        );
    }
    println!(
        "(the paper's run also ends with 3 sequences; its second target is the\n\
         udet = 5 fault and its third detects the remaining five faults)"
    );
    Ok(())
}
