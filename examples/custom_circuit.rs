//! Using the library on your own circuit: parse an ISCAS-89 `.bench`
//! netlist, run the scheme through [`Session`], and size the on-chip test
//! hardware.
//!
//! ```text
//! cargo run --release --example custom_circuit [path/to/circuit.bench]
//! ```
//!
//! Without an argument, a built-in Gray-code counter netlist is used.

use subseq_bist::expand::encoding::RleSequence;
use subseq_bist::{BistError, Session};

/// A 3-bit Gray-code counter with enable and synchronous clear — the kind
/// of small control logic the paper's scheme targets.
const GRAY_COUNTER: &str = "\
# gray3: 3-bit Gray code counter with enable and clear
INPUT(en)
INPUT(clr)
OUTPUT(g0)
OUTPUT(g1)
OUTPUT(g2)
g0 = DFF(d0)
g1 = DFF(d1)
g2 = DFF(d2)
nclr  = NOT(clr)
par   = XOR(g0, g1)
npar  = XNOR(g0, g1)
t0    = NOT(g0)
n0    = XOR(g0, en)
d0raw = BUF(n0)
d0    = AND(d0raw, nclr)
selb  = AND(en, t0)
n1    = XOR(g1, selb)
d1    = AND(n1, nclr)
sel2  = AND(en, g0)
up2   = AND(sel2, npar)
n2    = XOR(g2, up2)
d2    = AND(n2, nclr)
";

fn main() -> Result<(), BistError> {
    let builder = match std::env::args().nth(1) {
        Some(path) => Session::builder().bench_file(path),
        None => Session::builder().bench("gray3", GRAY_COUNTER),
    };
    let report = builder.seed(2024).run()?;
    println!("circuit: {}", report.circuit());

    println!(
        "T0: {} vectors, coverage {}/{} ({:.1}%)",
        report.t0().len(),
        report.coverage().detected_count(),
        report.faults_total(),
        100.0 * report.coverage().fraction()
    );

    let best = report.best();
    println!(
        "\nscheme: n = {}, |S| = {}, tot len = {}, max len = {}",
        best.n, best.after.count, best.after.total_len, best.after.max_len
    );

    // Hardware sizing: the paper's memory argument, in numbers.
    let (ours, mono) = report.memory_costs();
    println!("\non-chip cost comparison:");
    println!(
        "  store whole T0 : {} memory bits + {} counter bits",
        mono.data_bits, mono.addr_counter_bits
    );
    println!(
        "  this scheme    : {} memory bits + {} counter/FSM bits + {} muxes",
        ours.data_bits,
        ours.addr_counter_bits + ours.rep_counter_bits + ours.phase_bits,
        ours.mux_count
    );
    println!("  memory saving  : {:.1}x", mono.data_bits as f64 / ours.data_bits as f64);

    // Extension (paper §1, ref [5]): run-length encoding can shrink the
    // memory further if at-speed application is relaxed.
    let rle = RleSequence::encode(report.t0());
    println!("\nencoding extension (at-speed relaxed):");
    println!(
        "  RLE of T0      : {} runs, {} bits vs {} raw ({:.0}% of raw)",
        rle.runs(),
        rle.storage_bits(),
        report.t0().storage_bits(),
        100.0 * rle.ratio()
    );
    Ok(())
}
