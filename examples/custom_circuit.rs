//! Using the library on your own circuit: parse an ISCAS-89 `.bench`
//! netlist, run the scheme, and size the on-chip test hardware.
//!
//! ```text
//! cargo run --release --example custom_circuit [path/to/circuit.bench]
//! ```
//!
//! Without an argument, a built-in Gray-code counter netlist is used.

use subseq_bist::core::{monolithic_cost, run_scheme, scheme_cost, SchemeConfig};
use subseq_bist::expand::encoding::RleSequence;
use subseq_bist::netlist::parser::parse_bench;
use subseq_bist::sim::FaultSimulator;
use subseq_bist::tgen::{generate_t0, TgenConfig};

/// A 3-bit Gray-code counter with enable and synchronous clear — the kind
/// of small control logic the paper's scheme targets.
const GRAY_COUNTER: &str = "\
# gray3: 3-bit Gray code counter with enable and clear
INPUT(en)
INPUT(clr)
OUTPUT(g0)
OUTPUT(g1)
OUTPUT(g2)
g0 = DFF(d0)
g1 = DFF(d1)
g2 = DFF(d2)
nclr  = NOT(clr)
par   = XOR(g0, g1)
npar  = XNOR(g0, g1)
t0    = NOT(g0)
n0    = XOR(g0, en)
d0raw = BUF(n0)
d0    = AND(d0raw, nclr)
selb  = AND(en, t0)
n1    = XOR(g1, selb)
d1    = AND(n1, nclr)
sel2  = AND(en, g0)
up2   = AND(sel2, npar)
n2    = XOR(g2, up2)
d2    = AND(n2, nclr)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            let name = path.rsplit('/').next().unwrap_or(&path).trim_end_matches(".bench");
            parse_bench(name.to_string(), &text)?
        }
        None => parse_bench("gray3", GRAY_COUNTER)?,
    };
    println!("circuit: {circuit}");

    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(2024))?;
    println!(
        "T0: {} vectors, coverage {}/{} ({:.1}%)",
        t0.sequence.len(),
        t0.coverage.detected_count(),
        t0.coverage.total(),
        100.0 * t0.coverage.fraction()
    );

    let sim = FaultSimulator::new(&circuit);
    let scheme = run_scheme(&sim, &t0.sequence, &t0.coverage, &SchemeConfig::new())?;
    let best = scheme.best_run();
    println!(
        "\nscheme: n = {}, |S| = {}, tot len = {}, max len = {}",
        best.n, best.after.count, best.after.total_len, best.after.max_len
    );

    // Hardware sizing: the paper's memory argument, in numbers.
    let width = circuit.num_inputs();
    let ours = scheme_cost(best.after.max_len.max(1), width, best.n);
    let mono = monolithic_cost(t0.sequence.len(), width);
    println!("\non-chip cost comparison:");
    println!(
        "  store whole T0 : {} memory bits + {} counter bits",
        mono.data_bits, mono.addr_counter_bits
    );
    println!(
        "  this scheme    : {} memory bits + {} counter/FSM bits + {} muxes",
        ours.data_bits,
        ours.addr_counter_bits + ours.rep_counter_bits + ours.phase_bits,
        ours.mux_count
    );
    println!(
        "  memory saving  : {:.1}x",
        mono.data_bits as f64 / ours.data_bits as f64
    );

    // Extension (paper §1, ref [5]): run-length encoding can shrink the
    // memory further if at-speed application is relaxed.
    let rle = RleSequence::encode(&t0.sequence);
    println!("\nencoding extension (at-speed relaxed):");
    println!(
        "  RLE of T0      : {} runs, {} bits vs {} raw ({:.0}% of raw)",
        rle.runs(),
        rle.storage_bits(),
        t0.sequence.storage_bits(),
        100.0 * rle.ratio()
    );
    Ok(())
}
