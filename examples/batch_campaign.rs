//! A batch campaign over three suite circuits × two simulation backends,
//! sharing parsed netlists, collapsed fault universes and generated
//! `T0`s through the engine's artifact cache.
//!
//! ```text
//! cargo run --release --example batch_campaign
//! ```

use bist_batch::{BatchError, Campaign, CampaignEngine};
use subseq_bist::tgen::TgenConfig;
use subseq_bist::Backend;

fn main() -> Result<(), BatchError> {
    let campaign = Campaign::new()
        .suite_circuits(["s27", "a298", "a344"])
        .backends([Backend::Packed, Backend::Sharded { threads: 0, width: 256 }])
        .seeds([1999])
        .tgen(TgenConfig::new().max_length(256).compaction_budget(100));
    let outcome = CampaignEngine::new().run(&campaign, &mut [])?;
    print!("{}", outcome.summary);
    println!("  cache: {}", outcome.cache);
    Ok(())
}
