//! A complete simulated BIST session at register-transfer accuracy.
//!
//! This example plays the role of the tester and the chip:
//!
//! 1. select the subsequences for `s27` (the software flow, via
//!    [`Session`]),
//! 2. "load" each subsequence into the on-chip [`OnChipExpander`] memory,
//! 3. clock the expander — one vector per clock — into the circuit,
//! 4. compact the output responses in a [`Misr`],
//! 5. compare the good-machine signature with the signature of a chip
//!    carrying a stuck-at fault: the signatures differ, so the fault is
//!    caught by pure on-chip hardware.
//!
//! ```text
//! cargo run --release --example hardware_session
//! ```
//!
//! [`OnChipExpander`]: subseq_bist::expand::hardware::OnChipExpander
//! [`Misr`]: subseq_bist::expand::hardware::Misr

use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::expand::hardware::{Misr, OnChipExpander};
use subseq_bist::expand::{TestSequence, TestVector};
use subseq_bist::sim::{simulate_faulty, simulate_good, Fault, Logic};
use subseq_bist::{BistError, Session};

/// Runs one on-chip test session and returns the final MISR signature.
///
/// `fault` injects a defect into the simulated chip (`None` = good chip).
/// Unknown output values are skipped until the circuit synchronizes, as
/// the paper requires for signature computation.
fn run_session(
    circuit: &subseq_bist::netlist::Circuit,
    sequences: &[subseq_bist::core::SelectedSequence],
    n: usize,
    fault: Option<Fault>,
) -> Result<TestVector, BistError> {
    let config = ExpansionConfig::new(n)?;
    let max_len = sequences.iter().map(subseq_bist::core::SelectedSequence::len).max().unwrap_or(1);
    let mut expander = OnChipExpander::new(max_len, circuit.num_inputs(), config);
    // A MISR wider than the PO count (unused inputs tied low) keeps the
    // aliasing probability near 2^-width even for circuits with very few
    // outputs, like s27's single PO.
    let misr_width = circuit.num_outputs().max(16);
    let mut misr = Misr::new(misr_width);

    for sel in sequences {
        // Tester: load the short subsequence (at tester speed).
        expander.load(&sel.sequence)?;

        // Chip: stream the expansion at speed and capture responses.
        let mut applied = TestSequence::new(circuit.num_inputs());
        while let Some(v) = expander.clock() {
            applied.push(v)?;
        }
        let trace = match fault {
            None => simulate_good(circuit, &applied)?,
            Some(f) => simulate_faulty(circuit, &applied, f)?,
        };
        // Only compact once every output is binary (synchronized); the
        // sync point is taken from the *good* machine so both sessions
        // clock the MISR at the same cycles.
        let sync =
            simulate_good(circuit, &applied)?.first_fully_binary_time().unwrap_or(trace.po.len());
        for outputs in trace.po.iter().skip(sync) {
            let mut bits = vec![false; misr_width];
            for (i, v) in outputs.iter().enumerate() {
                // A faulty machine may still carry X where the good
                // machine is binary; capture X pessimistically as 0.
                bits[i] = matches!(v, Logic::One);
            }
            misr.clock_bits(&bits);
        }
    }
    Ok(misr.signature().clone())
}

fn main() -> Result<(), BistError> {
    // Software flow: T0, subsequence selection and verification in one
    // Session run.
    let report = Session::builder().s27().seed(1999).run()?;
    let circuit = report.circuit();
    println!("chip under test: {circuit}");
    let best = report.best();
    println!(
        "loading {} subsequence(s), max {} vectors, n = {}",
        best.after.count, best.after.max_len, best.n
    );

    // Golden signature from the good chip.
    let golden = run_session(circuit, &best.sequences, best.n, None)?;
    println!("golden signature: {golden}");

    // Now test defective chips: every detected fault must flip the
    // signature. Demonstrate on a sample of faults T0 detects.
    let mut caught = 0usize;
    let mut tried = 0usize;
    for (fault, _) in report.coverage().detected() {
        if tried == 8 {
            break;
        }
        tried += 1;
        let sig = run_session(circuit, &best.sequences, best.n, Some(fault))?;
        let verdict = if sig != golden { "CAUGHT" } else { "missed (aliasing or X)" };
        if sig != golden {
            caught += 1;
        }
        println!("chip with {:<12} -> signature {sig} {verdict}", fault.describe(circuit));
    }
    println!("\n{caught}/{tried} sampled faulty chips flagged by signature comparison");
    Ok(())
}
