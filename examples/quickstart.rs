//! Quickstart: run the full scheme on the paper's worked example (`s27`)
//! and print the quantities the paper reports — all through [`Session`].
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subseq_bist::{BistError, Session};

fn main() -> Result<(), BistError> {
    // The paper's worked example circuit: 4 inputs, 3 flip-flops, 1
    // output. T0 generation, fault collapsing, the n ∈ {2,4,8,16} sweep,
    // compaction and verification all happen inside `run`.
    let report = Session::builder().s27().seed(1999).run()?;

    println!("circuit: {}", report.circuit());
    println!("collapsed stuck-at faults: {}", report.faults_total());
    println!(
        "T0: {} vectors, detects {}/{} faults",
        report.t0().len(),
        report.coverage().detected_count(),
        report.faults_total()
    );

    let best = report.best();
    println!("\nbest n = {}", best.n);
    println!(
        "before compaction: |S| = {}, tot len = {}, max len = {}",
        best.before.count, best.before.total_len, best.before.max_len
    );
    println!(
        "after  compaction: |S| = {}, tot len = {}, max len = {}",
        best.after.count, best.after.total_len, best.after.max_len
    );
    println!(
        "loaded vectors: {} of {} in T0 ({:.0}%), applied at speed: {}",
        best.after.total_len,
        report.t0().len(),
        100.0 * report.loaded_fraction(),
        best.applied_test_len()
    );

    // The paper's central guarantee, checked by the session itself via
    // the streaming expansion path.
    println!(
        "\nexpanded subsequences cover every fault T0 detects: {}",
        report.verified().expect("verification is on by default")
    );
    assert_eq!(report.verified(), Some(true));
    Ok(())
}
