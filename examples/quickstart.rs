//! Quickstart: run the full scheme on the paper's worked example (`s27`)
//! and print the quantities the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subseq_bist::core::{run_scheme, verify_full_coverage, SchemeConfig};
use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultSimulator};
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's worked example circuit: 4 inputs, 3 flip-flops, 1 output.
    let circuit = benchmarks::s27();
    println!("circuit: {circuit}");

    let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    println!("collapsed stuck-at faults: {}", faults.len());

    // Off-chip test generation (substitute for STRATEGATE + compaction).
    let t0 = generate_t0(&circuit, &TgenConfig::new().seed(1999))?;
    println!(
        "T0: {} vectors, detects {}/{} faults",
        t0.sequence.len(),
        t0.coverage.detected_count(),
        t0.coverage.total()
    );

    // The scheme: select subsequences, sweep n in {2,4,8,16}, compact.
    let sim = FaultSimulator::new(&circuit);
    let result = run_scheme(&sim, &t0.sequence, &t0.coverage, &SchemeConfig::new().seed(1999))?;
    let best = result.best_run();
    println!("\nbest n = {}", best.n);
    println!(
        "before compaction: |S| = {}, tot len = {}, max len = {}",
        best.before.count, best.before.total_len, best.before.max_len
    );
    println!(
        "after  compaction: |S| = {}, tot len = {}, max len = {}",
        best.after.count, best.after.total_len, best.after.max_len
    );
    println!(
        "loaded vectors: {} of {} in T0 ({:.0}%), applied at speed: {}",
        best.after.total_len,
        t0.sequence.len(),
        100.0 * best.after.total_len as f64 / t0.sequence.len() as f64,
        best.applied_test_len()
    );

    // The paper's central guarantee, checked explicitly.
    let detected: Vec<_> = t0.coverage.detected().map(|(f, _)| f).collect();
    let ok = verify_full_coverage(
        &sim,
        &best.sequences,
        &ExpansionConfig::new(best.n)?,
        &detected,
    )?;
    println!("\nexpanded subsequences cover every fault T0 detects: {ok}");
    assert!(ok);
    Ok(())
}
