//! Randomized-netlist differential fuzz suite.
//!
//! The hand-built 13-circuit suite in `differential.rs` pins the engines
//! on realistic shapes; this suite pins them on *adversarial* ones: a
//! seeded stream of random circuits from [`bist_netlist::fuzz`] —
//! zero-gate netlists with POs wired straight to PIs/DFFs, single gates
//! of every opcode, deep chains, extreme fanout/fanin, and general
//! random levelized circuits — each simulated under random stimulus by
//! **every** engine (scalar tape, packed64, sharded × widths 64/256/512
//! × threads 1/2/4 × both state layouts) and compared bit-for-bit
//! against the node-graph oracle in [`bist_sim::reference`].
//!
//! Two entry points, like the 13-circuit campaign acceptance test:
//! a fast subset that runs in debug `cargo test` on every push, and the
//! full ≥200-circuit sweep, ignored in debug and executed in release CI.

use bist_expand::{TestSequence, TestVector};
use bist_netlist::fuzz::fuzz_circuit;
use bist_netlist::GateTape;
use bist_sim::{collapse, fault_universe, reference, SimBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

/// Every tape-executing engine, both state layouts included.
fn engine_grid() -> Vec<Box<dyn SimBackend>> {
    common::engine_grid(&[1, 2, 4])
}

/// Runs the corpus of `seeds`: every engine's detection times must equal
/// the node-graph oracle's on every circuit.
fn run_corpus(seeds: std::ops::Range<u64>, max_faults: usize, max_seq_len: usize) {
    let grid = engine_grid();
    for seed in seeds {
        let circuit = fuzz_circuit(seed);
        let tape = GateTape::compile(&circuit);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa57_f00d);
        let mut faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        while faults.len() > max_faults {
            let victim = rng.gen_range(0..faults.len());
            faults.swap_remove(victim);
        }
        let len = rng.gen_range(4..=max_seq_len);
        let seq = TestSequence::from_vectors(
            (0..len)
                .map(|_| TestVector::from_fn(circuit.num_inputs(), |_| rng.gen_bool(0.5)))
                .collect(),
        )
        .expect("uniform width");
        let oracle = reference::detection_times(&circuit, &seq, &faults)
            .unwrap_or_else(|e| panic!("oracle failed on {} (seed {seed}): {e}", circuit.name()));
        for engine in &grid {
            let times = engine.detection_times_tape(&tape, &seq, &faults).unwrap_or_else(|e| {
                panic!("{} failed on {} (seed {seed}): {e}", engine.name(), circuit.name())
            });
            assert_eq!(
                times,
                oracle,
                "{} diverges from the node-graph oracle on {} (seed {seed})",
                engine.name(),
                circuit.name()
            );
        }
    }
}

/// Fast subset: runs in debug builds on every `cargo test`, covering all
/// five shape classes several times over.
#[test]
fn randomized_differential_fast_subset() {
    run_corpus(0..48, 48, 10);
}

/// The full sweep: 208 seeded circuits (26 of each degenerate class, 104
/// general) at larger fault/stimulus budgets. Ignored in debug builds —
/// the scalar oracle over 200+ circuits × the full engine grid takes
/// minutes unoptimized — and executed in release by CI, like the
/// 13-circuit campaign acceptance test.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "200+-circuit sweep × full engine grid is slow unoptimized; run with --release"
)]
fn randomized_differential_full_sweep() {
    run_corpus(0..208, 128, 16);
}
