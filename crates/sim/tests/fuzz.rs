//! Randomized-netlist differential fuzz suite.
//!
//! The hand-built 13-circuit suite in `differential.rs` pins the engines
//! on realistic shapes; this suite pins them on *adversarial* ones: a
//! seeded stream of random circuits from [`bist_netlist::fuzz`] —
//! zero-gate netlists with POs wired straight to PIs/DFFs, single gates
//! of every opcode, deep chains, extreme fanout/fanin, and general
//! random levelized circuits — each simulated under random stimulus by
//! **every** engine (scalar tape, packed64, sharded × widths 64/256/512
//! × threads 1/2/4 × both state layouts) and compared bit-for-bit
//! against the node-graph oracle in [`bist_sim::reference`].
//!
//! Two entry points, like the 13-circuit campaign acceptance test:
//! a fast subset that runs in debug `cargo test` on every push, and the
//! full ≥200-circuit sweep, ignored in debug and executed in release CI.

use bist_expand::{TestSequence, TestVector};
use bist_netlist::fuzz::fuzz_circuit;
use bist_netlist::{compile_staged, CircuitBuilder, CompileOptions, GateKind, GateTape};
use bist_sim::{
    collapse, detection_times_mapped, fault_universe, reference, FaultSite, SimBackend, SiteRoute,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

/// Every tape-executing engine, both state layouts included.
fn engine_grid() -> Vec<Box<dyn SimBackend>> {
    common::engine_grid(&[1, 2, 4])
}

/// Runs the corpus of `seeds`: every engine's detection times must equal
/// the node-graph oracle's on every circuit.
fn run_corpus(seeds: std::ops::Range<u64>, max_faults: usize, max_seq_len: usize) {
    let grid = engine_grid();
    for seed in seeds {
        let circuit = fuzz_circuit(seed);
        let tape = GateTape::compile(&circuit);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa57_f00d);
        let mut faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        while faults.len() > max_faults {
            let victim = rng.gen_range(0..faults.len());
            faults.swap_remove(victim);
        }
        let len = rng.gen_range(4..=max_seq_len);
        let seq = TestSequence::from_vectors(
            (0..len)
                .map(|_| TestVector::from_fn(circuit.num_inputs(), |_| rng.gen_bool(0.5)))
                .collect(),
        )
        .expect("uniform width");
        let oracle = reference::detection_times(&circuit, &seq, &faults)
            .unwrap_or_else(|e| panic!("oracle failed on {} (seed {seed}): {e}", circuit.name()));
        for engine in &grid {
            let times = engine.detection_times_tape(&tape, &seq, &faults).unwrap_or_else(|e| {
                panic!("{} failed on {} (seed {seed}): {e}", engine.name(), circuit.name())
            });
            assert_eq!(
                times,
                oracle,
                "{} diverges from the node-graph oracle on {} (seed {seed})",
                engine.name(),
                circuit.name()
            );
        }
    }
}

/// Fast subset: runs in debug builds on every `cargo test`, covering all
/// five shape classes several times over.
#[test]
fn randomized_differential_fast_subset() {
    run_corpus(0..48, 48, 10);
}

/// The full sweep: 208 seeded circuits (26 of each degenerate class, 104
/// general) at larger fault/stimulus budgets. Ignored in debug builds —
/// the scalar oracle over 200+ circuits × the full engine grid takes
/// minutes unoptimized — and executed in release by CI, like the
/// 13-circuit campaign acceptance test.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "200+-circuit sweep × full engine grid is slow unoptimized; run with --release"
)]
fn randomized_differential_full_sweep() {
    run_corpus(0..208, 128, 16);
}

/// Like [`run_corpus`], but every engine simulates through the staged
/// compiler's *optimized* tape (all passes) via the fault-site-mapped
/// path, still compared bit-for-bit against the unoptimized node-graph
/// oracle. The uncollapsed fault universe is used (then trimmed), so
/// every `SiteRoute` disposition — direct, redirect, pinned, untestable
/// — is exercised wherever the random structures produce it.
fn run_corpus_optimized(seeds: std::ops::Range<u64>, max_faults: usize, max_seq_len: usize) {
    let grid = engine_grid();
    for seed in seeds {
        let circuit = fuzz_circuit(seed);
        let compiled = compile_staged(&circuit, CompileOptions::all());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b71_ca5e);
        let mut faults = fault_universe(&circuit);
        while faults.len() > max_faults {
            let victim = rng.gen_range(0..faults.len());
            faults.swap_remove(victim);
        }
        let len = rng.gen_range(4..=max_seq_len);
        let seq = TestSequence::from_vectors(
            (0..len)
                .map(|_| TestVector::from_fn(circuit.num_inputs(), |_| rng.gen_bool(0.5)))
                .collect(),
        )
        .expect("uniform width");
        let oracle = reference::detection_times(&circuit, &seq, &faults)
            .unwrap_or_else(|e| panic!("oracle failed on {} (seed {seed}): {e}", circuit.name()));
        for engine in &grid {
            let times =
                detection_times_mapped(&**engine, &compiled, &seq, &faults).unwrap_or_else(|e| {
                    panic!("{} failed on {} (seed {seed}): {e}", engine.name(), circuit.name())
                });
            assert_eq!(
                times,
                oracle,
                "{} on the optimized tape diverges from the oracle on {} (seed {seed}, \
                 {} gates removed)",
                engine.name(),
                circuit.name(),
                compiled.gates_removed()
            );
        }
    }
}

/// Fast optimized subset, debug-safe like the unoptimized one.
#[test]
fn optimized_mapped_fast_subset() {
    run_corpus_optimized(0..48, 48, 10);
}

/// The full optimized sweep over the 208-circuit corpus; release-only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "200+-circuit sweep × full engine grid is slow unoptimized; run with --release"
)]
fn optimized_mapped_full_sweep() {
    run_corpus_optimized(0..208, 128, 16);
}

/// Every suite circuit through the optimized mapped path vs the oracle.
/// Debug runs the small prefix on the full engine grid; release CI runs
/// all 13 circuits (the companion test below).
fn run_suite_optimized(max_gates: usize) {
    let grid = engine_grid();
    for entry in bist_netlist::benchmarks::suite_up_to(max_gates) {
        let circuit = entry.build().expect("suite circuits build");
        let compiled = compile_staged(&circuit, CompileOptions::all());
        let mut rng = StdRng::seed_from_u64(0x5517_e000 ^ entry.gates as u64);
        let mut faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        while faults.len() > 96 {
            let victim = rng.gen_range(0..faults.len());
            faults.swap_remove(victim);
        }
        let seq = TestSequence::from_vectors(
            (0..12)
                .map(|_| TestVector::from_fn(circuit.num_inputs(), |_| rng.gen_bool(0.5)))
                .collect(),
        )
        .expect("uniform width");
        let oracle = reference::detection_times(&circuit, &seq, &faults).expect("oracle runs");
        for engine in &grid {
            let times = detection_times_mapped(&**engine, &compiled, &seq, &faults).unwrap();
            assert_eq!(times, oracle, "{} diverges on {}", engine.name(), entry.name);
        }
    }
}

#[test]
fn optimized_suite_small_matches_oracle() {
    run_suite_optimized(600);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 13-circuit suite × engine grid is slow unoptimized; run with --release"
)]
fn optimized_suite_full_matches_oracle() {
    run_suite_optimized(usize::MAX);
}

/// Targeted disposition check: stem faults inside a dead (swept) cone
/// are routed `Untestable` and report exactly what the baseline does —
/// never detected.
#[test]
fn swept_cone_faults_stay_bit_identical() {
    let mut b = CircuitBuilder::new("dead_cone");
    b.add_input("a");
    b.add_input("c");
    b.add_gate("o", GateKind::And, ["a", "c"]);
    // Dead cone: d1 feeds d2 feeds nothing observable.
    b.add_gate("d1", GateKind::Or, ["a", "c"]);
    b.add_gate("d2", GateKind::Not, ["d1"]);
    b.add_output("o");
    let circuit = b.finish().unwrap();
    let compiled = compile_staged(&circuit, CompileOptions::all());
    let map = compiled.site_map();
    let faults = fault_universe(&circuit);
    let dead = ["d1", "d2"].map(|n| circuit.find(n).unwrap());
    for node in dead {
        assert_eq!(map.output_route(node), SiteRoute::Untestable, "{node:?}");
    }
    let seq: TestSequence = "00 01 10 11 11 00".parse().unwrap();
    let oracle = reference::detection_times(&circuit, &seq, &faults).unwrap();
    for engine in &engine_grid() {
        let times = detection_times_mapped(&**engine, &compiled, &seq, &faults).unwrap();
        assert_eq!(times, oracle, "{}", engine.name());
    }
    // And the dead-cone faults really are the never-detected ones.
    for (f, t) in faults.iter().zip(&oracle) {
        if dead.contains(&f.site.node()) {
            assert_eq!(*t, None, "dead-cone fault detected: {}", f.describe(&circuit));
        }
    }
}

/// Targeted disposition check: faults at (and on pins of) an always-X
/// folded gate are pinned to the baseline tape and stay bit-identical.
#[test]
fn folded_constant_faults_stay_bit_identical() {
    let mut b = CircuitBuilder::new("folded_x");
    b.add_input("a");
    b.add_dff("q", "q"); // self-loop: permanently X
    b.add_gate("g", GateKind::Not, ["q"]); // always-X member
    b.add_gate("o", GateKind::Or, ["g", "a"]);
    b.add_output("o");
    let circuit = b.finish().unwrap();
    let compiled = compile_staged(&circuit, CompileOptions::all());
    assert!(compiled.stats().folded_x >= 1, "{:?}", compiled.stats());
    let map = compiled.site_map();
    let g = circuit.find("g").unwrap();
    let q = circuit.find("q").unwrap();
    // The folded gate's input pin and the closure DFF must leave the
    // optimized tape (pinned); its stem may redirect into `o`.
    assert_eq!(map.input_route(g), SiteRoute::Pinned);
    assert_eq!(map.output_route(q), SiteRoute::Pinned);
    assert!(compiled.site_map().needs_baseline());
    let faults = fault_universe(&circuit);
    assert!(faults.iter().any(|f| matches!(f.site, FaultSite::Output(n) if n == g)));
    let seq: TestSequence = "0 1 0 1 1 0 0 1".parse().unwrap();
    let oracle = reference::detection_times(&circuit, &seq, &faults).unwrap();
    for engine in &engine_grid() {
        let times = detection_times_mapped(&**engine, &compiled, &seq, &faults).unwrap();
        assert_eq!(times, oracle, "{}", engine.name());
    }
}
