//! Property-based tests of the simulation engines on random circuits and
//! sequences.

use bist_expand::{TestSequence, TestVector};
use bist_netlist::generate::GeneratorSpec;
use bist_netlist::Circuit;
use bist_sim::{
    collapse, fault_universe, simulate_faulty, simulate_good, FaultSimulator, Logic,
    PackedValue,
};
use proptest::prelude::*;

fn circuit_and_sequence() -> impl Strategy<Value = (Circuit, TestSequence)> {
    (1usize..=6, 0usize..=6, 4usize..=40, any::<u64>(), 1usize..=24).prop_flat_map(
        |(pis, ffs, gates, seed, len)| {
            let c = GeneratorSpec::new("sim-prop")
                .inputs(pis)
                .outputs(2)
                .dffs(ffs)
                .gates(gates)
                .seed(seed)
                .build()
                .expect("valid spec");
            let width = c.num_inputs();
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), width), len)
                .prop_map(move |rows| {
                    let seq = TestSequence::from_vectors(
                        rows.iter().map(|b| TestVector::from_bits(b)).collect(),
                    )
                    .expect("uniform");
                    (c.clone(), seq)
                })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed parallel engine must agree with per-fault scalar
    /// simulation: a fault is detected at time u iff the scalar good and
    /// faulty traces first differ (both binary) at time u.
    #[test]
    fn parallel_engine_matches_scalar_traces((c, seq) in circuit_and_sequence()) {
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&seq, &faults).unwrap();
        let good = simulate_good(&c, &seq).unwrap();
        // Check a subset to keep runtime bounded.
        for (i, &fault) in faults.iter().enumerate().step_by(7) {
            let bad = simulate_faulty(&c, &seq, fault).unwrap();
            let scalar_first = (0..seq.len()).find(|&u| {
                good.po[u].iter().zip(&bad.po[u]).any(|(g, b)| {
                    g.is_binary() && b.is_binary() && g != b
                })
            });
            prop_assert_eq!(times[i], scalar_first, "fault {}", fault.describe(&c));
        }
    }

    /// Detection times never exceed the sequence length and coverage is
    /// monotone under sequence extension.
    #[test]
    fn coverage_monotone_in_sequence_length((c, seq) in circuit_and_sequence()) {
        prop_assume!(seq.len() >= 2);
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let half = seq.subsequence(0, seq.len() / 2 - 1);
        let t_half = sim.detection_times(&half, &faults).unwrap();
        let t_full = sim.detection_times(&seq, &faults).unwrap();
        for (h, f) in t_half.iter().zip(&t_full) {
            if let Some(u) = h {
                // A prefix detection persists with the same time.
                prop_assert_eq!(*f, Some(*u));
            }
            if let Some(u) = f {
                prop_assert!(*u < seq.len());
            }
        }
    }

    /// Equivalent (collapsed-together) faults have identical detection
    /// times under any sequence.
    #[test]
    fn equivalent_faults_detected_together((c, seq) in circuit_and_sequence()) {
        let universe = fault_universe(&c);
        let collapsed = collapse(&c, &universe);
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&seq, &universe).unwrap();
        use std::collections::HashMap;
        let mut class_time: HashMap<_, Option<usize>> = HashMap::new();
        for (i, &f) in universe.iter().enumerate().step_by(3) {
            let rep = collapsed.representative_of(f).unwrap();
            match class_time.entry(rep) {
                std::collections::hash_map::Entry::Vacant(e) => { e.insert(times[i]); }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert_eq!(*e.get(), times[i],
                        "fault {} disagrees with its class", f.describe(&c));
                }
            }
        }
    }

    /// The good machine is deterministic and X-monotone: a PO that is
    /// binary never depends on how many leading vectors were simulated.
    #[test]
    fn good_simulation_prefix_consistent((c, seq) in circuit_and_sequence()) {
        prop_assume!(seq.len() >= 2);
        let full = simulate_good(&c, &seq).unwrap();
        let prefix = simulate_good(&c, &seq.subsequence(0, seq.len() - 2)).unwrap();
        for u in 0..prefix.len() {
            prop_assert_eq!(&full.po[u], &prefix.po[u]);
        }
    }
}

proptest! {
    /// Packed three-valued algebra agrees with scalar algebra lane-wise.
    #[test]
    fn packed_algebra_matches_scalar(
        a in proptest::collection::vec(0u8..3, 64),
        b in proptest::collection::vec(0u8..3, 64),
    ) {
        let to_logic = |x: u8| match x { 0 => Logic::Zero, 1 => Logic::One, _ => Logic::X };
        let mut pa = PackedValue::ALL_X;
        let mut pb = PackedValue::ALL_X;
        for i in 0..64 {
            pa.set_lane(i, to_logic(a[i]));
            pb.set_lane(i, to_logic(b[i]));
        }
        let and = pa.and(pb);
        let or = pa.or(pb);
        let xor = pa.xor(pb);
        prop_assert!(and.is_valid() && or.is_valid() && xor.is_valid());
        for i in 0..64 {
            let (la, lb) = (to_logic(a[i]), to_logic(b[i]));
            prop_assert_eq!(and.lane(i), la.and(lb));
            prop_assert_eq!(or.lane(i), la.or(lb));
            prop_assert_eq!(xor.lane(i), la.xor(lb));
        }
    }
}
