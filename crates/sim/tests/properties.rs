//! Property-based tests of the simulation engines on seeded random
//! circuits and sequences, including the packed-vs-scalar backend
//! differential.

use bist_expand::{TestSequence, TestVector};
use bist_netlist::generate::GeneratorSpec;
use bist_netlist::Circuit;
use bist_sim::{
    collapse, fault_universe, simulate_faulty, simulate_good, FaultSimulator, Logic, PackedValue,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn random_circuit_and_sequence(rng: &mut StdRng) -> (Circuit, TestSequence) {
    let c = GeneratorSpec::new("sim-prop")
        .inputs(rng.gen_range(1usize..=6))
        .outputs(2)
        .dffs(rng.gen_range(0usize..=6))
        .gates(rng.gen_range(4usize..=40))
        .seed(rng.gen::<u64>())
        .build()
        .expect("valid spec");
    let width = c.num_inputs();
    let len = rng.gen_range(1usize..=24);
    let seq = TestSequence::from_vectors(
        (0..len).map(|_| TestVector::from_fn(width, |_| rng.gen_bool(0.5))).collect(),
    )
    .expect("uniform");
    (c, seq)
}

fn for_each_case(mut f: impl FnMut(&mut StdRng, Circuit, TestSequence)) {
    let mut rng = StdRng::seed_from_u64(0x51b_ca5e5);
    for _ in 0..CASES {
        let (c, seq) = random_circuit_and_sequence(&mut rng);
        f(&mut rng, c, seq);
    }
}

/// The packed parallel engine must agree with per-fault scalar
/// simulation: a fault is detected at time u iff the scalar good and
/// faulty traces first differ (both binary) at time u.
#[test]
fn parallel_engine_matches_scalar_traces() {
    for_each_case(|_, c, seq| {
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&seq, &faults).unwrap();
        let good = simulate_good(&c, &seq).unwrap();
        // Check a subset to keep runtime bounded.
        for (i, &fault) in faults.iter().enumerate().step_by(7) {
            let bad = simulate_faulty(&c, &seq, fault).unwrap();
            let scalar_first = (0..seq.len()).find(|&u| {
                good.po[u]
                    .iter()
                    .zip(&bad.po[u])
                    .any(|(g, b)| g.is_binary() && b.is_binary() && g != b)
            });
            assert_eq!(times[i], scalar_first, "fault {}", fault.describe(&c));
        }
    });
}

/// The scalar backend is a drop-in engine: identical detection times to
/// the packed backend on the full collapsed fault list of any circuit.
#[test]
fn scalar_backend_matches_packed_backend() {
    for_each_case(|_, c, seq| {
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let packed = FaultSimulator::new(&c).detection_times(&seq, &faults).unwrap();
        let scalar = FaultSimulator::scalar(&c).detection_times(&seq, &faults).unwrap();
        assert_eq!(packed, scalar, "backends diverge on {}", c.name());
    });
}

/// Detection times never exceed the sequence length and coverage is
/// monotone under sequence extension.
#[test]
fn coverage_monotone_in_sequence_length() {
    for_each_case(|_, c, seq| {
        if seq.len() < 2 {
            return;
        }
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let half = seq.subsequence(0, seq.len() / 2 - 1);
        let t_half = sim.detection_times(&half, &faults).unwrap();
        let t_full = sim.detection_times(&seq, &faults).unwrap();
        for (h, f) in t_half.iter().zip(&t_full) {
            if let Some(u) = h {
                // A prefix detection persists with the same time.
                assert_eq!(*f, Some(*u));
            }
            if let Some(u) = f {
                assert!(*u < seq.len());
            }
        }
    });
}

/// Equivalent (collapsed-together) faults have identical detection
/// times under any sequence.
#[test]
fn equivalent_faults_detected_together() {
    for_each_case(|_, c, seq| {
        let universe = fault_universe(&c);
        let collapsed = collapse(&c, &universe);
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&seq, &universe).unwrap();
        use std::collections::HashMap;
        let mut class_time: HashMap<_, Option<usize>> = HashMap::new();
        for (i, &f) in universe.iter().enumerate().step_by(3) {
            let rep = collapsed.representative_of(f).unwrap();
            match class_time.entry(rep) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(times[i]);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(
                        *e.get(),
                        times[i],
                        "fault {} disagrees with its class",
                        f.describe(&c)
                    );
                }
            }
        }
    });
}

/// The good machine is deterministic and X-monotone: a PO that is
/// binary never depends on how many leading vectors were simulated.
#[test]
fn good_simulation_prefix_consistent() {
    for_each_case(|_, c, seq| {
        if seq.len() < 2 {
            return;
        }
        let full = simulate_good(&c, &seq).unwrap();
        let prefix = simulate_good(&c, &seq.subsequence(0, seq.len() - 2)).unwrap();
        for u in 0..prefix.len() {
            assert_eq!(&full.po[u], &prefix.po[u]);
        }
    });
}

/// Packed three-valued algebra agrees with scalar algebra lane-wise.
#[test]
fn packed_algebra_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(64);
    let to_logic = |x: u64| match x % 3 {
        0 => Logic::Zero,
        1 => Logic::One,
        _ => Logic::X,
    };
    for _ in 0..256 {
        let a: Vec<Logic> = (0..64).map(|_| to_logic(rng.gen::<u64>())).collect();
        let b: Vec<Logic> = (0..64).map(|_| to_logic(rng.gen::<u64>())).collect();
        let mut pa = PackedValue::ALL_X;
        let mut pb = PackedValue::ALL_X;
        for i in 0..64 {
            pa.set_lane(i, a[i]);
            pb.set_lane(i, b[i]);
        }
        let and = pa.and(pb);
        let or = pa.or(pb);
        let xor = pa.xor(pb);
        assert!(and.is_valid() && or.is_valid() && xor.is_valid());
        for i in 0..64 {
            assert_eq!(and.lane(i), a[i].and(b[i]));
            assert_eq!(or.lane(i), a[i].or(b[i]));
            assert_eq!(xor.lane(i), a[i].xor(b[i]));
        }
    }
}
