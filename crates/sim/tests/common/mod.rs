//! Shared test support: the full tape-executing engine grid, used by the
//! differential, randomized-fuzz and degenerate suites so a new engine
//! dimension (width, layout, thread count, backend) is added in exactly
//! one place.

use bist_sim::{PackedBackend, ScalarBackend, ShardedBackend, SimBackend, StateLayout, WordWidth};

/// Every tape-executing engine: the scalar tape engine, packed64 and the
/// sharded grid over all widths × the given thread counts × both state
/// layouts — the interleaved production default and the blocked
/// bit-plane alternative.
pub fn engine_grid(threads: &[usize]) -> Vec<Box<dyn SimBackend>> {
    let mut grid: Vec<Box<dyn SimBackend>> = vec![Box::new(ScalarBackend), Box::new(PackedBackend)];
    for layout in [StateLayout::Interleaved, StateLayout::BitPlanes] {
        for width in [WordWidth::W64, WordWidth::W256, WordWidth::W512] {
            for &t in threads {
                grid.push(Box::new(
                    ShardedBackend::with_layout(t, width, layout).expect("threads >= 1"),
                ));
            }
        }
    }
    grid
}
