//! Seeded differential suite over the full benchmark suite: the seed's
//! node-graph scalar oracle ([`bist_sim::reference`], which never touches
//! the compiled tape) vs every tape-executing engine — the scalar tape
//! engine, the packed engine and the sharded engine at widths 64/256/512
//! and 1/2/4 threads — on all 13 suite circuits.
//!
//! Equality is asserted on *detection times*, not just detected /
//! undetected — the paper's selection procedures key off `udet(f)`, so a
//! backend that detects the right faults at the wrong time units would
//! silently produce different (possibly invalid) subsequence selections.
//! Because the oracle bypasses [`GateTape`] entirely, agreement proves
//! that tape compilation plus tape execution is bit-identical to the seed
//! node-graph walk.
//!
//! Fault lists are seeded random samples of each circuit's collapsed
//! universe, sized down on the big analogs to keep the scalar oracle
//! affordable in debug builds.

use bist_expand::expansion::{Expand, ExpansionConfig};
use bist_expand::{TestSequence, TestVector, VectorSource};
use bist_netlist::{benchmarks, Circuit, GateTape};
use bist_sim::{collapse, fault_universe, reference, Fault, SimBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded sample of `k` collapsed faults (the whole universe if smaller).
fn sample_faults(circuit: &Circuit, k: usize, rng: &mut StdRng) -> Vec<Fault> {
    let mut faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
    while faults.len() > k {
        let victim = rng.gen_range(0usize..faults.len());
        faults.swap_remove(victim);
    }
    faults
}

fn random_sequence(circuit: &Circuit, len: usize, rng: &mut StdRng) -> TestSequence {
    let width = circuit.num_inputs();
    TestSequence::from_vectors(
        (0..len).map(|_| TestVector::from_fn(width, |_| rng.gen_bool(0.5))).collect(),
    )
    .expect("uniform width")
}

mod common;

/// Every tape-executing engine: the scalar tape engine, packed64 and the
/// full sharded width × thread grid in both state layouts (the
/// interleaved production default and the blocked bit-plane
/// alternative).
fn tape_engines() -> Vec<Box<dyn SimBackend>> {
    common::engine_grid(&[1, 2, 4])
}

/// Fault-sample and sequence sizes per circuit, scaled down as the
/// scalar oracle gets more expensive.
fn budget(gates: usize) -> (usize, usize) {
    match gates {
        0..=200 => (96, 24),
        201..=1000 => (64, 16),
        1001..=4000 => (32, 12),
        _ => (16, 8),
    }
}

#[test]
fn all_tape_engines_match_the_node_graph_oracle_on_every_suite_circuit() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_e7e5);
    let entries = benchmarks::suite();
    assert_eq!(entries.len(), 13, "the differential suite must cover all 13 circuits");
    for entry in entries {
        let circuit = entry.build().expect("suite circuit builds");
        let tape = GateTape::compile(&circuit);
        let (num_faults, seq_len) = budget(entry.gates);
        let faults = sample_faults(&circuit, num_faults, &mut rng);
        let seq = random_sequence(&circuit, seq_len, &mut rng);

        let oracle =
            reference::detection_times(&circuit, &seq, &faults).expect("node-graph oracle runs");
        for engine in tape_engines() {
            // Both entry points: on-the-fly compilation and the shared
            // precompiled tape must agree with the seed oracle.
            let times = engine.detection_times(&circuit, &seq, &faults).expect("engine runs");
            assert_eq!(times, oracle, "{} vs node-graph oracle on {}", engine.name(), entry.name);
            let on_tape =
                engine.detection_times_tape(&tape, &seq, &faults).expect("tape engine runs");
            assert_eq!(on_tape, oracle, "{} (shared tape) on {}", engine.name(), entry.name);
        }
    }
}

#[test]
fn engines_agree_on_expanded_streams() {
    // The workload that matters: lazily expanded `8·n·|S|` streams, where
    // early-exit and replay interact with chunking and sharding.
    let mut rng = StdRng::seed_from_u64(0xe8a_5eed);
    for entry in benchmarks::suite_up_to(600) {
        let circuit = entry.build().expect("suite circuit builds");
        let tape = GateTape::compile(&circuit);
        let faults = sample_faults(&circuit, 48, &mut rng);
        let s = random_sequence(&circuit, 3, &mut rng);
        for n in [1, 2] {
            let cfg = ExpansionConfig::new(n).expect("n >= 1");
            let stream = cfg.stream(&s);
            let oracle =
                reference::detection_times(&circuit, &stream, &faults).expect("oracle runs");
            for engine in tape_engines() {
                let times =
                    engine.detection_times_tape(&tape, &stream, &faults).expect("engine runs");
                assert_eq!(times, oracle, "{} on {} n={n}", engine.name(), entry.name);
            }
            // The stream view itself must match the materialized Sexp.
            assert_eq!(stream.materialize(), cfg.expand(&s), "{} n={n}", entry.name);
        }
    }
}

#[test]
fn duplicate_faults_get_identical_times_across_chunk_boundaries() {
    // Duplicating the fault list beyond one 511-lane chunk exercises the
    // lane bookkeeping of every width: duplicates must resolve to the
    // same time regardless of which chunk/shard/lane they land in.
    let circuit = benchmarks::suite()[2].build().expect("a344 builds");
    let tape = GateTape::compile(&circuit);
    let mut rng = StdRng::seed_from_u64(77);
    let base = sample_faults(&circuit, 96, &mut rng);
    let mut tripled = base.clone();
    tripled.extend(base.iter().copied());
    tripled.extend(base.iter().copied());
    let seq = random_sequence(&circuit, 12, &mut rng);
    for engine in tape_engines() {
        let times = engine.detection_times_tape(&tape, &seq, &tripled).expect("runs");
        for i in 0..base.len() {
            assert_eq!(times[i], times[i + base.len()], "{} copy 1", engine.name());
            assert_eq!(times[i], times[i + 2 * base.len()], "{} copy 2", engine.name());
        }
    }
}

#[test]
fn site_sorted_and_seed_ordered_fault_lists_agree_everywhere() {
    // The collapse layer now emits representatives in fault-site order
    // (locality for chunking); this must be invisible to results. Compare
    // per-fault times between the site order and the seed's derived-Ord
    // order on a mid-size circuit, for every engine.
    let circuit = benchmarks::suite()[3].build().expect("suite circuit builds");
    let tape = GateTape::compile(&circuit);
    let mut rng = StdRng::seed_from_u64(0x5072);
    let site_ordered = sample_faults(&circuit, 128, &mut rng);
    let mut derived = site_ordered.clone();
    derived.sort();
    let seq = random_sequence(&circuit, 10, &mut rng);
    for engine in tape_engines() {
        let a = engine.detection_times_tape(&tape, &seq, &site_ordered).expect("runs");
        let b = engine.detection_times_tape(&tape, &seq, &derived).expect("runs");
        let by_fault: std::collections::HashMap<Fault, Option<usize>> =
            site_ordered.iter().copied().zip(a).collect();
        for (f, t) in derived.iter().zip(b) {
            assert_eq!(by_fault[f], t, "{} under {}", f, engine.name());
        }
    }
}
