//! Seeded differential suite over the full benchmark suite: the scalar
//! reference engine vs the packed engine vs the sharded engine at widths
//! 64/256/512 and 1/2/4 threads.
//!
//! Equality is asserted on *detection times*, not just detected /
//! undetected — the paper's selection procedures key off `udet(f)`, so a
//! backend that detects the right faults at the wrong time units would
//! silently produce different (possibly invalid) subsequence selections.
//!
//! Fault lists are seeded random samples of each circuit's collapsed
//! universe, sized down on the big analogs to keep the scalar oracle
//! affordable in debug builds.

use bist_expand::expansion::{Expand, ExpansionConfig};
use bist_expand::{TestSequence, TestVector, VectorSource};
use bist_netlist::{benchmarks, Circuit};
use bist_sim::{
    collapse, fault_universe, Fault, PackedBackend, ScalarBackend, ShardedBackend, SimBackend,
    WordWidth,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded sample of `k` collapsed faults (the whole universe if smaller).
fn sample_faults(circuit: &Circuit, k: usize, rng: &mut StdRng) -> Vec<Fault> {
    let mut faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
    while faults.len() > k {
        let victim = rng.gen_range(0usize..faults.len());
        faults.swap_remove(victim);
    }
    faults
}

fn random_sequence(circuit: &Circuit, len: usize, rng: &mut StdRng) -> TestSequence {
    let width = circuit.num_inputs();
    TestSequence::from_vectors(
        (0..len).map(|_| TestVector::from_fn(width, |_| rng.gen_bool(0.5))).collect(),
    )
    .expect("uniform width")
}

fn sharded_grid() -> Vec<ShardedBackend> {
    let mut grid = Vec::new();
    for width in [WordWidth::W64, WordWidth::W256, WordWidth::W512] {
        for threads in [1, 2, 4] {
            grid.push(ShardedBackend::new(threads, width).expect("threads >= 1"));
        }
    }
    grid
}

/// Fault-sample and sequence sizes per circuit, scaled down as the
/// scalar oracle gets more expensive.
fn budget(gates: usize) -> (usize, usize) {
    match gates {
        0..=200 => (96, 24),
        201..=1000 => (64, 16),
        1001..=4000 => (32, 12),
        _ => (16, 8),
    }
}

#[test]
fn all_engines_agree_on_every_suite_circuit() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_e7e5);
    for entry in benchmarks::suite() {
        let circuit = entry.build().expect("suite circuit builds");
        let (num_faults, seq_len) = budget(entry.gates);
        let faults = sample_faults(&circuit, num_faults, &mut rng);
        let seq = random_sequence(&circuit, seq_len, &mut rng);

        let oracle = ScalarBackend.detection_times(&circuit, &seq, &faults).expect("scalar runs");
        let packed = PackedBackend.detection_times(&circuit, &seq, &faults).expect("packed runs");
        assert_eq!(packed, oracle, "packed64 vs scalar on {}", entry.name);
        for engine in sharded_grid() {
            let times = engine.detection_times(&circuit, &seq, &faults).expect("sharded runs");
            assert_eq!(
                times,
                oracle,
                "{} ({} threads) vs scalar on {}",
                engine.name(),
                engine.threads(),
                entry.name
            );
        }
    }
}

#[test]
fn engines_agree_on_expanded_streams() {
    // The workload that matters: lazily expanded `8·n·|S|` streams, where
    // early-exit and replay interact with chunking and sharding.
    let mut rng = StdRng::seed_from_u64(0xe8a_5eed);
    for entry in benchmarks::suite_up_to(600) {
        let circuit = entry.build().expect("suite circuit builds");
        let faults = sample_faults(&circuit, 48, &mut rng);
        let s = random_sequence(&circuit, 3, &mut rng);
        for n in [1, 2] {
            let cfg = ExpansionConfig::new(n).expect("n >= 1");
            let stream = cfg.stream(&s);
            let oracle = ScalarBackend.detection_times(&circuit, &stream, &faults).expect("scalar");
            let packed = PackedBackend.detection_times(&circuit, &stream, &faults).expect("packed");
            assert_eq!(packed, oracle, "packed64 on {} n={n}", entry.name);
            for engine in sharded_grid() {
                let times = engine.detection_times(&circuit, &stream, &faults).expect("sharded");
                assert_eq!(times, oracle, "{} on {} n={n}", engine.name(), entry.name);
            }
            // The stream view itself must match the materialized Sexp.
            assert_eq!(stream.materialize(), cfg.expand(&s), "{} n={n}", entry.name);
        }
    }
}

#[test]
fn duplicate_faults_get_identical_times_across_chunk_boundaries() {
    // Duplicating the fault list beyond one 511-lane chunk exercises the
    // lane bookkeeping of every width: duplicates must resolve to the
    // same time regardless of which chunk/shard/lane they land in.
    let circuit = benchmarks::suite()[2].build().expect("a344 builds");
    let mut rng = StdRng::seed_from_u64(77);
    let base = sample_faults(&circuit, 96, &mut rng);
    let mut tripled = base.clone();
    tripled.extend(base.iter().copied());
    tripled.extend(base.iter().copied());
    let seq = random_sequence(&circuit, 12, &mut rng);
    for engine in sharded_grid() {
        let times = engine.detection_times(&circuit, &seq, &tripled).expect("runs");
        for i in 0..base.len() {
            assert_eq!(times[i], times[i + base.len()], "{} copy 1", engine.name());
            assert_eq!(times[i], times[i + 2 * base.len()], "{} copy 2", engine.name());
        }
    }
}
