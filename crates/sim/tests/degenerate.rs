//! Degenerate-tape behavior, pinned: circuits with **zero gates** and
//! primary outputs fed **directly** from primary inputs or flip-flops
//! must compile and simulate without panics on every engine, producing
//! the identity results the three-valued semantics dictate.
//!
//! These shapes appear in the randomized fuzz corpus too; this file pins
//! the exact expected results rather than just oracle agreement.

use bist_expand::TestSequence;
use bist_netlist::{CircuitBuilder, GateTape};
use bist_sim::{
    collapse, fault_universe, reference, simulate_good, Fault, FaultSimulator, Logic, SimBackend,
    SteppedSim,
};

mod common;

/// `a → PO`, `q = DFF(a) → PO`: no gates at all.
fn zero_gate_circuit() -> bist_netlist::Circuit {
    let mut b = CircuitBuilder::new("zero_gate");
    b.add_input("a");
    b.add_dff("q", "a");
    b.add_output("a");
    b.add_output("q");
    b.finish().expect("zero-gate circuit is valid")
}

fn all_engines() -> Vec<Box<dyn SimBackend>> {
    common::engine_grid(&[2])
}

#[test]
fn zero_gate_tape_is_an_empty_program() {
    let c = zero_gate_circuit();
    let tape = GateTape::compile(&c);
    assert_eq!(tape.num_gates(), 0);
    assert!(tape.runs().is_empty());
    assert!(tape.tiles().is_empty());
    assert_eq!(tape.fanin_start(), &[0]);
    assert!(tape.fanin().is_empty());
    assert_eq!(tape.num_nodes(), 2);
    assert_eq!(tape.gate_pos(0), None);
    assert_eq!(tape.gate_pos(1), None);
    assert_eq!(tape.num_dffs(), 1);
    assert_eq!(tape.dff_src(), &[0]);
}

#[test]
fn zero_gate_good_simulation_is_the_identity() {
    let c = zero_gate_circuit();
    let seq: TestSequence = "1 0 1 1".parse().unwrap();
    let trace = simulate_good(&c, &seq).unwrap();
    // PO "a" mirrors the input; PO "q" is the input delayed by one cycle
    // (X at t=0, before anything was latched).
    let a: Vec<Logic> = trace.po.iter().map(|po| po[0]).collect();
    let q: Vec<Logic> = trace.po.iter().map(|po| po[1]).collect();
    assert_eq!(a, [Logic::One, Logic::Zero, Logic::One, Logic::One]);
    assert_eq!(q, [Logic::X, Logic::One, Logic::Zero, Logic::One]);
    assert_eq!(trace.final_state, [Logic::One]);

    // The stepped simulator agrees.
    let mut sim = SteppedSim::new(&c);
    for (t, v) in seq.iter().enumerate() {
        assert_eq!(sim.step(v).unwrap(), trace.po[t], "t={t}");
    }
}

#[test]
fn zero_gate_detection_times_are_exact_on_every_engine() {
    let c = zero_gate_circuit();
    let tape = GateTape::compile(&c);
    let a = c.find("a").unwrap();
    let q = c.find("q").unwrap();
    let seq: TestSequence = "1 0 1 1".parse().unwrap();
    // a s-a-0: seen the moment a=1 drives the PO (t=0).
    // a s-a-1: first a=0 vector is t=1.
    // q s-a-0: q must be binary-1 in the good machine: t=1 (latched 1).
    // q s-a-1: good q first binary-0 at t=2.
    let faults = vec![
        Fault::output(a, false),
        Fault::output(a, true),
        Fault::output(q, false),
        Fault::output(q, true),
    ];
    let expect = vec![Some(0), Some(1), Some(1), Some(2)];
    let oracle = reference::detection_times(&c, &seq, &faults).unwrap();
    assert_eq!(oracle, expect);
    for engine in all_engines() {
        let times = engine.detection_times_tape(&tape, &seq, &faults).unwrap();
        assert_eq!(times, expect, "{}", engine.name());
    }
}

#[test]
fn zero_gate_universe_collapses_without_panicking() {
    let c = zero_gate_circuit();
    let universe = fault_universe(&c);
    // Two nodes, no fanout branching: 4 stem faults.
    assert_eq!(universe.len(), 4);
    let collapsed = collapse(&c, &universe);
    assert!(!collapsed.representatives().is_empty());
    let sim = FaultSimulator::new(&c);
    let seq: TestSequence = "1 0".parse().unwrap();
    let times = sim.detection_times(&seq, collapsed.representatives()).unwrap();
    assert_eq!(times.len(), collapsed.representatives().len());
}

#[test]
fn po_fed_directly_from_pi_next_to_gates() {
    // A mixed circuit: one real gate plus POs wired straight to a PI and
    // a DFF — the tape must route the pass-through observations around
    // the gate program.
    let mut b = CircuitBuilder::new("mixed");
    b.add_input("a");
    b.add_input("b");
    b.add_dff("q", "g");
    b.add_gate("g", bist_netlist::GateKind::Nand, ["a", "b"]);
    b.add_output("a"); // PO = PI
    b.add_output("q"); // PO = DFF
    b.add_output("g");
    let c = b.finish().unwrap();
    let tape = GateTape::compile(&c);
    assert_eq!(tape.num_gates(), 1);
    let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
    let seq: TestSequence = "11 01 10 00 11 10".parse().unwrap();
    let oracle = reference::detection_times(&c, &seq, &faults).unwrap();
    for engine in all_engines() {
        let times = engine.detection_times_tape(&tape, &seq, &faults).unwrap();
        assert_eq!(times, oracle, "{}", engine.name());
    }
    // Full coverage is reachable: every fault site feeds a PO.
    assert!(oracle.iter().filter(|t| t.is_some()).count() >= faults.len() - 1);
}
