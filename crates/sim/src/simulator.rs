//! The sequential stuck-at fault simulator.
//!
//! Faults are simulated 64 at a time: each lane of a [`PackedValue`]
//! carries one faulty machine, and the fault-free machine is simulated
//! once (scalar) as the comparison reference. Both machines start from the
//! all-unknown state. A fault is *detected* at time unit `u` if some
//! primary output has a binary value in the fault-free circuit and the
//! complementary binary value in the faulty circuit at time `u` — the
//! standard pessimistic three-valued criterion, matching the paper's
//! definition of a subsequence detecting a fault from the all-unspecified
//! state.

use std::ops::Not;
use crate::good::{simulate_good, GoodTrace};
use crate::{eval, Fault, FaultSite, Logic, PackedValue, SimError};
use bist_expand::TestSequence;
use bist_netlist::{Circuit, NodeId, NodeKind};

/// Sparse per-chunk fault injection tables, allocated once per simulator
/// run and cleared between chunks.
struct Injector {
    /// Nodes with output (stem) forces in the current chunk.
    out_touched: Vec<usize>,
    out_forces: Vec<Vec<(usize, Logic)>>,
    /// Nodes with input (branch) forces in the current chunk.
    in_touched: Vec<usize>,
    in_forces: Vec<Vec<(u32, usize, Logic)>>,
}

impl Injector {
    fn new(num_nodes: usize) -> Self {
        Injector {
            out_touched: Vec::new(),
            out_forces: vec![Vec::new(); num_nodes],
            in_touched: Vec::new(),
            in_forces: vec![Vec::new(); num_nodes],
        }
    }

    fn clear(&mut self) {
        for &i in &self.out_touched {
            self.out_forces[i].clear();
        }
        for &i in &self.in_touched {
            self.in_forces[i].clear();
        }
        self.out_touched.clear();
        self.in_touched.clear();
    }

    fn load(&mut self, chunk: &[Fault]) {
        self.clear();
        for (lane, fault) in chunk.iter().enumerate() {
            let forced = Logic::from_bool(fault.stuck);
            match fault.site {
                FaultSite::Output(node) => {
                    let i = node.index();
                    if self.out_forces[i].is_empty() {
                        self.out_touched.push(i);
                    }
                    self.out_forces[i].push((lane, forced));
                }
                FaultSite::Input { node, pin } => {
                    let i = node.index();
                    if self.in_forces[i].is_empty() {
                        self.in_touched.push(i);
                    }
                    self.in_forces[i].push((pin, lane, forced));
                }
            }
        }
    }

    #[inline]
    fn force_output(&self, node: usize, mut value: PackedValue) -> PackedValue {
        for &(lane, forced) in &self.out_forces[node] {
            value.set_lane(lane, forced);
        }
        value
    }

    #[inline]
    fn has_input_forces(&self, node: usize) -> bool {
        !self.in_forces[node].is_empty()
    }

    /// Value of `node`'s fanin `pin` as seen by the gate, with branch
    /// forces applied.
    #[inline]
    fn forced_input(&self, node: usize, pin: u32, mut value: PackedValue) -> PackedValue {
        for &(p, lane, forced) in &self.in_forces[node] {
            if p == pin {
                value.set_lane(lane, forced);
            }
        }
        value
    }
}

/// Packed gate evaluation reading straight from the value table
/// (allocation-free fast path).
#[inline]
fn eval_fold(values: &[PackedValue], fanin: &[NodeId], kind: bist_netlist::GateKind) -> PackedValue {
    use bist_netlist::GateKind;
    let first = values[fanin[0].index()];
    let rest = fanin[1..].iter().map(|f| values[f.index()]);
    match kind {
        GateKind::Buf => first,
        GateKind::Not => first.not(),
        GateKind::And => rest.fold(first, PackedValue::and),
        GateKind::Nand => rest.fold(first, PackedValue::and).not(),
        GateKind::Or => rest.fold(first, PackedValue::or),
        GateKind::Nor => rest.fold(first, PackedValue::or).not(),
        GateKind::Xor => rest.fold(first, PackedValue::xor),
        GateKind::Xnor => rest.fold(first, PackedValue::xor).not(),
    }
}

/// Sequential stuck-at fault simulator for one circuit.
///
/// # Example
///
/// ```
/// use bist_expand::TestSequence;
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe, FaultSimulator};
///
/// let c = benchmarks::s27();
/// let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
/// let sim = FaultSimulator::new(&c);
/// // The paper's Table 2 sequence detects 32 of the 32 collapsed faults.
/// let t0: TestSequence =
///     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
/// let times = sim.detection_times(&t0, &faults)?;
/// assert_eq!(times.iter().filter(|t| t.is_some()).count(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultSimulator<'c> {
    circuit: &'c Circuit,
}

impl<'c> FaultSimulator<'c> {
    /// Creates a simulator bound to `circuit`.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        FaultSimulator { circuit }
    }

    /// The simulated circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Fault-free simulation (see [`simulate_good`]).
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn good(&self, seq: &TestSequence) -> Result<GoodTrace, SimError> {
        simulate_good(self.circuit, seq)
    }

    /// First detection time of every fault in `faults` under `seq`, or
    /// `None` if undetected. Faults are simulated 64 per pass with early
    /// exit once every fault in a pass is detected.
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn detection_times(
        &self,
        seq: &TestSequence,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        let good = self.good(seq)?;
        let mut times = vec![None; faults.len()];
        let mut injector = Injector::new(self.circuit.num_nodes());
        let mut values = vec![PackedValue::ALL_X; self.circuit.num_nodes()];
        for (ci, chunk) in faults.chunks(PackedValue::LANES).enumerate() {
            self.run_chunk(
                seq,
                &good,
                chunk,
                &mut times[ci * PackedValue::LANES..ci * PackedValue::LANES + chunk.len()],
                &mut injector,
                &mut values,
            );
        }
        Ok(times)
    }

    /// First detection time of a single fault (early exit at detection).
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn first_detection(
        &self,
        seq: &TestSequence,
        fault: Fault,
    ) -> Result<Option<usize>, SimError> {
        Ok(self.detection_times(seq, &[fault])?[0])
    }

    /// Whether `seq` detects `fault` (early exit at detection).
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn detects(&self, seq: &TestSequence, fault: Fault) -> Result<bool, SimError> {
        Ok(self.first_detection(seq, fault)?.is_some())
    }

    fn run_chunk(
        &self,
        seq: &TestSequence,
        good: &GoodTrace,
        chunk: &[Fault],
        times: &mut [Option<usize>],
        injector: &mut Injector,
        values: &mut [PackedValue],
    ) {
        let circuit = self.circuit;
        injector.load(chunk);
        values.fill(PackedValue::ALL_X);

        let used: u64 = if chunk.len() == PackedValue::LANES {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut undetected = used;
        let mut state = vec![PackedValue::ALL_X; circuit.num_dffs()];
        let mut scratch: Vec<PackedValue> = Vec::new();

        for (t, vector) in seq.iter().enumerate() {
            // Drive primary inputs (with stem forces: a stuck PI is stuck
            // every cycle).
            for (i, &pi) in circuit.inputs().iter().enumerate() {
                let v = PackedValue::splat(Logic::from_bool(vector.get(i)));
                values[pi.index()] = injector.force_output(pi.index(), v);
            }
            // Present state.
            for (k, &dff) in circuit.dffs().iter().enumerate() {
                values[dff.index()] = injector.force_output(dff.index(), state[k]);
            }
            // Combinational sweep.
            for &g in circuit.eval_order() {
                let node = circuit.node(g);
                let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
                let gi = g.index();
                let v = if injector.has_input_forces(gi) {
                    scratch.clear();
                    for (pin, &f) in node.fanin().iter().enumerate() {
                        scratch.push(injector.forced_input(gi, pin as u32, values[f.index()]));
                    }
                    eval::eval_gate(*kind, &scratch)
                } else {
                    eval_fold(values, node.fanin(), *kind)
                };
                values[gi] = injector.force_output(gi, v);
            }
            // Compare primary outputs against the good machine.
            for (oi, &o) in circuit.outputs().iter().enumerate() {
                let diff = match good.po[t][oi] {
                    Logic::One => values[o.index()].zeros,
                    Logic::Zero => values[o.index()].ones,
                    Logic::X => continue,
                };
                let newly = diff & undetected;
                if newly != 0 {
                    let mut bits = newly;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        times[lane] = Some(t);
                        bits &= bits - 1;
                    }
                    undetected &= !newly;
                }
            }
            if undetected == 0 {
                break;
            }
            // Clock: latch next state (with D-pin branch forces).
            for (k, &dff) in circuit.dffs().iter().enumerate() {
                let di = dff.index();
                let src = circuit.node(dff).fanin()[0];
                let mut v = values[src.index()];
                if injector.has_input_forces(di) {
                    v = injector.forced_input(di, 0, v);
                }
                state[k] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe};
    use bist_netlist::benchmarks;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    /// The paper's Table 2 sequence for s27.
    fn table2_t0() -> TestSequence {
        seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
    }

    #[test]
    fn table2_sequence_detects_all_32_collapsed_faults() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        assert_eq!(faults.len(), 32);
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &faults).unwrap();
        let detected = times.iter().filter(|t| t.is_some()).count();
        // Table 2 shows every one of the 32 faults detected by time 9.
        assert_eq!(detected, 32);
        assert!(times.iter().flatten().all(|&t| t <= 9));
    }

    #[test]
    fn table2_detection_time_histogram_matches_paper() {
        // Table 2 lists how many faults are first detected at each time
        // unit: u=1:9, u=2:4, u=4:1, u=5:11, u=6:2, u=8:3, u=9:2.
        // Our fault numbering differs but the histogram is an invariant of
        // the circuit + sequence (for the same collapsed universe).
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &faults).unwrap();
        let mut hist = [0usize; 10];
        for t in times.iter().flatten() {
            hist[*t] += 1;
        }
        assert_eq!(hist, [0, 9, 4, 0, 1, 11, 2, 0, 3, 2]);
    }

    #[test]
    fn stuck_output_detected_in_shift_register() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        // q2 s-a-0: drive 1s through; good q2 becomes 1 at t=3.
        let f = Fault::output(q2, false);
        let t = sim.first_detection(&seq("11 11 11 11 11"), f).unwrap();
        assert_eq!(t, Some(3));
        // q2 s-a-1: good q2 is X until t=3 (all-1 stream), so drive 0s.
        let f1 = Fault::output(q2, true);
        let t1 = sim.first_detection(&seq("01 01 01 01 01"), f1).unwrap();
        assert_eq!(t1, Some(3));
    }

    #[test]
    fn undetectable_without_activation() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        // q2 s-a-0 cannot be seen while only 0s are shifted in.
        let f = Fault::output(q2, false);
        assert_eq!(sim.first_detection(&seq("01 01 01 01"), f).unwrap(), None);
    }

    #[test]
    fn x_state_blocks_detection() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        let f = Fault::output(q2, false);
        // Only 2 vectors: good q2 still X at both times — no detection.
        assert_eq!(sim.first_detection(&seq("11 11"), f).unwrap(), None);
    }

    #[test]
    fn input_branch_fault_differs_from_stem() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c);
        let sim = FaultSimulator::new(&c);
        // G11 branches to G17, G10 and the DFF G6. The branch fault
        // G17.0 s-a-1 and the stem fault G11 s-a-1 may have different
        // detection times under T0.
        let g17 = c.find("G17").unwrap();
        let g11 = c.find("G11").unwrap();
        let branch = Fault::input(g17, 0, true);
        let stem = Fault::output(g11, true);
        assert!(universe.contains(&branch));
        let tb = sim.first_detection(&table2_t0(), branch).unwrap();
        let ts = sim.first_detection(&table2_t0(), stem).unwrap();
        // The stem fault affects strictly more paths: it must be detected
        // no later than the branch fault here.
        assert!(tb.is_some());
        assert!(ts.is_some());
        assert!(ts.unwrap() <= tb.unwrap());
    }

    #[test]
    fn parallel_matches_serial_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let t0 = table2_t0();
        let parallel = sim.detection_times(&t0, &faults).unwrap();
        for (i, &f) in faults.iter().enumerate() {
            let serial = sim.first_detection(&t0, f).unwrap();
            assert_eq!(serial, parallel[i], "fault {}", f.describe(&c));
        }
    }

    #[test]
    fn more_than_64_faults_chunk_correctly() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c); // 52 faults
        // Duplicate the universe to exceed one chunk; duplicated faults
        // must get identical times.
        let mut doubled = universe.clone();
        doubled.extend(universe.iter().copied());
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &doubled).unwrap();
        for i in 0..universe.len() {
            assert_eq!(times[i], times[i + universe.len()]);
        }
    }

    #[test]
    fn empty_fault_list_is_fine() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &[]).unwrap();
        assert!(times.is_empty());
    }

    #[test]
    fn width_mismatch_propagates() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        assert!(matches!(
            sim.detection_times(&seq("000"), &[]),
            Err(SimError::WidthMismatch { .. })
        ));
    }
}
