//! The sequential stuck-at fault simulator facade.
//!
//! [`FaultSimulator`] binds a circuit — compiled once into its
//! [`GateTape`] instruction form — to a [`SimBackend`] engine. The
//! default engine simulates faults 63 at a time (one faulty machine per
//! low [`PackedValue`](crate::PackedValue) lane, with the fault-free
//! machine fused into the top lane); [`FaultSimulator::sharded`] selects
//! the thread-sharded wide-word engine, and a scalar reference engine is
//! available for differential testing via
//! [`FaultSimulator::with_backend`]. A fault is *detected* at time unit
//! `u` if some primary output has a binary value in the fault-free circuit
//! and the complementary binary value in the faulty circuit at time `u` —
//! the standard pessimistic three-valued criterion, matching the paper's
//! definition of a subsequence detecting a fault from the all-unspecified
//! state.
//!
//! The tape is compiled at construction and shared by every query, so a
//! simulator that runs thousands of passes (test generation, Procedure
//! 1/2 sweeps) compiles exactly once. Callers that already hold a tape —
//! a `Session`, a batch campaign's artifact cache — inject it through
//! [`FaultSimulator::with_backend_and_tape`] and nothing is recompiled.
//!
//! Every query has a `*_stream` variant taking a [`VectorSource`], so the
//! expanded sequences of the paper's scheme can be simulated straight from
//! the lazy [`ExpansionIter`](bist_expand::ExpansionIter) without ever
//! materializing `Sexp`.

use crate::backend::{PackedBackend, ScalarBackend, ShardedBackend, SimBackend, WordWidth};
use crate::good::GoodTrace;
use crate::{Fault, SimError};
use bist_expand::{TestSequence, VectorSource};
use bist_netlist::{Circuit, CompiledCircuit, GateTape};
use bist_obs::Obs;
use std::sync::Arc;

/// Sequential stuck-at fault simulator for one circuit.
///
/// # Example
///
/// ```
/// use bist_expand::TestSequence;
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe, FaultSimulator};
///
/// let c = benchmarks::s27();
/// let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
/// let sim = FaultSimulator::new(&c);
/// // The paper's Table 2 sequence detects 32 of the 32 collapsed faults.
/// let t0: TestSequence =
///     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
/// let times = sim.detection_times(&t0, &faults)?;
/// assert_eq!(times.iter().filter(|t| t.is_some()).count(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultSimulator<'c> {
    circuit: &'c Circuit,
    tape: Arc<GateTape>,
    backend: Arc<dyn SimBackend>,
    /// A staged compile to route fault sites through. `None` for the
    /// classic identity paths: every site injects on `tape` directly.
    compiled: Option<Arc<CompiledCircuit>>,
    /// Telemetry sink threaded into every engine pass. Defaults to the
    /// no-op sink; results never depend on it.
    obs: Obs,
}

impl<'c> FaultSimulator<'c> {
    /// Creates a simulator bound to `circuit` with the default 64-lane
    /// packed engine, compiling the circuit's tape.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        FaultSimulator::with_backend(circuit, Arc::new(PackedBackend))
    }

    /// Creates a simulator using the scalar reference engine (one faulty
    /// machine at a time) — for differential testing.
    #[must_use]
    pub fn scalar(circuit: &'c Circuit) -> Self {
        FaultSimulator::with_backend(circuit, Arc::new(ScalarBackend))
    }

    /// Creates a simulator using the thread-sharded wide-word engine.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroThreads`] if `threads == 0`.
    pub fn sharded(
        circuit: &'c Circuit,
        threads: usize,
        width: WordWidth,
    ) -> Result<Self, SimError> {
        Ok(FaultSimulator::with_backend(circuit, Arc::new(ShardedBackend::new(threads, width)?)))
    }

    /// Creates a simulator with an explicit engine, compiling the
    /// circuit's tape.
    #[must_use]
    pub fn with_backend(circuit: &'c Circuit, backend: Arc<dyn SimBackend>) -> Self {
        let tape = Arc::new(GateTape::compile(circuit));
        #[cfg(debug_assertions)]
        bist_verify::audit_tape(circuit, &tape);
        FaultSimulator { circuit, tape, backend, compiled: None, obs: Obs::noop() }
    }

    /// Creates a simulator reusing an already-compiled tape — the
    /// zero-recompilation entry point for sessions and campaign caches.
    ///
    /// # Errors
    ///
    /// [`SimError::TapeMismatch`] if `tape` was not compiled from a
    /// circuit of the same shape (node/input/output/DFF/gate counts).
    pub fn with_backend_and_tape(
        circuit: &'c Circuit,
        tape: Arc<GateTape>,
        backend: Arc<dyn SimBackend>,
    ) -> Result<Self, SimError> {
        check_tape_shape(&tape, circuit)?;
        // The shape check above is O(1) and release-safe; debug builds
        // additionally prove the tape is *this* circuit's, field by field.
        #[cfg(debug_assertions)]
        bist_verify::audit_tape(circuit, &tape);
        Ok(FaultSimulator { circuit, tape, backend, compiled: None, obs: Obs::noop() })
    }

    /// Creates a simulator over a staged compile: queries run on the
    /// (possibly optimized) tape, with fault sites routed through the
    /// compile's [`SiteMap`](bist_netlist::SiteMap) — pinned sites fall
    /// back to the baseline tape, so results are bit-identical to an
    /// unoptimized simulator.
    ///
    /// # Errors
    ///
    /// [`SimError::TapeMismatch`] if the compile's baseline tape does not
    /// match `circuit`'s shape (the compile belongs to another circuit).
    pub fn with_backend_and_compiled(
        circuit: &'c Circuit,
        compiled: Arc<CompiledCircuit>,
        backend: Arc<dyn SimBackend>,
    ) -> Result<Self, SimError> {
        check_tape_shape(compiled.baseline(), circuit)?;
        if compiled.site_map().num_nodes() != circuit.num_nodes() {
            return Err(SimError::TapeMismatch {
                tape_shape: (compiled.site_map().num_nodes(), 0, 0, 0, 0),
                circuit_shape: (circuit.num_nodes(), 0, 0, 0, 0),
            });
        }
        #[cfg(debug_assertions)]
        bist_verify::audit_compiled(circuit, &compiled);
        let tape = Arc::clone(compiled.tape());
        Ok(FaultSimulator { circuit, tape, backend, compiled: Some(compiled), obs: Obs::noop() })
    }

    /// The simulated circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The compiled tape every query executes — shareable with other
    /// simulators over the same circuit.
    #[must_use]
    pub fn tape(&self) -> &Arc<GateTape> {
        &self.tape
    }

    /// The engine behind this simulator.
    #[must_use]
    pub fn backend(&self) -> &dyn SimBackend {
        &*self.backend
    }

    /// The staged compile fault queries are routed through, if this
    /// simulator was built with
    /// [`with_backend_and_compiled`](Self::with_backend_and_compiled).
    #[must_use]
    pub fn compiled(&self) -> Option<&Arc<CompiledCircuit>> {
        self.compiled.as_ref()
    }

    /// Attaches a telemetry sink: every subsequent engine pass records
    /// its sweep counters and shard busy time into `obs`. Telemetry is
    /// observation-only — results are bit-identical with any sink.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The telemetry sink engine passes record into (the no-op sink
    /// unless [`with_obs`](Self::with_obs) was used). Layers above the
    /// simulator (scheme sweeps, sessions) share it for their own spans.
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Fault-free simulation (see [`simulate_good`](crate::simulate_good))
    /// — over this
    /// simulator's cached tape, so repeated calls compile nothing.
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn good(&self, seq: &TestSequence) -> Result<GoodTrace, SimError> {
        crate::good::simulate_good_tape(&self.tape, seq)
    }

    /// First detection time of every fault in `faults` under `seq`, or
    /// `None` if undetected.
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn detection_times(
        &self,
        seq: &TestSequence,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        self.detection_times_stream(seq, faults)
    }

    /// [`detection_times`](Self::detection_times) over any replayable
    /// vector stream — e.g. a lazy expansion — without materializing it.
    ///
    /// # Errors
    ///
    /// Width mismatch / empty stream.
    pub fn detection_times_stream(
        &self,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        match &self.compiled {
            Some(compiled) => crate::mapped::detection_times_mapped_obs(
                &*self.backend,
                compiled,
                source,
                faults,
                &self.obs,
            ),
            None => self.backend.detection_times_tape_obs(&self.tape, source, faults, &self.obs),
        }
    }

    /// First detection time of a single fault (early exit at detection).
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn first_detection(
        &self,
        seq: &TestSequence,
        fault: Fault,
    ) -> Result<Option<usize>, SimError> {
        Ok(self.detection_times(seq, &[fault])?[0])
    }

    /// Whether `seq` detects `fault` (early exit at detection).
    ///
    /// # Errors
    ///
    /// Width mismatch / empty sequence.
    pub fn detects(&self, seq: &TestSequence, fault: Fault) -> Result<bool, SimError> {
        Ok(self.first_detection(seq, fault)?.is_some())
    }

    /// Whether the vector stream detects `fault` (early exit at
    /// detection), without materializing the stream.
    ///
    /// # Errors
    ///
    /// Width mismatch / empty stream.
    pub fn detects_stream(
        &self,
        source: &dyn VectorSource,
        fault: Fault,
    ) -> Result<bool, SimError> {
        Ok(self.detection_times_stream(source, &[fault])?[0].is_some())
    }
}

/// O(1) guard against a miskeyed tape: the `(nodes, inputs, outputs,
/// DFFs, gates)` fingerprint of the tape must match the circuit's. Two
/// different circuits can in principle still collide on all five counts,
/// but a wrong cache key almost never does — and the alternative, a
/// structural walk, would cost as much as recompiling.
pub(crate) fn check_tape_shape(tape: &GateTape, circuit: &Circuit) -> Result<(), SimError> {
    let tape_shape = (
        tape.num_nodes(),
        tape.num_inputs(),
        tape.num_outputs(),
        tape.num_dffs(),
        tape.num_gates(),
    );
    let circuit_shape = (
        circuit.num_nodes(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_dffs(),
        circuit.num_gates(),
    );
    if tape_shape != circuit_shape {
        return Err(SimError::TapeMismatch { tape_shape, circuit_shape });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe};
    use bist_expand::expansion::{Expand, ExpansionConfig};
    use bist_netlist::benchmarks;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    /// The paper's Table 2 sequence for s27.
    fn table2_t0() -> TestSequence {
        seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
    }

    #[test]
    fn table2_sequence_detects_all_32_collapsed_faults() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        assert_eq!(faults.len(), 32);
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &faults).unwrap();
        let detected = times.iter().filter(|t| t.is_some()).count();
        // Table 2 shows every one of the 32 faults detected by time 9.
        assert_eq!(detected, 32);
        assert!(times.iter().flatten().all(|&t| t <= 9));
    }

    #[test]
    fn table2_detection_time_histogram_matches_paper() {
        // Table 2 lists how many faults are first detected at each time
        // unit: u=1:9, u=2:4, u=4:1, u=5:11, u=6:2, u=8:3, u=9:2.
        // Our fault numbering differs but the histogram is an invariant of
        // the circuit + sequence (for the same collapsed universe).
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &faults).unwrap();
        let mut hist = [0usize; 10];
        for t in times.iter().flatten() {
            hist[*t] += 1;
        }
        assert_eq!(hist, [0, 9, 4, 0, 1, 11, 2, 0, 3, 2]);
    }

    #[test]
    fn shared_tape_is_not_recompiled() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        let tape = Arc::clone(sim.tape());
        let shared =
            FaultSimulator::with_backend_and_tape(&c, Arc::clone(&tape), Arc::new(ScalarBackend))
                .unwrap();
        assert!(Arc::ptr_eq(shared.tape(), &tape));
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        assert_eq!(
            shared.detection_times(&table2_t0(), &faults).unwrap(),
            sim.detection_times(&table2_t0(), &faults).unwrap()
        );
    }

    #[test]
    fn mismatched_tape_is_a_typed_error() {
        let c = benchmarks::s27();
        let other = benchmarks::shift_register3();
        let alien = Arc::new(GateTape::compile(&other));
        let err = FaultSimulator::with_backend_and_tape(&c, alien, Arc::new(PackedBackend));
        assert!(matches!(err, Err(SimError::TapeMismatch { .. })));
    }

    #[test]
    fn stuck_output_detected_in_shift_register() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        // q2 s-a-0: drive 1s through; good q2 becomes 1 at t=3.
        let f = Fault::output(q2, false);
        let t = sim.first_detection(&seq("11 11 11 11 11"), f).unwrap();
        assert_eq!(t, Some(3));
        // q2 s-a-1: good q2 is X until t=3 (all-1 stream), so drive 0s.
        let f1 = Fault::output(q2, true);
        let t1 = sim.first_detection(&seq("01 01 01 01 01"), f1).unwrap();
        assert_eq!(t1, Some(3));
    }

    #[test]
    fn undetectable_without_activation() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        // q2 s-a-0 cannot be seen while only 0s are shifted in.
        let f = Fault::output(q2, false);
        assert_eq!(sim.first_detection(&seq("01 01 01 01"), f).unwrap(), None);
    }

    #[test]
    fn x_state_blocks_detection() {
        let c = benchmarks::shift_register3();
        let sim = FaultSimulator::new(&c);
        let q2 = c.find("q2").unwrap();
        let f = Fault::output(q2, false);
        // Only 2 vectors: good q2 still X at both times — no detection.
        assert_eq!(sim.first_detection(&seq("11 11"), f).unwrap(), None);
    }

    #[test]
    fn input_branch_fault_differs_from_stem() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c);
        let sim = FaultSimulator::new(&c);
        // G11 branches to G17, G10 and the DFF G6. The branch fault
        // G17.0 s-a-1 and the stem fault G11 s-a-1 may have different
        // detection times under T0.
        let g17 = c.find("G17").unwrap();
        let g11 = c.find("G11").unwrap();
        let branch = Fault::input(g17, 0, true);
        let stem = Fault::output(g11, true);
        assert!(universe.contains(&branch));
        let tb = sim.first_detection(&table2_t0(), branch).unwrap();
        let ts = sim.first_detection(&table2_t0(), stem).unwrap();
        // The stem fault affects strictly more paths: it must be detected
        // no later than the branch fault here.
        assert!(tb.is_some());
        assert!(ts.is_some());
        assert!(ts.unwrap() <= tb.unwrap());
    }

    #[test]
    fn parallel_matches_serial_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let t0 = table2_t0();
        let parallel = sim.detection_times(&t0, &faults).unwrap();
        for (i, &f) in faults.iter().enumerate() {
            let serial = sim.first_detection(&t0, f).unwrap();
            assert_eq!(serial, parallel[i], "fault {}", f.describe(&c));
        }
    }

    #[test]
    fn sharded_simulator_matches_packed() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let packed = FaultSimulator::new(&c).detection_times(&t0, &faults).unwrap();
        for width in [WordWidth::W64, WordWidth::W256, WordWidth::W512] {
            for threads in [1, 2, 4] {
                let sim = FaultSimulator::sharded(&c, threads, width).unwrap();
                assert_eq!(
                    sim.detection_times(&t0, &faults).unwrap(),
                    packed,
                    "threads={threads} width={width:?}"
                );
            }
        }
        assert!(FaultSimulator::sharded(&c, 0, WordWidth::W64).is_err());
    }

    #[test]
    fn scalar_backend_matches_packed_backend_times() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let packed = FaultSimulator::new(&c);
        let scalar = FaultSimulator::scalar(&c);
        assert_ne!(packed.backend().name(), scalar.backend().name());
        let t0 = table2_t0();
        assert_eq!(
            packed.detection_times(&t0, &faults).unwrap(),
            scalar.detection_times(&t0, &faults).unwrap()
        );
    }

    #[test]
    fn streamed_expansion_matches_materialized() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let s = seq("1011 0100 0111");
        let cfg = ExpansionConfig::new(2).unwrap();
        let streamed = sim.detection_times_stream(&cfg.stream(&s), &faults).unwrap();
        let materialized = sim.detection_times(&cfg.expand(&s), &faults).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn more_than_64_faults_chunk_correctly() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c); // 52 faults
                                           // Duplicate the universe to exceed one chunk; duplicated faults
                                           // must get identical times.
        let mut doubled = universe.clone();
        doubled.extend(universe.iter().copied());
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &doubled).unwrap();
        for i in 0..universe.len() {
            assert_eq!(times[i], times[i + universe.len()]);
        }
    }

    #[test]
    fn empty_fault_list_is_fine() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&table2_t0(), &[]).unwrap();
        assert!(times.is_empty());
    }

    #[test]
    fn width_mismatch_propagates() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        assert!(matches!(
            sim.detection_times(&seq("000"), &[]),
            Err(SimError::WidthMismatch { .. })
        ));
    }
}
