use std::fmt;

/// Errors from the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The test sequence width does not match the circuit's input count.
    WidthMismatch {
        /// Number of primary inputs of the circuit.
        circuit_inputs: usize,
        /// Width of the supplied sequence.
        sequence_width: usize,
    },
    /// An empty test sequence was supplied where at least one vector is
    /// required.
    EmptySequence,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WidthMismatch { circuit_inputs, sequence_width } => write!(
                f,
                "sequence width {sequence_width} does not match circuit input count {circuit_inputs}"
            ),
            SimError::EmptySequence => write!(f, "test sequence is empty"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::WidthMismatch { circuit_inputs: 4, sequence_width: 3 };
        assert!(e.to_string().contains('4'));
        assert!(!SimError::EmptySequence.to_string().is_empty());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
