use std::fmt;

/// Errors from the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The test sequence width does not match the circuit's input count.
    WidthMismatch {
        /// Number of primary inputs of the circuit.
        circuit_inputs: usize,
        /// Width of the supplied sequence.
        sequence_width: usize,
    },
    /// An empty test sequence was supplied where at least one vector is
    /// required.
    EmptySequence,
    /// A lane index addressed a lane beyond what the operation has
    /// available — e.g. reading past a packed word's width, or a fault
    /// chunk larger than an engine's per-pass capacity (word width minus
    /// the reserved good-machine lane).
    LaneOutOfRange {
        /// The offending lane index.
        lane: usize,
        /// Number of lanes available to the operation.
        lanes: usize,
    },
    /// A sharded backend was configured with zero worker threads.
    ZeroThreads,
    /// A compiled [`GateTape`](bist_netlist::GateTape) was injected for a
    /// circuit it was not compiled from (interface shape differs). The
    /// shape tuples are `(nodes, inputs, outputs, DFFs, gates)` — an
    /// O(1) fingerprint that catches miskeyed caches without walking
    /// either structure.
    TapeMismatch {
        /// Shape of the injected tape.
        tape_shape: (usize, usize, usize, usize, usize),
        /// Shape of the circuit it was paired with.
        circuit_shape: (usize, usize, usize, usize, usize),
    },
    /// The sweep observed a cancelled
    /// [`CancelToken`](bist_obs::CancelToken) (riding the `Obs` handle)
    /// at a chunk boundary and stopped early. Partial detection results
    /// are discarded: the caller asked the job to stop, not for an
    /// incomplete answer.
    Cancelled {
        /// Whether the token's deadline expired (as opposed to an
        /// explicit cancellation request).
        deadline_expired: bool,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WidthMismatch { circuit_inputs, sequence_width } => write!(
                f,
                "sequence width {sequence_width} does not match circuit input count {circuit_inputs}"
            ),
            SimError::EmptySequence => write!(f, "test sequence is empty"),
            SimError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range ({lanes} lanes available)")
            }
            SimError::ZeroThreads => {
                write!(f, "sharded backend requires at least one worker thread")
            }
            SimError::TapeMismatch { tape_shape, circuit_shape } => write!(
                f,
                "compiled tape shape {tape_shape:?} does not match circuit shape \
                 {circuit_shape:?} (nodes/inputs/outputs/DFFs/gates)"
            ),
            SimError::Cancelled { deadline_expired } => {
                if *deadline_expired {
                    write!(f, "sweep cancelled: job deadline expired")
                } else {
                    write!(f, "sweep cancelled by request")
                }
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::WidthMismatch { circuit_inputs: 4, sequence_width: 3 };
        assert!(e.to_string().contains('4'));
        assert!(!SimError::EmptySequence.to_string().is_empty());
        let lane = SimError::LaneOutOfRange { lane: 64, lanes: 64 };
        assert!(lane.to_string().contains("64"));
        assert!(SimError::ZeroThreads.to_string().contains("thread"));
        let tape = SimError::TapeMismatch {
            tape_shape: (17, 3, 2, 1, 11),
            circuit_shape: (12, 3, 2, 1, 6),
        };
        assert!(tape.to_string().contains("17"));
        assert!(SimError::Cancelled { deadline_expired: true }.to_string().contains("deadline"));
        assert!(SimError::Cancelled { deadline_expired: false }.to_string().contains("request"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
