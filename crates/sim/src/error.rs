use std::fmt;

/// Errors from the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The test sequence width does not match the circuit's input count.
    WidthMismatch {
        /// Number of primary inputs of the circuit.
        circuit_inputs: usize,
        /// Width of the supplied sequence.
        sequence_width: usize,
    },
    /// An empty test sequence was supplied where at least one vector is
    /// required.
    EmptySequence,
    /// A lane index addressed a lane beyond what the operation has
    /// available — e.g. reading past a packed word's width, or a fault
    /// chunk larger than an engine's per-pass capacity (word width minus
    /// the reserved good-machine lane).
    LaneOutOfRange {
        /// The offending lane index.
        lane: usize,
        /// Number of lanes available to the operation.
        lanes: usize,
    },
    /// A sharded backend was configured with zero worker threads.
    ZeroThreads,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WidthMismatch { circuit_inputs, sequence_width } => write!(
                f,
                "sequence width {sequence_width} does not match circuit input count {circuit_inputs}"
            ),
            SimError::EmptySequence => write!(f, "test sequence is empty"),
            SimError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range ({lanes} lanes available)")
            }
            SimError::ZeroThreads => {
                write!(f, "sharded backend requires at least one worker thread")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::WidthMismatch { circuit_inputs: 4, sequence_width: 3 };
        assert!(e.to_string().contains('4'));
        assert!(!SimError::EmptySequence.to_string().is_empty());
        let lane = SimError::LaneOutOfRange { lane: 64, lanes: 64 };
        assert!(lane.to_string().contains("64"));
        assert!(SimError::ZeroThreads.to_string().contains("thread"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
