//! A gross-delay (transition) fault model.
//!
//! The paper's motivation is *at-speed* testing: "At-speed testing is
//! important in detecting defects that affect the timing behavior of a
//! circuit", and one claimed advantage of the scheme is that it applies
//! *more* vectors at speed than `T0`, "potentially achieving better
//! coverage of defects that affect circuit delays" (§1). This module
//! makes that claim measurable.
//!
//! The model is the classic gross-delay approximation: a
//! slow-to-rise (or slow-to-fall) defect on a node delays every such
//! output transition by one full clock cycle. The faulty machine is
//! simulated explicitly: whenever the defective node's newly computed
//! value completes a definite rise (fall) from its previous cycle's
//! value, the node outputs the *old* value for one more cycle.
//! Transitions involving `X` are passed through (conservative: no
//! detection credit from unknowns). Detection requires a binary
//! difference at a primary output, as for stuck-at faults.

use crate::{eval, Logic, SimError};
use bist_expand::TestSequence;
use bist_netlist::{Circuit, NodeId, NodeKind};
use std::fmt;

/// A gross-delay fault on one node's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// The defective node.
    pub node: NodeId,
    /// `true` = slow-to-rise (0→1 delayed), `false` = slow-to-fall.
    pub slow_to_rise: bool,
}

impl TransitionFault {
    /// Human-readable description, e.g. `"G8 slow-to-rise"`.
    #[must_use]
    pub fn describe(&self, circuit: &Circuit) -> String {
        format!(
            "{} {}",
            circuit.node(self.node).name(),
            if self.slow_to_rise { "slow-to-rise" } else { "slow-to-fall" }
        )
    }
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.node, if self.slow_to_rise { "str" } else { "stf" })
    }
}

/// The full transition-fault universe: slow-to-rise and slow-to-fall on
/// every node output.
#[must_use]
pub fn transition_universe(circuit: &Circuit) -> Vec<TransitionFault> {
    let mut out = Vec::with_capacity(2 * circuit.num_nodes());
    for i in 0..circuit.num_nodes() {
        let node = NodeId::from_index(i);
        out.push(TransitionFault { node, slow_to_rise: false });
        out.push(TransitionFault { node, slow_to_rise: true });
    }
    out
}

/// First detection time of a transition fault under `seq`, simulating
/// the faulty machine behaviorally from the all-unknown state.
///
/// # Errors
///
/// Width mismatch / empty sequence, as for the stuck-at simulators.
pub fn detects_transition(
    circuit: &Circuit,
    seq: &TestSequence,
    fault: TransitionFault,
) -> Result<Option<usize>, SimError> {
    if seq.width() != circuit.num_inputs() {
        return Err(SimError::WidthMismatch {
            circuit_inputs: circuit.num_inputs(),
            sequence_width: seq.width(),
        });
    }
    if seq.is_empty() {
        return Err(SimError::EmptySequence);
    }

    let n = circuit.num_nodes();
    let fi = fault.node.index();
    // Good machine.
    let mut gval = vec![Logic::X; n];
    let mut gstate = vec![Logic::X; circuit.num_dffs()];
    // Faulty machine, with the defective node's previous-cycle value.
    let mut bval = vec![Logic::X; n];
    let mut bstate = vec![Logic::X; circuit.num_dffs()];
    let mut prev_at_fault = Logic::X;

    for (t, vector) in seq.iter().enumerate() {
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            let v = Logic::from_bool(vector.get(i));
            gval[pi.index()] = v;
            bval[pi.index()] = v;
        }
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            gval[dff.index()] = gstate[k];
            bval[dff.index()] = bstate[k];
        }
        // Apply the delay to PI/DFF sources too, if the fault sits there.
        if fi < circuit.num_inputs() + circuit.num_dffs() {
            bval[fi] = delayed(prev_at_fault, bval[fi], fault.slow_to_rise);
            prev_at_fault = undelayed_source(circuit, &bval, &bstate, fi, vector);
        }
        for &g in circuit.eval_order() {
            let node = circuit.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            gval[g.index()] =
                eval::eval_scalar_fold(*kind, node.fanin().iter().map(|&f| gval[f.index()]));
            let computed =
                eval::eval_scalar_fold(*kind, node.fanin().iter().map(|&f| bval[f.index()]));
            bval[g.index()] = if g.index() == fi {
                let out = delayed(prev_at_fault, computed, fault.slow_to_rise);
                prev_at_fault = computed;
                out
            } else {
                computed
            };
        }
        // Observe.
        for &o in circuit.outputs() {
            let (g, b) = (gval[o.index()], bval[o.index()]);
            if g.is_binary() && b.is_binary() && g != b {
                return Ok(Some(t));
            }
        }
        // Clock.
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            let src = circuit.node(dff).fanin()[0];
            gstate[k] = gval[src.index()];
            bstate[k] = bval[src.index()];
        }
    }
    Ok(None)
}

/// Gross-delay output function: a definite rise (fall) is held back one
/// cycle; everything else passes through.
fn delayed(prev: Logic, now: Logic, slow_to_rise: bool) -> Logic {
    match (slow_to_rise, prev, now) {
        (true, Logic::Zero, Logic::One) => Logic::Zero,
        (false, Logic::One, Logic::Zero) => Logic::One,
        _ => now,
    }
}

/// The "true" (undelayed) value a source node would carry this cycle —
/// needed to track transitions at PI/DFF fault sites.
fn undelayed_source(
    circuit: &Circuit,
    _bval: &[Logic],
    bstate: &[Logic],
    node: usize,
    vector: &bist_expand::TestVector,
) -> Logic {
    if node < circuit.num_inputs() {
        Logic::from_bool(vector.get(node))
    } else {
        bstate[node - circuit.num_inputs()]
    }
}

/// First detection times of many transition faults (serial; the model is
/// behavioral and per-fault).
///
/// # Errors
///
/// As for [`detects_transition`].
pub fn transition_detection_times(
    circuit: &Circuit,
    seq: &TestSequence,
    faults: &[TransitionFault],
) -> Result<Vec<Option<usize>>, SimError> {
    faults.iter().map(|&f| detects_transition(circuit, seq, f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::benchmarks;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn universe_size() {
        let c = benchmarks::s27();
        assert_eq!(transition_universe(&c).len(), 2 * c.num_nodes());
    }

    #[test]
    fn slow_to_rise_on_shift_register_input() {
        let c = benchmarks::shift_register3();
        let d0 = c.find("d0").unwrap();
        let f = TransitionFault { node: d0, slow_to_rise: true };
        // din: 0,1,1,... en=1. Good d0 rises at t=1; faulty holds 0 one
        // cycle; q2 shows the difference 3 cycles later... but only if
        // the delayed value is observed: good q2(4)=1 (d0 at t=1),
        // faulty q2(4)=0.
        let s = seq("01 11 11 11 11 11 11");
        let t = detects_transition(&c, &s, f).unwrap();
        assert_eq!(t, Some(4));
    }

    #[test]
    fn slow_to_fall_needs_a_fall() {
        let c = benchmarks::shift_register3();
        let d0 = c.find("d0").unwrap();
        let f = TransitionFault { node: d0, slow_to_rise: false };
        // Only rises in this stream -> never detected.
        let s = seq("01 11 11 11 11");
        assert_eq!(detects_transition(&c, &s, f).unwrap(), None);
        // A 1 -> 0 fall on din is detected after the pipeline delay.
        let s = seq("01 11 11 01 01 01 01 01");
        let t = detects_transition(&c, &s, f).unwrap();
        assert!(t.is_some());
    }

    #[test]
    fn constant_inputs_detect_nothing() {
        // No transitions -> no gross-delay fault can be activated at the
        // primary inputs; internal nodes may still toggle, so restrict to
        // PI faults.
        let c = benchmarks::s27();
        let s = seq("1011 1011 1011 1011");
        for &pi in c.inputs() {
            for str_ in [true, false] {
                let f = TransitionFault { node: pi, slow_to_rise: str_ };
                assert_eq!(detects_transition(&c, &s, f).unwrap(), None, "{f}");
            }
        }
    }

    #[test]
    fn x_transitions_are_not_credited() {
        // From the all-X state the first cycle can never activate a
        // definite transition, so nothing is detected at t = 0.
        let c = benchmarks::s27();
        let s = seq("1011 0100");
        for f in transition_universe(&c) {
            let t = detects_transition(&c, &s, f).unwrap();
            assert_ne!(t, Some(0), "{}", f.describe(&c));
        }
    }

    #[test]
    fn more_at_speed_vectors_cover_more_transitions() {
        // The paper's qualitative claim in miniature: a longer at-speed
        // sequence (the expansion) covers at least as many transition
        // faults as its seed.
        use bist_expand::expansion::ExpansionConfig;
        let c = benchmarks::s27();
        let s = seq("1011 0100 1001");
        let sexp = ExpansionConfig::new(2).unwrap().expand(&s);
        let faults = transition_universe(&c);
        let short = transition_detection_times(&c, &s, &faults).unwrap();
        let long = transition_detection_times(&c, &sexp, &faults).unwrap();
        let n_short = short.iter().filter(|t| t.is_some()).count();
        let n_long = long.iter().filter(|t| t.is_some()).count();
        assert!(n_long >= n_short, "{n_long} < {n_short}");
        assert!(n_long > 0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = benchmarks::s27();
        let f = transition_universe(&c)[0];
        assert!(matches!(
            detects_transition(&c, &seq("01"), f),
            Err(SimError::WidthMismatch { .. })
        ));
    }
}
