//! Fault equivalence collapsing.
//!
//! Two faults are *equivalent* if every test detecting one detects the
//! other; only one representative per equivalence class needs to be
//! simulated or targeted. The classic gate-local rules are applied with a
//! union-find so chains of equivalences (e.g. through inverters) merge
//! transitively:
//!
//! * AND: any input s-a-0 ≡ output s-a-0
//! * NAND: any input s-a-0 ≡ output s-a-1
//! * OR: any input s-a-1 ≡ output s-a-1
//! * NOR: any input s-a-1 ≡ output s-a-0
//! * NOT: input s-a-0 ≡ output s-a-1, input s-a-1 ≡ output s-a-0
//! * BUF: input s-a-v ≡ output s-a-v
//! * XOR/XNOR: no local equivalences
//!
//! Faults are **not** collapsed across D flip-flops: a DFF input fault
//! manifests one clock later than the corresponding output fault, and the
//! published ISCAS-89 fault counts (32 for `s27`, matching the paper's
//! Table 2 enumeration f0..f31) keep them distinct.

use crate::fault::sort_faults_by_site;
use crate::Fault;
use bist_netlist::{Circuit, GateKind, NodeKind};
use std::collections::HashMap;

/// The result of collapsing a fault list.
///
/// The representatives come back sorted by fault-site node index
/// ([`sort_faults_by_site`](crate::sort_faults_by_site)) rather than the
/// derived fault order: the engines chunk this list directly, and
/// site-sorted chunks keep their injector forces and value-table traffic
/// clustered. Detection results are per-fault, so the ordering is pure
/// locality — pinned by `site_order_never_changes_detection_results`.
///
/// # Example
///
/// ```
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe};
///
/// let s27 = benchmarks::s27();
/// let collapsed = collapse(&s27, &fault_universe(&s27));
/// assert_eq!(collapsed.representatives().len(), 32); // the paper's count
/// ```
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    representatives: Vec<Fault>,
    /// Class representative for every fault of the input universe.
    class_of: HashMap<Fault, Fault>,
}

impl CollapsedFaults {
    /// The representative faults, one per equivalence class, sorted.
    #[must_use]
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// Maps any fault of the original universe to its class representative.
    #[must_use]
    pub fn representative_of(&self, fault: Fault) -> Option<Fault> {
        self.class_of.get(&fault).copied()
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// True if there are no classes (empty input universe).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// The sizes of all equivalence classes, keyed by representative.
    #[must_use]
    pub fn class_sizes(&self) -> HashMap<Fault, usize> {
        let mut sizes = HashMap::new();
        for rep in self.class_of.values() {
            *sizes.entry(*rep).or_insert(0) += 1;
        }
        sizes
    }
}

/// Simple union-find over dense indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as root so representatives are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Collapses `universe` by gate-local structural equivalence.
///
/// Faults referenced by the rules but absent from `universe` are ignored,
/// so the function also works on pre-filtered fault lists.
#[must_use]
pub fn collapse(circuit: &Circuit, universe: &[Fault]) -> CollapsedFaults {
    let index_of: HashMap<Fault, usize> =
        universe.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let fanout = circuit.fanout_table();
    let mut uf = UnionFind::new(universe.len());

    // The fault on the line entering `node` at `pin`: the branch fault if
    // the stem branches, otherwise the stem fault itself. `None` when the
    // single-fanout stem is also a primary output: such a line is directly
    // observable, so forcing it is *not* equivalent to forcing the
    // consumer's output — collapsing must stop at POs.
    let input_line_fault = |node: bist_netlist::NodeId, pin: u32, stuck: bool| -> Option<Fault> {
        let src = circuit.node(node).fanin()[pin as usize];
        if fanout[src.index()].len() > 1 {
            Some(Fault::input(node, pin, stuck))
        } else if circuit.outputs().contains(&src) {
            None
        } else {
            Some(Fault::output(src, stuck))
        }
    };

    let mut merge = |a: Option<Fault>, b: Fault| {
        let Some(a) = a else { return };
        if let (Some(&ia), Some(&ib)) = (index_of.get(&a), index_of.get(&b)) {
            uf.union(ia, ib);
        }
    };

    for &g in circuit.eval_order() {
        let NodeKind::Gate(kind) = circuit.node(g).kind() else { continue };
        let pins = circuit.node(g).fanin().len() as u32;
        match kind {
            GateKind::And | GateKind::Nand => {
                let out = Fault::output(g, kind.is_inverting());
                for p in 0..pins {
                    merge(input_line_fault(g, p, false), out);
                }
            }
            GateKind::Or | GateKind::Nor => {
                let out = Fault::output(g, !kind.is_inverting());
                for p in 0..pins {
                    merge(input_line_fault(g, p, true), out);
                }
            }
            GateKind::Not => {
                merge(input_line_fault(g, 0, false), Fault::output(g, true));
                merge(input_line_fault(g, 0, true), Fault::output(g, false));
            }
            GateKind::Buf => {
                merge(input_line_fault(g, 0, false), Fault::output(g, false));
                merge(input_line_fault(g, 0, true), Fault::output(g, true));
            }
            GateKind::Xor | GateKind::Xnor => {}
        }
    }

    let mut class_of = HashMap::with_capacity(universe.len());
    let mut representatives = Vec::new();
    for (i, &f) in universe.iter().enumerate() {
        let root = uf.find(i);
        class_of.insert(f, universe[root]);
        if root == i {
            representatives.push(f);
        }
    }
    sort_faults_by_site(&mut representatives);
    CollapsedFaults { representatives, class_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_universe;
    use bist_netlist::{benchmarks, CircuitBuilder};

    #[test]
    fn s27_collapses_to_32() {
        let c = benchmarks::s27();
        let collapsed = collapse(&c, &fault_universe(&c));
        assert_eq!(collapsed.len(), 32, "the paper's Table 2 enumerates f0..f31");
    }

    #[test]
    fn every_fault_has_a_representative_in_its_own_class() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c);
        let collapsed = collapse(&c, &universe);
        for &f in &universe {
            let rep = collapsed.representative_of(f).expect("in universe");
            assert_eq!(collapsed.representative_of(rep), Some(rep), "rep is fixed point");
        }
        // Representatives are exactly the distinct class values.
        let mut reps: Vec<Fault> = collapsed.class_of.values().copied().collect();
        reps.sort();
        reps.dedup();
        let mut have = collapsed.representatives().to_vec();
        have.sort();
        assert_eq!(reps, have);
    }

    #[test]
    fn representatives_are_site_sorted() {
        let c = benchmarks::s27();
        let collapsed = collapse(&c, &fault_universe(&c));
        let idx: Vec<usize> =
            collapsed.representatives().iter().map(|f| f.site.node().index()).collect();
        assert!(idx.windows(2).all(|w| w[0] <= w[1]), "{idx:?}");
    }

    #[test]
    fn site_order_never_changes_detection_results() {
        // The same representative set in the seed's derived-Ord order and
        // in site order must produce identical per-fault detection times —
        // the reordering is locality-only.
        use crate::FaultSimulator;
        let c = benchmarks::s27();
        let site_ordered = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let mut derived = site_ordered.clone();
        derived.sort();
        assert_ne!(site_ordered, derived, "orders must actually differ for the test to bite");
        let t0: bist_expand::TestSequence =
            "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        for sim in [FaultSimulator::new(&c), FaultSimulator::scalar(&c)] {
            let a = sim.detection_times(&t0, &site_ordered).unwrap();
            let b = sim.detection_times(&t0, &derived).unwrap();
            let by_fault_a: std::collections::HashMap<Fault, Option<usize>> =
                site_ordered.iter().copied().zip(a).collect();
            for (f, t) in derived.iter().zip(b) {
                assert_eq!(by_fault_a[f], t, "{} under {}", f, sim.backend().name());
            }
        }
    }

    #[test]
    fn class_sizes_sum_to_universe() {
        let c = benchmarks::s27();
        let universe = fault_universe(&c);
        let collapsed = collapse(&c, &universe);
        let total: usize = collapsed.class_sizes().values().sum();
        assert_eq!(total, universe.len());
    }

    #[test]
    fn inverter_chain_collapses_transitively() {
        // a -> NOT -> NOT -> y : all stem faults collapse into 2 classes
        // (a s-a-0 ≡ n1 s-a-1 ≡ y s-a-0, and the complementary chain).
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_gate("n1", bist_netlist::GateKind::Not, ["a"]);
        b.add_gate("y", bist_netlist::GateKind::Not, ["n1"]);
        b.add_output("y");
        let c = b.finish().unwrap();
        let collapsed = collapse(&c, &fault_universe(&c));
        assert_eq!(collapsed.len(), 2);
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut b = CircuitBuilder::new("x");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("y", bist_netlist::GateKind::Xor, ["a", "b"]);
        b.add_output("y");
        let c = b.finish().unwrap();
        // 3 nodes × 2 = 6 faults, no equivalences.
        let collapsed = collapse(&c, &fault_universe(&c));
        assert_eq!(collapsed.len(), 6);
    }

    #[test]
    fn dff_boundary_not_collapsed() {
        // a -> BUF -> d -> DFF -> q -> out buffer. The BUF collapses, the
        // DFF does not.
        let mut b = CircuitBuilder::new("dffb");
        b.add_input("a");
        b.add_gate("d", bist_netlist::GateKind::Buf, ["a"]);
        b.add_dff("q", "d");
        b.add_gate("y", bist_netlist::GateKind::Buf, ["q"]);
        b.add_output("y");
        let c = b.finish().unwrap();
        let collapsed = collapse(&c, &fault_universe(&c));
        // Lines: a,d,q,y stems = 8 faults. a≡d (2 merges), q≡y (2 merges),
        // but d NOT≡ q. → 4 classes.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn nand_rule_polarity() {
        let mut b = CircuitBuilder::new("nand");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("y", bist_netlist::GateKind::Nand, ["a", "b"]);
        b.add_output("y");
        let c = b.finish().unwrap();
        let universe = fault_universe(&c);
        let collapsed = collapse(&c, &universe);
        // a s-a-0, b s-a-0, y s-a-1 merge: 6 - 2 = 4 classes.
        assert_eq!(collapsed.len(), 4);
        let a = c.find("a").unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(
            collapsed.representative_of(Fault::output(a, false)),
            collapsed.representative_of(Fault::output(y, true))
        );
    }
}
