//! Pluggable fault-simulation backends.
//!
//! [`SimBackend`] is the engine interface behind
//! [`FaultSimulator`](crate::FaultSimulator): given a circuit, a
//! replayable stream of input vectors and a fault list, produce the first
//! detection time of every fault. Two engines are provided:
//!
//! * [`PackedBackend`] — the production engine: 64 faulty machines per
//!   pass, one per [`PackedValue`] lane, with fault dropping and early
//!   exit. This is the default everywhere.
//! * [`ScalarBackend`] — a deliberately simple reference: one faulty
//!   machine at a time over the scalar [`Logic`](crate::Logic) algebra.
//!   Exists for differential testing of the packed engine and as the
//!   template for future backends (wider bit-parallel words, sharded or
//!   threaded engines) that can slot in without touching any caller.
//!
//! Both consume [`VectorSource`] streams, so the expanded sequences of the
//! paper's scheme are simulated directly from the lazy
//! [`ExpansionIter`](bist_expand::ExpansionIter) — `Sexp` is never
//! materialized on the selection or verification paths.
//! (The fault-free PO trace — `stream length × num_outputs` `Logic`
//! values — is still collected once per call; fusing the good machine
//! into the fault passes is a ROADMAP item.)

use crate::good::stream_machine;
use crate::{eval, Fault, FaultSite, Logic, PackedValue, SimError};
use bist_expand::VectorSource;
use bist_netlist::{Circuit, NodeId, NodeKind};
use std::fmt;
use std::ops::Not;

/// A sequential stuck-at fault-simulation engine.
///
/// Implementations must treat `source` as replayable: it may be streamed
/// once per internal pass. All engines implement the same detection
/// criterion — a fault is detected at time `u` if some primary output is
/// binary in the fault-free machine and the complementary binary value in
/// the faulty machine at `u`, both machines starting from the all-`X`
/// state.
pub trait SimBackend: fmt::Debug + Send + Sync {
    /// Short engine name for reports (e.g. `"packed64"`).
    fn name(&self) -> &'static str;

    /// First detection time of every fault in `faults` under the vector
    /// stream, or `None` if undetected.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] / [`SimError::EmptySequence`].
    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError>;
}

/// Streams the fault-free machine once, collecting the PO trace. Also
/// the input validation point shared by both engines: `stream_machine`
/// rejects width mismatches and empty streams before anything runs.
fn good_po_trace(
    circuit: &Circuit,
    source: &dyn VectorSource,
) -> Result<Vec<Vec<Logic>>, SimError> {
    let mut po = Vec::with_capacity(source.num_vectors());
    stream_machine(circuit, source, None, &mut |_, outs| {
        po.push(outs.to_vec());
        true
    })?;
    Ok(po)
}

// ---------------------------------------------------------------------
// Packed engine (64 faulty machines per pass)
// ---------------------------------------------------------------------

/// Sparse per-chunk fault injection tables, allocated once per simulator
/// run and cleared between chunks.
struct Injector {
    /// Nodes with output (stem) forces in the current chunk.
    out_touched: Vec<usize>,
    out_forces: Vec<Vec<(usize, Logic)>>,
    /// Nodes with input (branch) forces in the current chunk.
    in_touched: Vec<usize>,
    in_forces: Vec<Vec<(u32, usize, Logic)>>,
}

impl Injector {
    fn new(num_nodes: usize) -> Self {
        Injector {
            out_touched: Vec::new(),
            out_forces: vec![Vec::new(); num_nodes],
            in_touched: Vec::new(),
            in_forces: vec![Vec::new(); num_nodes],
        }
    }

    fn clear(&mut self) {
        for &i in &self.out_touched {
            self.out_forces[i].clear();
        }
        for &i in &self.in_touched {
            self.in_forces[i].clear();
        }
        self.out_touched.clear();
        self.in_touched.clear();
    }

    fn load(&mut self, chunk: &[Fault]) {
        self.clear();
        for (lane, fault) in chunk.iter().enumerate() {
            let forced = Logic::from_bool(fault.stuck);
            match fault.site {
                FaultSite::Output(node) => {
                    let i = node.index();
                    if self.out_forces[i].is_empty() {
                        self.out_touched.push(i);
                    }
                    self.out_forces[i].push((lane, forced));
                }
                FaultSite::Input { node, pin } => {
                    let i = node.index();
                    if self.in_forces[i].is_empty() {
                        self.in_touched.push(i);
                    }
                    self.in_forces[i].push((pin, lane, forced));
                }
            }
        }
    }

    #[inline]
    fn force_output(&self, node: usize, mut value: PackedValue) -> PackedValue {
        for &(lane, forced) in &self.out_forces[node] {
            value.set_lane(lane, forced);
        }
        value
    }

    #[inline]
    fn has_input_forces(&self, node: usize) -> bool {
        !self.in_forces[node].is_empty()
    }

    /// Value of `node`'s fanin `pin` as seen by the gate, with branch
    /// forces applied.
    #[inline]
    fn forced_input(&self, node: usize, pin: u32, mut value: PackedValue) -> PackedValue {
        for &(p, lane, forced) in &self.in_forces[node] {
            if p == pin {
                value.set_lane(lane, forced);
            }
        }
        value
    }
}

/// Packed gate evaluation reading straight from the value table
/// (allocation-free fast path).
#[inline]
fn eval_fold(
    values: &[PackedValue],
    fanin: &[NodeId],
    kind: bist_netlist::GateKind,
) -> PackedValue {
    use bist_netlist::GateKind;
    let first = values[fanin[0].index()];
    let rest = fanin[1..].iter().map(|f| values[f.index()]);
    match kind {
        GateKind::Buf => first,
        GateKind::Not => first.not(),
        GateKind::And => rest.fold(first, PackedValue::and),
        GateKind::Nand => rest.fold(first, PackedValue::and).not(),
        GateKind::Or => rest.fold(first, PackedValue::or),
        GateKind::Nor => rest.fold(first, PackedValue::or).not(),
        GateKind::Xor => rest.fold(first, PackedValue::xor),
        GateKind::Xnor => rest.fold(first, PackedValue::xor).not(),
    }
}

/// The production engine: faults are simulated 64 at a time, each lane of
/// a [`PackedValue`] carrying one faulty machine, with the fault-free
/// machine simulated once (scalar) as the comparison reference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedBackend;

impl PackedBackend {
    #[allow(clippy::too_many_arguments)] // engine inner loop, all hot state
    fn run_chunk(
        circuit: &Circuit,
        source: &dyn VectorSource,
        good_po: &[Vec<Logic>],
        chunk: &[Fault],
        times: &mut [Option<usize>],
        injector: &mut Injector,
        values: &mut [PackedValue],
    ) {
        injector.load(chunk);
        values.fill(PackedValue::ALL_X);

        let used: u64 =
            if chunk.len() == PackedValue::LANES { u64::MAX } else { (1u64 << chunk.len()) - 1 };
        let mut undetected = used;
        let mut state = vec![PackedValue::ALL_X; circuit.num_dffs()];
        let mut scratch: Vec<PackedValue> = Vec::new();

        source.visit(&mut |t, vector| {
            // Drive primary inputs (with stem forces: a stuck PI is stuck
            // every cycle).
            for (i, &pi) in circuit.inputs().iter().enumerate() {
                let v = PackedValue::splat(Logic::from_bool(vector.get(i)));
                values[pi.index()] = injector.force_output(pi.index(), v);
            }
            // Present state.
            for (k, &dff) in circuit.dffs().iter().enumerate() {
                values[dff.index()] = injector.force_output(dff.index(), state[k]);
            }
            // Combinational sweep.
            for &g in circuit.eval_order() {
                let node = circuit.node(g);
                let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
                let gi = g.index();
                let v = if injector.has_input_forces(gi) {
                    scratch.clear();
                    for (pin, &f) in node.fanin().iter().enumerate() {
                        scratch.push(injector.forced_input(gi, pin as u32, values[f.index()]));
                    }
                    eval::eval_gate(*kind, &scratch)
                } else {
                    eval_fold(values, node.fanin(), *kind)
                };
                values[gi] = injector.force_output(gi, v);
            }
            // Compare primary outputs against the good machine.
            for (oi, &o) in circuit.outputs().iter().enumerate() {
                let diff = match good_po[t][oi] {
                    Logic::One => values[o.index()].zeros,
                    Logic::Zero => values[o.index()].ones,
                    Logic::X => continue,
                };
                let newly = diff & undetected;
                if newly != 0 {
                    let mut bits = newly;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        times[lane] = Some(t);
                        bits &= bits - 1;
                    }
                    undetected &= !newly;
                }
            }
            if undetected == 0 {
                return false;
            }
            // Clock: latch next state (with D-pin branch forces).
            for (k, &dff) in circuit.dffs().iter().enumerate() {
                let di = dff.index();
                let src = circuit.node(dff).fanin()[0];
                let mut v = values[src.index()];
                if injector.has_input_forces(di) {
                    v = injector.forced_input(di, 0, v);
                }
                state[k] = v;
            }
            true
        });
    }
}

impl SimBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed64"
    }

    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        let good_po = good_po_trace(circuit, source)?;
        let mut times = vec![None; faults.len()];
        let mut injector = Injector::new(circuit.num_nodes());
        let mut values = vec![PackedValue::ALL_X; circuit.num_nodes()];
        for (ci, chunk) in faults.chunks(PackedValue::LANES).enumerate() {
            Self::run_chunk(
                circuit,
                source,
                &good_po,
                chunk,
                &mut times[ci * PackedValue::LANES..ci * PackedValue::LANES + chunk.len()],
                &mut injector,
                &mut values,
            );
        }
        Ok(times)
    }
}

// ---------------------------------------------------------------------
// Scalar reference engine
// ---------------------------------------------------------------------

/// The reference engine: one faulty machine at a time over the scalar
/// three-valued algebra. Roughly 64× slower than [`PackedBackend`] on
/// large fault lists; exists for differential testing and as the simplest
/// possible template for new backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl SimBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        let good_po = good_po_trace(circuit, source)?;
        let mut times = vec![None; faults.len()];
        for (slot, &fault) in times.iter_mut().zip(faults) {
            let mut first = None;
            stream_machine(circuit, source, Some(fault), &mut |t, outs| {
                let observable = good_po[t]
                    .iter()
                    .zip(outs)
                    .any(|(g, b)| g.is_binary() && b.is_binary() && g != b);
                if observable {
                    first = Some(t);
                    return false;
                }
                true
            })?;
            *slot = first;
        }
        Ok(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe};
    use bist_expand::expansion::{Expand, ExpansionConfig};
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    fn table2_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    #[test]
    fn scalar_matches_packed_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let packed = PackedBackend.detection_times(&c, &t0, &faults).unwrap();
        let scalar = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        assert_eq!(packed, scalar);
        assert_eq!(packed.iter().filter(|t| t.is_some()).count(), 32);
    }

    #[test]
    fn backends_agree_on_streamed_expansion() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let s: TestSequence = "1011 0100".parse().unwrap();
        let cfg = ExpansionConfig::new(2).unwrap();
        let stream = cfg.stream(&s);
        let packed = PackedBackend.detection_times(&c, &stream, &faults).unwrap();
        let scalar = ScalarBackend.detection_times(&c, &stream, &faults).unwrap();
        assert_eq!(packed, scalar);
        // And both equal simulating the materialized expansion.
        let materialized = cfg.expand(&s);
        let reference = PackedBackend.detection_times(&c, &materialized, &faults).unwrap();
        assert_eq!(packed, reference);
    }

    #[test]
    fn validation_shared_by_backends() {
        let c = benchmarks::s27();
        let bad: TestSequence = "000".parse().unwrap();
        for backend in [&PackedBackend as &dyn SimBackend, &ScalarBackend] {
            assert!(matches!(
                backend.detection_times(&c, &bad, &[]),
                Err(SimError::WidthMismatch { .. })
            ));
        }
    }

    #[test]
    fn names_differ() {
        assert_ne!(PackedBackend.name(), ScalarBackend.name());
    }
}
