//! Pluggable fault-simulation backends over the compiled gate tape.
//!
//! [`SimBackend`] is the engine interface behind
//! [`FaultSimulator`](crate::FaultSimulator): given a circuit — in its
//! compiled [`GateTape`] form — a replayable stream of input vectors and
//! a fault list, produce the first detection time of every fault. Three
//! engines are provided:
//!
//! * [`PackedBackend`] — the single-threaded production engine: 63 faulty
//!   machines per pass, one per [`PackedValue`] lane, with the good
//!   machine fused into the last lane, fault dropping and early exit.
//! * [`ShardedBackend`] — the scaled engine: the fault list is split into
//!   contiguous shards across OS threads (scoped threads, no runtime
//!   dependencies), and each shard runs the same chunked pass at a
//!   configurable [`WordWidth`] — 64, 256 or 512 machines per word — and
//!   a configurable [`StateLayout`]: the default interleaved
//!   array-of-words layout whose generic chunk pass lives in this module
//!   (its `[u64; N]` plane loops autovectorize, so one pass can advance
//!   255 or 511 faulty machines) or the blocked bit-plane layout of
//!   [`crate::planes`] for hosts where the wide value table outruns the
//!   cache.
//! * [`ScalarBackend`] — a deliberately simple reference: one faulty
//!   machine at a time over the scalar [`Logic`](crate::Logic) algebra,
//!   run in lockstep with its own fault-free machine. Exists for
//!   differential testing of the packed engines. (The even simpler
//!   node-graph oracle that bypasses the tape entirely lives in
//!   [`crate::reference`].)
//!
//! Every engine *executes the tape*, never the node graph: the inner loop
//! reads byte opcodes, CSR fanin indices and pre-resolved PI/DFF/PO
//! tables from contiguous arrays — no `Node` dereferences, no per-gate
//! heap hops. The tape's levelized, kind-sorted
//! [`GateRun`](bist_netlist::GateRun)s let the
//! sweep dispatch on the opcode once per run instead of once per gate,
//! and the injector translates each chunk's forces into a sorted list of
//! tape patch points, so the segments between them evaluate in tight
//! loops with **zero** per-gate force checks or branches (forces on
//! PI/DFF nodes stay as bitmap tests in the short source-driving loops).
//! Each shard owns one reusable scratch block (value table, state, pin
//! buffer, injector tables), so a chunked pass allocates nothing.
//!
//! All engines fuse the good machine into the fault passes: the packed
//! engines reserve the top lane of every word for the fault-free machine
//! and the scalar engine streams a good/faulty pair, so the fault-free
//! primary-output trace is **never** collected up front and detection is
//! O(1) in stream length. A chunk pass also terminates the stream walk
//! the moment its last undetected fault falls: detection times are
//! first-detections, so the tail of the stream is pure waste for a fully
//! detected chunk. Combined with the lazy
//! [`ExpansionIter`](bist_expand::ExpansionIter) this keeps the whole
//! `8·n·|S|`-vector pipeline allocation-flat.
//!
//! Every engine validates its inputs at the boundary — width mismatches,
//! empty streams and oversized fault chunks surface as typed
//! [`SimError`]s rather than panics deep inside the engine.

use crate::good::{stream_machine_fused_tape, validate_width};
use crate::packed::{LaneMask, PackedWord};
use crate::{Fault, FaultSite, Logic, PackedValue, PackedValue256, PackedValue512, SimError};
use bist_expand::VectorSource;
use bist_netlist::{Circuit, GateKind, GateTape, RunArity};
use bist_obs::{CancelKind, CancelToken, CounterHandle, HistogramHandle, Obs};
use std::fmt;
use std::time::Instant;

/// `forced_gates` flag: some fanin pin of the gate carries a branch force.
pub(crate) const IN_FORCE: u8 = 1;
/// `forced_gates` flag: the gate's output carries a stem force.
pub(crate) const OUT_FORCE: u8 = 2;

/// A sequential stuck-at fault-simulation engine.
///
/// Implementations must treat `source` as replayable: it may be streamed
/// once per internal pass. All engines implement the same detection
/// criterion — a fault is detected at time `u` if some primary output is
/// binary in the fault-free machine and the complementary binary value in
/// the faulty machine at `u`, both machines starting from the all-`X`
/// state.
pub trait SimBackend: fmt::Debug + Send + Sync {
    /// Short engine name for reports (e.g. `"packed64"`).
    fn name(&self) -> &'static str;

    /// First detection time of every fault in `faults` under the vector
    /// stream, executing a caller-compiled [`GateTape`] — the hot path.
    /// Callers that simulate the same circuit repeatedly (the
    /// [`FaultSimulator`](crate::FaultSimulator) facade, sessions,
    /// campaigns) compile once and pass the shared tape here.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] / [`SimError::EmptySequence`] for bad
    /// streams; [`SimError::LaneOutOfRange`] / [`SimError::ZeroThreads`]
    /// for invalid engine configurations.
    fn detection_times_tape(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError>;

    /// Convenience wrapper over
    /// [`detection_times_tape`](Self::detection_times_tape) that compiles
    /// the tape on the fly — fine for one-shot calls; repeated callers
    /// should compile once.
    ///
    /// # Errors
    ///
    /// As for [`detection_times_tape`](Self::detection_times_tape).
    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        self.detection_times_tape(&GateTape::compile(circuit), source, faults)
    }

    /// [`detection_times_tape`](Self::detection_times_tape) with a
    /// telemetry sink: engines that support sweep-level counters
    /// (vectors simulated, chunk early-exits, tape patches applied,
    /// per-shard busy time) record them into `obs`. Results are
    /// **bit-identical** to the uninstrumented call — telemetry is
    /// observation-only. The default implementation ignores `obs`, so
    /// third-party backends keep working unchanged.
    ///
    /// # Errors
    ///
    /// As for [`detection_times_tape`](Self::detection_times_tape).
    fn detection_times_tape_obs(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
        obs: &Obs,
    ) -> Result<Vec<Option<usize>>, SimError> {
        let _ = obs;
        self.detection_times_tape(tape, source, faults)
    }
}

// ---------------------------------------------------------------------
// Sweep telemetry
// ---------------------------------------------------------------------

/// Per-shard sweep tallies, kept as plain locals on the hot path (one
/// integer add per vector/chunk) and merged into the sink once per
/// shard — the no-op sink then costs nothing but those adds.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SweepStats {
    /// Vector steps simulated, summed over chunk passes.
    pub vectors: u64,
    /// Chunk passes run.
    pub chunks: u64,
    /// Chunk passes that exited before exhausting the stream.
    pub early_exits: u64,
    /// Injector patch points applied, summed over chunk passes.
    pub patches: u64,
}

/// Pre-resolved sweep metric handles shared by every engine. Built once
/// per `detection_times_tape_obs` call; inactive handles are `None`
/// branches, so the `detect/tape/*` bench path pays no name lookups and
/// no clock reads.
#[derive(Debug, Clone, Default)]
pub(crate) struct SweepObs {
    active: bool,
    cancel: Option<CancelToken>,
    vectors: CounterHandle,
    chunks: CounterHandle,
    early_exits: CounterHandle,
    patches: CounterHandle,
    shard_busy: HistogramHandle,
}

impl SweepObs {
    pub(crate) fn new(obs: &Obs) -> Self {
        SweepObs {
            active: obs.is_active(),
            cancel: obs.cancel_token().cloned(),
            vectors: obs.counter("sim.vectors"),
            chunks: obs.counter("sim.chunks"),
            early_exits: obs.counter("sim.chunk_early_exits"),
            patches: obs.counter("sim.tape_patches"),
            shard_busy: obs.histogram("sim.shard_busy_us"),
        }
    }

    /// Whether flushing will record anything (gates the clock reads).
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Cooperative cancellation point, polled once per fault chunk (a
    /// `None` branch when no token rides the sweep). A cancelled token
    /// aborts the sweep with [`SimError::Cancelled`] so a timed-out job
    /// releases its worker instead of finishing a doomed pass.
    pub(crate) fn check_cancelled(&self) -> Result<(), SimError> {
        match &self.cancel {
            None => Ok(()),
            Some(token) => match token.kind() {
                None => Ok(()),
                Some(kind) => Err(SimError::Cancelled {
                    deadline_expired: kind == CancelKind::DeadlineExpired,
                }),
            },
        }
    }

    /// Merges one shard's tallies and busy time into the sink.
    pub(crate) fn flush(&self, stats: &SweepStats, busy_us: u64) {
        self.vectors.add(stats.vectors);
        self.chunks.add(stats.chunks);
        self.early_exits.add(stats.early_exits);
        self.patches.add(stats.patches);
        self.shard_busy.record(busy_us);
    }
}

/// Microseconds since `start`, saturating.
pub(crate) fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Generic chunked engine (any PackedWord width, fused good machine)
// ---------------------------------------------------------------------

/// A per-node bit set over the value table — the injector's O(1) "does
/// this node carry any force?" lookup, one bit per node instead of one
/// `Vec` header dereference per gate.
struct NodeBitmap {
    words: Vec<u64>,
}

impl NodeBitmap {
    fn new(num_nodes: usize) -> Self {
        NodeBitmap { words: vec![0; num_nodes.div_ceil(64).max(1)] }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    fn unset(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }
}

/// Sparse per-chunk fault injection tables, allocated once per shard and
/// cleared between chunks. The touched-node bitmaps give the source
/// (PI/DFF) loops single-bit force checks; `forced_gates` gives the
/// combinational sweep its patch points as sorted tape positions, so the
/// segments between them evaluate with **no** force checks at all. Lane
/// indices are validated against the word width at
/// [`load`](Injector::load) time, so an oversized chunk surfaces a typed
/// error instead of panicking inside `set_lane`.
pub(crate) struct Injector {
    /// Nodes with output (stem) forces in the current chunk.
    out_touched: Vec<usize>,
    out_forces: Vec<Vec<(usize, Logic)>>,
    out_bits: NodeBitmap,
    /// Nodes with input (branch) forces in the current chunk.
    in_touched: Vec<usize>,
    in_forces: Vec<Vec<(u32, usize, Logic)>>,
    in_bits: NodeBitmap,
    /// Tape positions of gates needing the checked per-gate path this
    /// chunk, sorted ascending, flagged [`IN_FORCE`] / [`OUT_FORCE`].
    /// Forces on PI/DFF nodes are not gates and stay bitmap-only.
    pub(crate) forced_gates: Vec<(u32, u8)>,
}

impl Injector {
    pub(crate) fn new(num_nodes: usize) -> Self {
        Injector {
            out_touched: Vec::new(),
            out_forces: vec![Vec::new(); num_nodes],
            out_bits: NodeBitmap::new(num_nodes),
            in_touched: Vec::new(),
            in_forces: vec![Vec::new(); num_nodes],
            in_bits: NodeBitmap::new(num_nodes),
            forced_gates: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &i in &self.out_touched {
            self.out_forces[i].clear();
            self.out_bits.unset(i);
        }
        for &i in &self.in_touched {
            self.in_forces[i].clear();
            self.in_bits.unset(i);
        }
        self.out_touched.clear();
        self.in_touched.clear();
        self.forced_gates.clear();
    }

    /// Loads one chunk of faults, one lane each. `fault_lanes` is the
    /// engine's per-pass capacity (word width minus the good-machine
    /// lane).
    pub(crate) fn load(
        &mut self,
        tape: &GateTape,
        chunk: &[Fault],
        fault_lanes: usize,
    ) -> Result<(), SimError> {
        if chunk.len() > fault_lanes {
            return Err(SimError::LaneOutOfRange { lane: chunk.len() - 1, lanes: fault_lanes });
        }
        self.clear();
        for (lane, fault) in chunk.iter().enumerate() {
            let forced = Logic::from_bool(fault.stuck);
            match fault.site {
                FaultSite::Output(node) => {
                    let i = node.index();
                    if self.out_forces[i].is_empty() {
                        self.out_touched.push(i);
                        self.out_bits.set(i);
                        if let Some(pos) = tape.gate_pos(i) {
                            self.forced_gates.push((pos as u32, OUT_FORCE));
                        }
                    }
                    self.out_forces[i].push((lane, forced));
                }
                FaultSite::Input { node, pin } => {
                    let i = node.index();
                    if self.in_forces[i].is_empty() {
                        self.in_touched.push(i);
                        self.in_bits.set(i);
                        if let Some(pos) = tape.gate_pos(i) {
                            self.forced_gates.push((pos as u32, IN_FORCE));
                        }
                    }
                    self.in_forces[i].push((pin, lane, forced));
                }
            }
        }
        self.forced_gates.sort_unstable_by_key(|&(pos, _)| pos);
        self.forced_gates.dedup_by(|cur, kept| {
            if cur.0 == kept.0 {
                kept.1 |= cur.1;
                true
            } else {
                false
            }
        });
        // Engines merge patch points against the tape in one forward
        // sweep — strict ascent (sorted + deduped) is load-bearing.
        debug_assert!(
            self.forced_gates.windows(2).all(|w| w[0].0 < w[1].0),
            "injector patch points must be strictly ascending"
        );
        Ok(())
    }

    /// Single-bit test: does `node` carry a stem force this chunk?
    #[inline]
    pub(crate) fn output_forced(&self, node: usize) -> bool {
        self.out_bits.get(node)
    }

    /// Single-bit test: does any fanin pin of `node` carry a branch force
    /// this chunk?
    #[inline]
    pub(crate) fn input_forced(&self, node: usize) -> bool {
        self.in_bits.get(node)
    }

    #[inline]
    fn force_output<W: PackedWord>(&self, node: usize, mut value: W) -> W {
        for &(lane, forced) in &self.out_forces[node] {
            value.set_lane(lane, forced);
        }
        value
    }

    /// Value of `node`'s fanin `pin` as seen by the gate, with branch
    /// forces applied.
    #[inline]
    fn forced_input<W: PackedWord>(&self, node: usize, pin: u32, mut value: W) -> W {
        for &(p, lane, forced) in &self.in_forces[node] {
            if p == pin {
                value.set_lane(lane, forced);
            }
        }
        value
    }

    /// Plane-filtered [`force_output`](Self::force_output) for the
    /// bit-plane engines: applies only the stem forces whose lane lives
    /// in plane word `p` (lane `l` → plane `l / 64`, bit `l % 64`).
    #[inline]
    pub(crate) fn force_output_in_plane(
        &self,
        node: usize,
        p: usize,
        mut value: PackedValue,
    ) -> PackedValue {
        for &(lane, forced) in &self.out_forces[node] {
            if lane >> 6 == p {
                value.set_lane(lane & 63, forced);
            }
        }
        value
    }

    /// Plane-filtered [`forced_input`](Self::forced_input).
    #[inline]
    pub(crate) fn forced_input_in_plane(
        &self,
        node: usize,
        pin: u32,
        p: usize,
        mut value: PackedValue,
    ) -> PackedValue {
        for &(pp, lane, forced) in &self.in_forces[node] {
            if pp == pin && lane >> 6 == p {
                value.set_lane(lane & 63, forced);
            }
        }
        value
    }
}

/// Two-operand packed gate evaluation — the fast path for the dominant
/// `.bench` gate arity, with no iterator machinery. Agrees with
/// [`eval_gate_fold`](crate::eval::eval_gate_fold) on every kind
/// (including the arity-1 kinds, which a validated netlist never pairs
/// with two fanins).
#[inline]
pub(crate) fn eval2<W: PackedWord>(kind: GateKind, a: W, b: W) -> W {
    match kind {
        GateKind::And => a.and(b),
        GateKind::Nand => W::not(a.and(b)),
        GateKind::Or => a.or(b),
        GateKind::Nor => W::not(a.or(b)),
        GateKind::Xor => a.xor(b),
        GateKind::Xnor => W::not(a.xor(b)),
        GateKind::Buf => a,
        GateKind::Not => W::not(a),
    }
}

/// The branch-free two-input loop: `outs[i] = op(pairs[2i], pairs[2i+1])`.
/// Monomorphized per `op`, so the gate function is inlined straight into
/// the loop body — no per-gate dispatch of any kind.
#[inline]
fn eval2_run<W: PackedWord>(values: &mut [W], outs: &[u32], pairs: &[u32], op: impl Fn(W, W) -> W) {
    for (&o, p) in outs.iter().zip(pairs.chunks_exact(2)) {
        values[o as usize] = op(values[p[0] as usize], values[p[1] as usize]);
    }
}

/// Evaluates tape positions `[g0, g1)` — a slice of one homogeneous
/// [`GateRun`] — with no force checks: the opcode and arity dispatch
/// happen once here, then the whole segment runs in a tight loop. This
/// is the engines' hot loop; everything it reads is a contiguous array.
#[inline]
fn eval_segment<W: PackedWord>(
    tape: &GateTape,
    kind: GateKind,
    arity: RunArity,
    g0: usize,
    g1: usize,
    values: &mut [W],
) {
    let outs = &tape.gate_out()[g0..g1];
    let starts = tape.fanin_start();
    let s0 = starts[g0] as usize;
    match arity {
        RunArity::Two => {
            let pairs = &tape.fanin()[s0..s0 + 2 * outs.len()];
            match kind {
                GateKind::And => eval2_run(values, outs, pairs, super::packed::PackedWord::and),
                GateKind::Nand => eval2_run(values, outs, pairs, |a, b| W::not(a.and(b))),
                GateKind::Or => eval2_run(values, outs, pairs, super::packed::PackedWord::or),
                GateKind::Nor => eval2_run(values, outs, pairs, |a, b| W::not(a.or(b))),
                GateKind::Xor => eval2_run(values, outs, pairs, super::packed::PackedWord::xor),
                GateKind::Xnor => eval2_run(values, outs, pairs, |a, b| W::not(a.xor(b))),
                // A validated netlist never gives BUF/NOT two fanins;
                // agree with `eval_gate_fold` (ignore the extra) anyway.
                GateKind::Buf => eval2_run(values, outs, pairs, |a, _| a),
                GateKind::Not => eval2_run(values, outs, pairs, |a, _| W::not(a)),
            }
        }
        RunArity::One => {
            let srcs = &tape.fanin()[s0..s0 + outs.len()];
            // The arity-1 fold of every kind is either pass-through or
            // complement (`eval_gate_fold` with an empty rest).
            if kind.is_inverting() {
                for (&o, &f) in outs.iter().zip(srcs) {
                    values[o as usize] = W::not(values[f as usize]);
                }
            } else {
                for (&o, &f) in outs.iter().zip(srcs) {
                    values[o as usize] = values[f as usize];
                }
            }
        }
        RunArity::Many => {
            let fanin = tape.fanin();
            for g in g0..g1 {
                let s = starts[g] as usize;
                let e = starts[g + 1] as usize;
                values[outs[g - g0] as usize] = crate::eval::eval_gate_fold(
                    kind,
                    values[fanin[s] as usize],
                    fanin[s + 1..e].iter().map(|&f| values[f as usize]),
                );
            }
        }
    }
}

/// One shard's reusable simulation state: injector tables, the packed
/// value table, the flip-flop state and the forced-pin staging buffer.
/// Allocated once per shard and reused across every chunk it runs — a
/// chunk pass performs no heap allocation.
struct ShardScratch<W: PackedWord> {
    injector: Injector,
    values: Vec<W>,
    state: Vec<W>,
    pins: Vec<W>,
}

impl<W: PackedWord> ShardScratch<W> {
    fn new(tape: &GateTape) -> Self {
        ShardScratch {
            injector: Injector::new(tape.num_nodes()),
            values: vec![W::ALL_X; tape.num_nodes()],
            state: vec![W::ALL_X; tape.num_dffs()],
            pins: Vec::new(),
        }
    }
}

/// One pass over the stream with up to `W::LANES - 1` faulty machines in
/// the low lanes and the fault-free machine fused into the top lane. The
/// good machine sees no forces (the injector never loads its lane), so
/// each output word carries the reference value and all faulty values of
/// that output in the same pass — no precollected PO trace. The walk
/// stops at the vector that detects the chunk's last undetected fault.
fn run_chunk<W: PackedWord>(
    tape: &GateTape,
    source: &dyn VectorSource,
    chunk: &[Fault],
    times: &mut [Option<usize>],
    scratch: &mut ShardScratch<W>,
    stats: &mut SweepStats,
) -> Result<(), SimError> {
    let good_lane = W::LANES - 1;
    scratch.injector.load(tape, chunk, good_lane)?;
    scratch.values.fill(W::ALL_X);
    scratch.state.fill(W::ALL_X);
    let ShardScratch { injector, values, state, pins } = scratch;
    stats.chunks += 1;
    stats.patches += injector.forced_gates.len() as u64;
    let mut vectors = 0u64;
    let mut early_exit = false;

    let mut undetected = W::Mask::first_n(chunk.len());

    let gate_out = tape.gate_out();
    let starts = tape.fanin_start();
    let fanin = tape.fanin();

    source.visit(&mut |t, vector| {
        vectors += 1;
        // Drive primary inputs (with stem forces: a stuck PI is stuck
        // every cycle).
        for (i, &pi) in tape.inputs().iter().enumerate() {
            let pi = pi as usize;
            let v = W::splat(Logic::from_bool(vector.get(i)));
            values[pi] = if injector.output_forced(pi) { injector.force_output(pi, v) } else { v };
        }
        // Present state.
        for (k, &dff) in tape.dffs().iter().enumerate() {
            let dff = dff as usize;
            let v = state[k];
            values[dff] =
                if injector.output_forced(dff) { injector.force_output(dff, v) } else { v };
        }
        // Combinational sweep, run by run. The sorted forced-gate list
        // splits each run into segments that evaluate with zero per-gate
        // force checks; only the (at most `chunk.len()`) patch points
        // take the checked path.
        let forced = &injector.forced_gates;
        let mut fi = 0usize;
        for run in tape.runs() {
            let (mut g, end) = (run.start as usize, run.end as usize);
            while g < end {
                while fi < forced.len() && (forced[fi].0 as usize) < g {
                    fi += 1;
                }
                let stop = match forced.get(fi) {
                    Some(&(pos, _)) => (pos as usize).min(end),
                    None => end,
                };
                if g < stop {
                    eval_segment(tape, run.kind, run.arity, g, stop, values);
                    g = stop;
                }
                if g < end {
                    let Some(&(pos, flags)) = forced.get(fi) else { unreachable!() };
                    debug_assert_eq!(pos as usize, g);
                    let out = gate_out[g] as usize;
                    let s = starts[g] as usize;
                    let e = starts[g + 1] as usize;
                    let v = if flags & IN_FORCE != 0 {
                        pins.clear();
                        for (p, &f) in fanin[s..e].iter().enumerate() {
                            pins.push(injector.forced_input(out, p as u32, values[f as usize]));
                        }
                        crate::eval::eval_gate(run.kind, pins)
                    } else if e - s == 2 {
                        eval2(run.kind, values[fanin[s] as usize], values[fanin[s + 1] as usize])
                    } else {
                        crate::eval::eval_gate_fold(
                            run.kind,
                            values[fanin[s] as usize],
                            fanin[s + 1..e].iter().map(|&f| values[f as usize]),
                        )
                    };
                    values[out] =
                        if flags & OUT_FORCE != 0 { injector.force_output(out, v) } else { v };
                    g += 1;
                    fi += 1;
                }
            }
        }
        // Compare the faulty lanes against the fused good lane.
        for &o in tape.outputs() {
            let w = values[o as usize];
            let diff = match w.lane(good_lane) {
                Logic::One => w.zeros_mask(),
                Logic::Zero => w.ones_mask(),
                Logic::X => continue,
            };
            let newly = diff.intersect(undetected);
            if !newly.is_empty() {
                newly.for_each_lane(|lane| times[lane] = Some(t));
                undetected = undetected.subtract(newly);
            }
        }
        // Chunk early-exit: every fault has its first detection; the rest
        // of the stream cannot change any result.
        if undetected.is_empty() {
            early_exit = true;
            return false;
        }
        // Clock: latch next state (with D-pin branch forces).
        for (k, (&dff, &src)) in tape.dffs().iter().zip(tape.dff_src()).enumerate() {
            let di = dff as usize;
            let mut v = values[src as usize];
            if injector.input_forced(di) {
                v = injector.forced_input(di, 0, v);
            }
            state[k] = v;
        }
        true
    });
    stats.vectors += vectors;
    stats.early_exits += u64::from(early_exit);
    Ok(())
}

/// Runs one contiguous shard of the fault list through chunked passes of
/// `W::LANES - 1` faults each, reusing one scratch block throughout.
fn run_shard<W: PackedWord>(
    tape: &GateTape,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
    sweep: &SweepObs,
) -> Result<(), SimError> {
    let per_chunk = W::LANES - 1;
    let start = sweep.is_active().then(Instant::now);
    let mut stats = SweepStats::default();
    let mut scratch = ShardScratch::<W>::new(tape);
    for (chunk, slots) in faults.chunks(per_chunk).zip(times.chunks_mut(per_chunk)) {
        sweep.check_cancelled()?;
        run_chunk::<W>(tape, source, chunk, slots, &mut scratch, &mut stats)?;
    }
    if let Some(start) = start {
        sweep.flush(&stats, elapsed_us(start));
    }
    Ok(())
}

/// Splits the fault list across `threads` scoped OS threads, each running
/// `run_shard` on its own contiguous slice of faults and result slots.
/// Shard boundaries are rounded to whole chunks so no pass is wasted on a
/// partial word mid-list. Shared by both state layouts — the layout only
/// decides what `run_shard` does inside one shard.
pub(crate) fn shard_across_threads<F>(
    faults: &[Fault],
    times: &mut [Option<usize>],
    threads: usize,
    per_chunk: usize,
    run_shard: F,
) -> Result<(), SimError>
where
    F: Fn(&[Fault], &mut [Option<usize>]) -> Result<(), SimError> + Sync,
{
    let shard = faults.len().div_ceil(threads).div_ceil(per_chunk).max(1) * per_chunk;
    if threads == 1 || faults.len() <= shard {
        return run_shard(faults, times);
    }
    std::thread::scope(|scope| {
        let run_shard = &run_shard;
        let handles: Vec<_> = faults
            .chunks(shard)
            .zip(times.chunks_mut(shard))
            .map(|(chunk, slots)| scope.spawn(move || run_shard(chunk, slots)))
            .collect();
        for handle in handles {
            handle.join().expect("shard thread panicked")?;
        }
        Ok(())
    })
}

/// [`shard_across_threads`] over the interleaved array-of-words engine.
fn run_sharded<W: PackedWord>(
    tape: &GateTape,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
    threads: usize,
    sweep: &SweepObs,
) -> Result<(), SimError> {
    shard_across_threads(faults, times, threads, W::LANES - 1, |chunk, slots| {
        run_shard::<W>(tape, source, chunk, slots, sweep)
    })
}

// ---------------------------------------------------------------------
// Packed engine (63 faulty machines + fused good machine per pass)
// ---------------------------------------------------------------------

/// The single-threaded production engine: faults are simulated 63 at a
/// time, each low lane of a [`PackedValue`] carrying one faulty machine
/// and the top lane the fused fault-free machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedBackend;

impl SimBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed64"
    }

    fn detection_times_tape(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        self.detection_times_tape_obs(tape, source, faults, &Obs::noop())
    }

    fn detection_times_tape_obs(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
        obs: &Obs,
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_width(tape.num_inputs(), source)?;
        let sweep = SweepObs::new(obs);
        let mut times = vec![None; faults.len()];
        run_shard::<PackedValue>(tape, source, faults, &mut times, &sweep)?;
        Ok(times)
    }
}

// ---------------------------------------------------------------------
// Sharded wide-word engine
// ---------------------------------------------------------------------

/// The packed word width a [`ShardedBackend`] simulates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordWidth {
    /// 64 lanes ([`PackedValue`]): 63 faults + good machine per pass.
    W64,
    /// 256 lanes ([`PackedValue256`]): 255 faults + good machine per pass.
    #[default]
    W256,
    /// 512 lanes ([`PackedValue512`]): 511 faults + good machine per pass.
    W512,
}

/// How a packed engine lays out its simulation state in memory. Both
/// layouts are bit-identical in results (pinned by the differential and
/// randomized-fuzz suites); they differ only in how the value table maps
/// onto the cache hierarchy, so which one is faster is a property of the
/// host. The `state_layout/*` group of `BENCH_fault_sim.json` records
/// the A/B for the build host; on hosts whose wide registers and last-
/// level cache favor the interleaved loops (AVX-512 with a large LLC,
/// like the current build host) [`Interleaved`] wins, while
/// [`BitPlanes`] targets hosts where the `16·N`-bytes-per-slot value
/// table outruns the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StateLayout {
    /// Array of words: one `PackedVec<N>` (all `2·N` plane words of a
    /// signal, interleaved) per gate slot. Its element-wise `[u64; N]`
    /// gate loops autovectorize (AVX2/AVX-512 under
    /// `target-cpu=native`), so one instruction advances 4–8 plane
    /// words. The production default.
    #[default]
    Interleaved,
    /// Structure of bit planes with blocked tape sweeps: `2·N`
    /// contiguous `u64` rows indexed `[plane][gate_slot]`, swept one
    /// plane at a time over the tape's cache-sized
    /// [`tiles`](GateTape::tiles) so a sweep's working set is two rows
    /// (`16 · nodes` bytes) instead of the whole table.
    BitPlanes,
}

impl WordWidth {
    /// Number of lanes of this width.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            WordWidth::W64 => 64,
            WordWidth::W256 => 256,
            WordWidth::W512 => 512,
        }
    }

    /// The width with exactly `lanes` lanes, if one exists.
    #[must_use]
    pub fn from_lanes(lanes: usize) -> Option<Self> {
        match lanes {
            64 => Some(WordWidth::W64),
            256 => Some(WordWidth::W256),
            512 => Some(WordWidth::W512),
            _ => None,
        }
    }
}

/// The scaled engine: fault-list sharding across OS threads × wide-word
/// lane packing, behind the same [`SimBackend`] trait.
///
/// Each thread owns a contiguous shard of the collapsed fault list and
/// runs the chunked fused-good-machine pass at the configured
/// [`WordWidth`]. Threads share nothing but the compiled tape and the
/// replayable stream, so results are deterministic and bit-identical to
/// [`ScalarBackend`] at any `threads`/`width` combination.
///
/// # Example
///
/// ```
/// use bist_expand::TestSequence;
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe, ShardedBackend, SimBackend, WordWidth};
///
/// let c = benchmarks::s27();
/// let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
/// let t0: TestSequence =
///     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
/// let engine = ShardedBackend::new(2, WordWidth::W256)?;
/// let times = engine.detection_times(&c, &t0, &faults)?;
/// assert_eq!(times.iter().filter(|t| t.is_some()).count(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedBackend {
    threads: usize,
    width: WordWidth,
    layout: StateLayout,
}

impl ShardedBackend {
    /// Creates an engine with `threads` worker threads at `width` lanes
    /// per word, using the default [`StateLayout`].
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroThreads`] if `threads == 0`.
    pub fn new(threads: usize, width: WordWidth) -> Result<Self, SimError> {
        ShardedBackend::with_layout(threads, width, StateLayout::default())
    }

    /// Creates an engine with an explicit state layout — the A/B switch
    /// behind the `state_layout` benchmark group.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroThreads`] if `threads == 0`.
    pub fn with_layout(
        threads: usize,
        width: WordWidth,
        layout: StateLayout,
    ) -> Result<Self, SimError> {
        if threads == 0 {
            return Err(SimError::ZeroThreads);
        }
        Ok(ShardedBackend { threads, width, layout })
    }

    /// An engine sized to the host: one thread per available core at the
    /// default 256-lane width and default state layout.
    #[must_use]
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ShardedBackend { threads, width: WordWidth::default(), layout: StateLayout::default() }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured word width.
    #[must_use]
    pub fn width(&self) -> WordWidth {
        self.width
    }

    /// The configured state layout.
    #[must_use]
    pub fn layout(&self) -> StateLayout {
        self.layout
    }
}

impl Default for ShardedBackend {
    fn default() -> Self {
        ShardedBackend::auto()
    }
}

impl SimBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        match (self.layout, self.width) {
            (StateLayout::Interleaved, WordWidth::W64) => "sharded64",
            (StateLayout::Interleaved, WordWidth::W256) => "sharded256",
            (StateLayout::Interleaved, WordWidth::W512) => "sharded512",
            (StateLayout::BitPlanes, WordWidth::W64) => "sharded64_planes",
            (StateLayout::BitPlanes, WordWidth::W256) => "sharded256_planes",
            (StateLayout::BitPlanes, WordWidth::W512) => "sharded512_planes",
        }
    }

    fn detection_times_tape(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        self.detection_times_tape_obs(tape, source, faults, &Obs::noop())
    }

    fn detection_times_tape_obs(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
        obs: &Obs,
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_width(tape.num_inputs(), source)?;
        // threads >= 1 is a construction invariant of every constructor.
        debug_assert!(self.threads >= 1);
        let sweep = SweepObs::new(obs);
        let mut times = vec![None; faults.len()];
        use crate::planes::run_sharded_planes;
        match (self.layout, self.width) {
            (StateLayout::BitPlanes, WordWidth::W64) => {
                run_sharded_planes::<1>(tape, source, faults, &mut times, self.threads, &sweep)?;
            }
            (StateLayout::BitPlanes, WordWidth::W256) => {
                run_sharded_planes::<4>(tape, source, faults, &mut times, self.threads, &sweep)?;
            }
            (StateLayout::BitPlanes, WordWidth::W512) => {
                run_sharded_planes::<8>(tape, source, faults, &mut times, self.threads, &sweep)?;
            }
            (StateLayout::Interleaved, WordWidth::W64) => {
                run_sharded::<PackedValue>(tape, source, faults, &mut times, self.threads, &sweep)?;
            }
            (StateLayout::Interleaved, WordWidth::W256) => {
                run_sharded::<PackedValue256>(
                    tape,
                    source,
                    faults,
                    &mut times,
                    self.threads,
                    &sweep,
                )?;
            }
            (StateLayout::Interleaved, WordWidth::W512) => {
                run_sharded::<PackedValue512>(
                    tape,
                    source,
                    faults,
                    &mut times,
                    self.threads,
                    &sweep,
                )?;
            }
        }
        Ok(times)
    }
}

// ---------------------------------------------------------------------
// Scalar reference engine
// ---------------------------------------------------------------------

/// The reference engine: one faulty machine at a time over the scalar
/// three-valued algebra, streamed in lockstep with its own fault-free
/// machine (the scalar form of good-machine fusion) — both walking the
/// compiled tape. Dramatically slower than the packed engines on large
/// fault lists; exists for differential testing and as the simplest
/// possible template for new backends. For a tape-free oracle, see
/// [`crate::reference`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl SimBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn detection_times_tape(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        self.detection_times_tape_obs(tape, source, faults, &Obs::noop())
    }

    fn detection_times_tape_obs(
        &self,
        tape: &GateTape,
        source: &dyn VectorSource,
        faults: &[Fault],
        obs: &Obs,
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_width(tape.num_inputs(), source)?;
        let sweep = SweepObs::new(obs);
        let start = sweep.is_active().then(Instant::now);
        let mut stats = SweepStats::default();
        let mut times = vec![None; faults.len()];
        for (slot, &fault) in times.iter_mut().zip(faults) {
            // One fault per pass: the scalar engine's "chunk" is a
            // single faulty machine.
            sweep.check_cancelled()?;
            stats.chunks += 1;
            let mut first = None;
            let vectors = &mut stats.vectors;
            stream_machine_fused_tape(tape, source, fault, &mut |t, good, bad| {
                *vectors += 1;
                let observable =
                    good.iter().zip(bad).any(|(g, b)| g.is_binary() && b.is_binary() && g != b);
                if observable {
                    first = Some(t);
                    return false;
                }
                true
            })?;
            stats.early_exits += u64::from(first.is_some());
            *slot = first;
        }
        if let Some(start) = start {
            sweep.flush(&stats, elapsed_us(start));
        }
        Ok(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe};
    use bist_expand::expansion::{Expand, ExpansionConfig};
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    fn table2_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    fn all_engines() -> Vec<Box<dyn SimBackend>> {
        vec![
            Box::new(PackedBackend),
            Box::new(ScalarBackend),
            Box::new(ShardedBackend::new(1, WordWidth::W64).unwrap()),
            Box::new(ShardedBackend::new(2, WordWidth::W256).unwrap()),
            Box::new(ShardedBackend::new(4, WordWidth::W512).unwrap()),
        ]
    }

    #[test]
    fn cancelled_token_aborts_every_engine() {
        use bist_obs::CancelToken;
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let token = CancelToken::new();
        token.cancel();
        let obs = Obs::noop().with_cancel(token);
        let mut engines = all_engines();
        engines.push(Box::new(
            ShardedBackend::with_layout(2, WordWidth::W256, StateLayout::BitPlanes).unwrap(),
        ));
        for engine in engines {
            let err = engine.detection_times_tape_obs(&tape, &t0, &faults, &obs).unwrap_err();
            assert_eq!(err, SimError::Cancelled { deadline_expired: false }, "{}", engine.name());
        }
        // An already-expired deadline reports the deadline kind.
        let expired = Obs::noop().with_cancel(CancelToken::with_deadline(Instant::now()));
        let err =
            PackedBackend.detection_times_tape_obs(&tape, &t0, &faults, &expired).unwrap_err();
        assert_eq!(err, SimError::Cancelled { deadline_expired: true });
        // A live (uncancelled) token leaves results bit-identical.
        let live = Obs::noop().with_cancel(CancelToken::new());
        let plain = PackedBackend.detection_times_tape(&tape, &t0, &faults).unwrap();
        let tokened = PackedBackend.detection_times_tape_obs(&tape, &t0, &faults, &live).unwrap();
        assert_eq!(plain, tokened);
    }

    #[test]
    fn scalar_matches_packed_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let packed = PackedBackend.detection_times(&c, &t0, &faults).unwrap();
        let scalar = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        assert_eq!(packed, scalar);
        assert_eq!(packed.iter().filter(|t| t.is_some()).count(), 32);
    }

    #[test]
    fn precompiled_tape_matches_on_the_fly_compilation() {
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        for engine in all_engines() {
            assert_eq!(
                engine.detection_times_tape(&tape, &t0, &faults).unwrap(),
                engine.detection_times(&c, &t0, &faults).unwrap(),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn every_engine_agrees_on_streamed_expansion() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let s: TestSequence = "1011 0100".parse().unwrap();
        let cfg = ExpansionConfig::new(2).unwrap();
        let stream = cfg.stream(&s);
        let reference = ScalarBackend.detection_times(&c, &stream, &faults).unwrap();
        for engine in all_engines() {
            let times = engine.detection_times(&c, &stream, &faults).unwrap();
            assert_eq!(times, reference, "{}", engine.name());
        }
        // And the stream equals simulating the materialized expansion.
        let materialized = cfg.expand(&s);
        let on_mat = PackedBackend.detection_times(&c, &materialized, &faults).unwrap();
        assert_eq!(on_mat, reference);
    }

    #[test]
    fn validation_shared_by_backends() {
        let c = benchmarks::s27();
        let bad: TestSequence = "000".parse().unwrap();
        for engine in all_engines() {
            assert!(
                matches!(
                    engine.detection_times(&c, &bad, &[]),
                    Err(SimError::WidthMismatch { .. })
                ),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn sharded_zero_threads_is_a_typed_error() {
        assert_eq!(ShardedBackend::new(0, WordWidth::W256), Err(SimError::ZeroThreads));
    }

    #[test]
    fn oversized_chunk_surfaces_lane_error() {
        let c = benchmarks::s27();
        let faults = fault_universe(&c);
        let tape = GateTape::compile(&c);
        let mut injector = Injector::new(c.num_nodes());
        // 52 faults into a 4-lane budget: typed error, no panic.
        let err = injector.load(&tape, &faults, 4);
        assert_eq!(err, Err(SimError::LaneOutOfRange { lane: faults.len() - 1, lanes: 4 }));
        // Within budget loads fine.
        assert_eq!(injector.load(&tape, &faults[..4], 4), Ok(()));
    }

    #[test]
    fn injector_bitmaps_track_touched_nodes() {
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let faults = fault_universe(&c);
        let mut injector = Injector::new(c.num_nodes());
        injector.load(&tape, &faults[..4], 63).unwrap();
        let stems: Vec<usize> = faults[..4]
            .iter()
            .filter_map(|f| match f.site {
                FaultSite::Output(n) => Some(n.index()),
                FaultSite::Input { .. } => None,
            })
            .collect();
        for &s in &stems {
            assert!(injector.output_forced(s));
        }
        // Loading a disjoint chunk clears the previous bits.
        injector.load(&tape, &faults[40..44], 63).unwrap();
        let now: Vec<usize> = (0..c.num_nodes()).filter(|&i| injector.output_forced(i)).collect();
        assert!(stems.iter().all(|s| !now.contains(s)
            || faults[40..44]
                .iter()
                .any(|f| matches!(f.site, FaultSite::Output(n) if n.index() == *s))));
    }

    #[test]
    fn forced_gates_are_sorted_patch_points_with_merged_flags() {
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let faults = fault_universe(&c);
        let mut injector = Injector::new(c.num_nodes());
        injector.load(&tape, &faults[..32], 63).unwrap();
        // Sorted, strictly increasing tape positions.
        let positions: Vec<u32> = injector.forced_gates.iter().map(|&(p, _)| p).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{positions:?}");
        // Every forced gate position carries the flags its node's forces
        // imply, and every gate-site force appears.
        for &(pos, flags) in &injector.forced_gates {
            let node = tape.gate_out()[pos as usize] as usize;
            assert_eq!(flags & OUT_FORCE != 0, injector.output_forced(node));
            assert_eq!(flags & IN_FORCE != 0, injector.input_forced(node));
        }
        let gate_sites =
            faults[..32].iter().filter(|f| tape.gate_pos(f.site.node().index()).is_some()).count();
        assert!(gate_sites > 0, "sample must exercise gate sites");
        for f in &faults[..32] {
            if let Some(pos) = tape.gate_pos(f.site.node().index()) {
                assert!(positions.contains(&(pos as u32)), "{f} missing from patch list");
            }
        }
        // PI/DFF forces are not gates and never enter the patch list.
        for &(pos, _) in &injector.forced_gates {
            assert!(tape.gate_pos(tape.gate_out()[pos as usize] as usize).is_some());
        }
    }

    #[test]
    fn sharded_more_threads_than_chunks() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let reference = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        // 32 faults, 8 threads, 511 faults/chunk: everything lands in one
        // shard; the engine must degrade gracefully.
        let engine = ShardedBackend::new(8, WordWidth::W512).unwrap();
        assert_eq!(engine.detection_times(&c, &t0, &faults).unwrap(), reference);
    }

    #[test]
    fn sharded_accessors_and_auto() {
        let e = ShardedBackend::new(3, WordWidth::W64).unwrap();
        assert_eq!(e.threads(), 3);
        assert_eq!(e.width(), WordWidth::W64);
        assert_eq!(e.name(), "sharded64");
        assert!(ShardedBackend::auto().threads() >= 1);
        assert_eq!(ShardedBackend::default().width(), WordWidth::W256);
        assert_eq!(WordWidth::from_lanes(256), Some(WordWidth::W256));
        assert_eq!(WordWidth::from_lanes(128), None);
        assert_eq!(WordWidth::W512.lanes(), 512);
    }

    #[test]
    fn eval2_agrees_with_the_fold_on_all_kinds() {
        use crate::eval::eval_gate_fold;
        use Logic::{One, Zero, X};
        for kind in GateKind::ALL {
            for a in [Zero, One, X] {
                for b in [Zero, One, X] {
                    let (pa, pb) = (PackedValue::splat(a), PackedValue::splat(b));
                    assert_eq!(
                        eval2(kind, pa, pb).lane(11),
                        eval_gate_fold(kind, pa, [pb].into_iter()).lane(11),
                        "{kind:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn names_differ() {
        assert_ne!(PackedBackend.name(), ScalarBackend.name());
        assert_ne!(
            ShardedBackend::new(1, WordWidth::W64).unwrap().name(),
            ShardedBackend::new(1, WordWidth::W256).unwrap().name()
        );
    }

    #[test]
    fn state_layouts_are_bit_identical_and_distinguishable() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let reference = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        for width in [WordWidth::W64, WordWidth::W256, WordWidth::W512] {
            let planes =
                ShardedBackend::with_layout(2, width, crate::StateLayout::BitPlanes).unwrap();
            let aos =
                ShardedBackend::with_layout(2, width, crate::StateLayout::Interleaved).unwrap();
            assert_ne!(planes.name(), aos.name());
            assert!(planes.name().ends_with("_planes"), "{}", planes.name());
            assert_eq!(planes.detection_times(&c, &t0, &faults).unwrap(), reference);
            assert_eq!(aos.detection_times(&c, &t0, &faults).unwrap(), reference);
        }
        // The default layout is the autovectorizing interleaved layout
        // (the A/B on the build host: see state_layout/* in
        // BENCH_fault_sim.json), under the historic engine names.
        let default = ShardedBackend::new(1, WordWidth::W256).unwrap();
        assert_eq!(default.layout(), crate::StateLayout::Interleaved);
        assert_eq!(default.name(), "sharded256");
    }
}
