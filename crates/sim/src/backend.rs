//! Pluggable fault-simulation backends.
//!
//! [`SimBackend`] is the engine interface behind
//! [`FaultSimulator`](crate::FaultSimulator): given a circuit, a
//! replayable stream of input vectors and a fault list, produce the first
//! detection time of every fault. Three engines are provided:
//!
//! * [`PackedBackend`] — the single-threaded production engine: 63 faulty
//!   machines per pass, one per [`PackedValue`] lane, with the good
//!   machine fused into the last lane, fault dropping and early exit.
//! * [`ShardedBackend`] — the scaled engine: the fault list is split into
//!   contiguous shards across OS threads (scoped threads, no runtime
//!   dependencies), and each shard runs the same chunked pass at a
//!   configurable [`WordWidth`] — 64, 256 or 512 machines per word. The
//!   wide words are `[u64; N]` planes whose gate operations autovectorize,
//!   so one pass can advance 255 or 511 faulty machines.
//! * [`ScalarBackend`] — a deliberately simple reference: one faulty
//!   machine at a time over the scalar [`Logic`](crate::Logic) algebra,
//!   run in lockstep with its own fault-free machine. Exists for
//!   differential testing of the packed engines.
//!
//! All engines fuse the good machine into the fault passes: the packed
//! engines reserve the top lane of every word for the fault-free machine
//! and the scalar engine streams a good/faulty pair, so the fault-free
//! primary-output trace is **never** collected up front and detection is
//! O(1) in stream length. Combined with the lazy
//! [`ExpansionIter`](bist_expand::ExpansionIter) this keeps the whole
//! `8·n·|S|`-vector pipeline allocation-flat.
//!
//! Every engine validates its inputs at the boundary — width mismatches,
//! empty streams and oversized fault chunks surface as typed
//! [`SimError`]s rather than panics deep inside the engine.

use crate::good::{stream_machine_fused, validate_source};
use crate::packed::{LaneMask, PackedWord};
use crate::{Fault, FaultSite, Logic, PackedValue, PackedValue256, PackedValue512, SimError};
use bist_expand::VectorSource;
use bist_netlist::{Circuit, NodeId, NodeKind};
use std::fmt;

/// A sequential stuck-at fault-simulation engine.
///
/// Implementations must treat `source` as replayable: it may be streamed
/// once per internal pass. All engines implement the same detection
/// criterion — a fault is detected at time `u` if some primary output is
/// binary in the fault-free machine and the complementary binary value in
/// the faulty machine at `u`, both machines starting from the all-`X`
/// state.
pub trait SimBackend: fmt::Debug + Send + Sync {
    /// Short engine name for reports (e.g. `"packed64"`).
    fn name(&self) -> &'static str;

    /// First detection time of every fault in `faults` under the vector
    /// stream, or `None` if undetected.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] / [`SimError::EmptySequence`] for bad
    /// streams; [`SimError::LaneOutOfRange`] / [`SimError::ZeroThreads`]
    /// for invalid engine configurations.
    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError>;
}

// ---------------------------------------------------------------------
// Generic chunked engine (any PackedWord width, fused good machine)
// ---------------------------------------------------------------------

/// Sparse per-chunk fault injection tables, allocated once per shard and
/// cleared between chunks. Lane indices are validated against the word
/// width at [`load`](Injector::load) time, so an oversized chunk surfaces
/// a typed error instead of panicking inside `set_lane`.
struct Injector {
    /// Nodes with output (stem) forces in the current chunk.
    out_touched: Vec<usize>,
    out_forces: Vec<Vec<(usize, Logic)>>,
    /// Nodes with input (branch) forces in the current chunk.
    in_touched: Vec<usize>,
    in_forces: Vec<Vec<(u32, usize, Logic)>>,
}

impl Injector {
    fn new(num_nodes: usize) -> Self {
        Injector {
            out_touched: Vec::new(),
            out_forces: vec![Vec::new(); num_nodes],
            in_touched: Vec::new(),
            in_forces: vec![Vec::new(); num_nodes],
        }
    }

    fn clear(&mut self) {
        for &i in &self.out_touched {
            self.out_forces[i].clear();
        }
        for &i in &self.in_touched {
            self.in_forces[i].clear();
        }
        self.out_touched.clear();
        self.in_touched.clear();
    }

    /// Loads one chunk of faults, one lane each. `fault_lanes` is the
    /// engine's per-pass capacity (word width minus the good-machine
    /// lane).
    fn load(&mut self, chunk: &[Fault], fault_lanes: usize) -> Result<(), SimError> {
        if chunk.len() > fault_lanes {
            return Err(SimError::LaneOutOfRange { lane: chunk.len() - 1, lanes: fault_lanes });
        }
        self.clear();
        for (lane, fault) in chunk.iter().enumerate() {
            let forced = Logic::from_bool(fault.stuck);
            match fault.site {
                FaultSite::Output(node) => {
                    let i = node.index();
                    if self.out_forces[i].is_empty() {
                        self.out_touched.push(i);
                    }
                    self.out_forces[i].push((lane, forced));
                }
                FaultSite::Input { node, pin } => {
                    let i = node.index();
                    if self.in_forces[i].is_empty() {
                        self.in_touched.push(i);
                    }
                    self.in_forces[i].push((pin, lane, forced));
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn force_output<W: PackedWord>(&self, node: usize, mut value: W) -> W {
        for &(lane, forced) in &self.out_forces[node] {
            value.set_lane(lane, forced);
        }
        value
    }

    #[inline]
    fn has_input_forces(&self, node: usize) -> bool {
        !self.in_forces[node].is_empty()
    }

    /// Value of `node`'s fanin `pin` as seen by the gate, with branch
    /// forces applied.
    #[inline]
    fn forced_input<W: PackedWord>(&self, node: usize, pin: u32, mut value: W) -> W {
        for &(p, lane, forced) in &self.in_forces[node] {
            if p == pin {
                value.set_lane(lane, forced);
            }
        }
        value
    }
}

/// Packed gate evaluation reading straight from the value table
/// (allocation-free fast path).
#[inline]
fn eval_fold<W: PackedWord>(values: &[W], fanin: &[NodeId], kind: bist_netlist::GateKind) -> W {
    let first = values[fanin[0].index()];
    let rest = fanin[1..].iter().map(|f| values[f.index()]);
    crate::eval::eval_gate_fold(kind, first, rest)
}

/// One pass over the stream with up to `W::LANES - 1` faulty machines in
/// the low lanes and the fault-free machine fused into the top lane. The
/// good machine sees no forces (the injector never loads its lane), so
/// each output word carries the reference value and all faulty values of
/// that output in the same pass — no precollected PO trace.
fn run_chunk<W: PackedWord>(
    circuit: &Circuit,
    source: &dyn VectorSource,
    chunk: &[Fault],
    times: &mut [Option<usize>],
    injector: &mut Injector,
    values: &mut [W],
) -> Result<(), SimError> {
    let good_lane = W::LANES - 1;
    injector.load(chunk, good_lane)?;
    values.fill(W::ALL_X);

    let used = W::Mask::first_n(chunk.len());
    let mut undetected = used;
    let mut state = vec![W::ALL_X; circuit.num_dffs()];
    let mut scratch: Vec<W> = Vec::new();

    source.visit(&mut |t, vector| {
        // Drive primary inputs (with stem forces: a stuck PI is stuck
        // every cycle).
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            let v = W::splat(Logic::from_bool(vector.get(i)));
            values[pi.index()] = injector.force_output(pi.index(), v);
        }
        // Present state.
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            values[dff.index()] = injector.force_output(dff.index(), state[k]);
        }
        // Combinational sweep.
        for &g in circuit.eval_order() {
            let node = circuit.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            let gi = g.index();
            let v = if injector.has_input_forces(gi) {
                scratch.clear();
                for (pin, &f) in node.fanin().iter().enumerate() {
                    scratch.push(injector.forced_input(gi, pin as u32, values[f.index()]));
                }
                crate::eval::eval_gate(*kind, &scratch)
            } else {
                eval_fold(values, node.fanin(), *kind)
            };
            values[gi] = injector.force_output(gi, v);
        }
        // Compare the faulty lanes against the fused good lane.
        for &o in circuit.outputs() {
            let w = values[o.index()];
            let diff = match w.lane(good_lane) {
                Logic::One => w.zeros_mask(),
                Logic::Zero => w.ones_mask(),
                Logic::X => continue,
            };
            let newly = diff.intersect(undetected);
            if !newly.is_empty() {
                newly.for_each_lane(|lane| times[lane] = Some(t));
                undetected = undetected.subtract(newly);
            }
        }
        if undetected.is_empty() {
            return false;
        }
        // Clock: latch next state (with D-pin branch forces).
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            let di = dff.index();
            let src = circuit.node(dff).fanin()[0];
            let mut v = values[src.index()];
            if injector.has_input_forces(di) {
                v = injector.forced_input(di, 0, v);
            }
            state[k] = v;
        }
        true
    });
    Ok(())
}

/// Runs one contiguous shard of the fault list through chunked passes of
/// `W::LANES - 1` faults each.
fn run_shard<W: PackedWord>(
    circuit: &Circuit,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
) -> Result<(), SimError> {
    let per_chunk = W::LANES - 1;
    let mut injector = Injector::new(circuit.num_nodes());
    let mut values = vec![W::ALL_X; circuit.num_nodes()];
    for (chunk, slots) in faults.chunks(per_chunk).zip(times.chunks_mut(per_chunk)) {
        run_chunk::<W>(circuit, source, chunk, slots, &mut injector, &mut values)?;
    }
    Ok(())
}

/// Splits the fault list across `threads` scoped OS threads, each running
/// [`run_shard`] on its own contiguous slice of faults and result slots.
/// Shard boundaries are rounded to whole chunks so no pass is wasted on a
/// partial word mid-list.
fn run_sharded<W: PackedWord>(
    circuit: &Circuit,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
    threads: usize,
) -> Result<(), SimError> {
    let per_chunk = W::LANES - 1;
    let shard = faults.len().div_ceil(threads).div_ceil(per_chunk).max(1) * per_chunk;
    if threads == 1 || faults.len() <= shard {
        return run_shard::<W>(circuit, source, faults, times);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = faults
            .chunks(shard)
            .zip(times.chunks_mut(shard))
            .map(|(chunk, slots)| {
                scope.spawn(move || run_shard::<W>(circuit, source, chunk, slots))
            })
            .collect();
        for handle in handles {
            handle.join().expect("shard thread panicked")?;
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Packed engine (63 faulty machines + fused good machine per pass)
// ---------------------------------------------------------------------

/// The single-threaded production engine: faults are simulated 63 at a
/// time, each low lane of a [`PackedValue`] carrying one faulty machine
/// and the top lane the fused fault-free machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedBackend;

impl SimBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed64"
    }

    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_source(circuit, source)?;
        let mut times = vec![None; faults.len()];
        run_shard::<PackedValue>(circuit, source, faults, &mut times)?;
        Ok(times)
    }
}

// ---------------------------------------------------------------------
// Sharded wide-word engine
// ---------------------------------------------------------------------

/// The packed word width a [`ShardedBackend`] simulates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordWidth {
    /// 64 lanes ([`PackedValue`]): 63 faults + good machine per pass.
    W64,
    /// 256 lanes ([`PackedValue256`]): 255 faults + good machine per pass.
    #[default]
    W256,
    /// 512 lanes ([`PackedValue512`]): 511 faults + good machine per pass.
    W512,
}

impl WordWidth {
    /// Number of lanes of this width.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            WordWidth::W64 => 64,
            WordWidth::W256 => 256,
            WordWidth::W512 => 512,
        }
    }

    /// The width with exactly `lanes` lanes, if one exists.
    #[must_use]
    pub fn from_lanes(lanes: usize) -> Option<Self> {
        match lanes {
            64 => Some(WordWidth::W64),
            256 => Some(WordWidth::W256),
            512 => Some(WordWidth::W512),
            _ => None,
        }
    }
}

/// The scaled engine: fault-list sharding across OS threads × wide-word
/// lane packing, behind the same [`SimBackend`] trait.
///
/// Each thread owns a contiguous shard of the collapsed fault list and
/// runs the chunked fused-good-machine pass at the configured
/// [`WordWidth`]. Threads share nothing but the circuit and the replayable
/// stream, so results are deterministic and bit-identical to
/// [`ScalarBackend`] at any `threads`/`width` combination.
///
/// # Example
///
/// ```
/// use bist_expand::TestSequence;
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe, ShardedBackend, SimBackend, WordWidth};
///
/// let c = benchmarks::s27();
/// let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
/// let t0: TestSequence =
///     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
/// let engine = ShardedBackend::new(2, WordWidth::W256)?;
/// let times = engine.detection_times(&c, &t0, &faults)?;
/// assert_eq!(times.iter().filter(|t| t.is_some()).count(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedBackend {
    threads: usize,
    width: WordWidth,
}

impl ShardedBackend {
    /// Creates an engine with `threads` worker threads at `width` lanes
    /// per word.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroThreads`] if `threads == 0`.
    pub fn new(threads: usize, width: WordWidth) -> Result<Self, SimError> {
        if threads == 0 {
            return Err(SimError::ZeroThreads);
        }
        Ok(ShardedBackend { threads, width })
    }

    /// An engine sized to the host: one thread per available core at the
    /// default 256-lane width.
    #[must_use]
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ShardedBackend { threads, width: WordWidth::default() }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured word width.
    #[must_use]
    pub fn width(&self) -> WordWidth {
        self.width
    }
}

impl Default for ShardedBackend {
    fn default() -> Self {
        ShardedBackend::auto()
    }
}

impl SimBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        match self.width {
            WordWidth::W64 => "sharded64",
            WordWidth::W256 => "sharded256",
            WordWidth::W512 => "sharded512",
        }
    }

    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_source(circuit, source)?;
        // threads >= 1 is a construction invariant of every constructor.
        debug_assert!(self.threads >= 1);
        let mut times = vec![None; faults.len()];
        match self.width {
            WordWidth::W64 => {
                run_sharded::<PackedValue>(circuit, source, faults, &mut times, self.threads)?;
            }
            WordWidth::W256 => {
                run_sharded::<PackedValue256>(circuit, source, faults, &mut times, self.threads)?;
            }
            WordWidth::W512 => {
                run_sharded::<PackedValue512>(circuit, source, faults, &mut times, self.threads)?;
            }
        }
        Ok(times)
    }
}

// ---------------------------------------------------------------------
// Scalar reference engine
// ---------------------------------------------------------------------

/// The reference engine: one faulty machine at a time over the scalar
/// three-valued algebra, streamed in lockstep with its own fault-free
/// machine (the scalar form of good-machine fusion). Dramatically slower
/// than the packed engines on large fault lists; exists for differential
/// testing and as the simplest possible template for new backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl SimBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn detection_times(
        &self,
        circuit: &Circuit,
        source: &dyn VectorSource,
        faults: &[Fault],
    ) -> Result<Vec<Option<usize>>, SimError> {
        validate_source(circuit, source)?;
        let mut times = vec![None; faults.len()];
        for (slot, &fault) in times.iter_mut().zip(faults) {
            let mut first = None;
            stream_machine_fused(circuit, source, fault, &mut |t, good, bad| {
                let observable =
                    good.iter().zip(bad).any(|(g, b)| g.is_binary() && b.is_binary() && g != b);
                if observable {
                    first = Some(t);
                    return false;
                }
                true
            })?;
            *slot = first;
        }
        Ok(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe};
    use bist_expand::expansion::{Expand, ExpansionConfig};
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    fn table2_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    fn all_engines() -> Vec<Box<dyn SimBackend>> {
        vec![
            Box::new(PackedBackend),
            Box::new(ScalarBackend),
            Box::new(ShardedBackend::new(1, WordWidth::W64).unwrap()),
            Box::new(ShardedBackend::new(2, WordWidth::W256).unwrap()),
            Box::new(ShardedBackend::new(4, WordWidth::W512).unwrap()),
        ]
    }

    #[test]
    fn scalar_matches_packed_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let packed = PackedBackend.detection_times(&c, &t0, &faults).unwrap();
        let scalar = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        assert_eq!(packed, scalar);
        assert_eq!(packed.iter().filter(|t| t.is_some()).count(), 32);
    }

    #[test]
    fn every_engine_agrees_on_streamed_expansion() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let s: TestSequence = "1011 0100".parse().unwrap();
        let cfg = ExpansionConfig::new(2).unwrap();
        let stream = cfg.stream(&s);
        let reference = ScalarBackend.detection_times(&c, &stream, &faults).unwrap();
        for engine in all_engines() {
            let times = engine.detection_times(&c, &stream, &faults).unwrap();
            assert_eq!(times, reference, "{}", engine.name());
        }
        // And the stream equals simulating the materialized expansion.
        let materialized = cfg.expand(&s);
        let on_mat = PackedBackend.detection_times(&c, &materialized, &faults).unwrap();
        assert_eq!(on_mat, reference);
    }

    #[test]
    fn validation_shared_by_backends() {
        let c = benchmarks::s27();
        let bad: TestSequence = "000".parse().unwrap();
        for engine in all_engines() {
            assert!(
                matches!(
                    engine.detection_times(&c, &bad, &[]),
                    Err(SimError::WidthMismatch { .. })
                ),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn sharded_zero_threads_is_a_typed_error() {
        assert_eq!(ShardedBackend::new(0, WordWidth::W256), Err(SimError::ZeroThreads));
    }

    #[test]
    fn oversized_chunk_surfaces_lane_error() {
        let c = benchmarks::s27();
        let faults = fault_universe(&c);
        let mut injector = Injector::new(c.num_nodes());
        // 52 faults into a 4-lane budget: typed error, no panic.
        let err = injector.load(&faults, 4);
        assert_eq!(err, Err(SimError::LaneOutOfRange { lane: faults.len() - 1, lanes: 4 }));
        // Within budget loads fine.
        assert_eq!(injector.load(&faults[..4], 4), Ok(()));
    }

    #[test]
    fn sharded_more_threads_than_chunks() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0 = table2_t0();
        let reference = ScalarBackend.detection_times(&c, &t0, &faults).unwrap();
        // 32 faults, 8 threads, 511 faults/chunk: everything lands in one
        // shard; the engine must degrade gracefully.
        let engine = ShardedBackend::new(8, WordWidth::W512).unwrap();
        assert_eq!(engine.detection_times(&c, &t0, &faults).unwrap(), reference);
    }

    #[test]
    fn sharded_accessors_and_auto() {
        let e = ShardedBackend::new(3, WordWidth::W64).unwrap();
        assert_eq!(e.threads(), 3);
        assert_eq!(e.width(), WordWidth::W64);
        assert_eq!(e.name(), "sharded64");
        assert!(ShardedBackend::auto().threads() >= 1);
        assert_eq!(ShardedBackend::default().width(), WordWidth::W256);
        assert_eq!(WordWidth::from_lanes(256), Some(WordWidth::W256));
        assert_eq!(WordWidth::from_lanes(128), None);
        assert_eq!(WordWidth::W512.lanes(), 512);
    }

    #[test]
    fn names_differ() {
        assert_ne!(PackedBackend.name(), ScalarBackend.name());
        assert_ne!(
            ShardedBackend::new(1, WordWidth::W64).unwrap().name(),
            ShardedBackend::new(1, WordWidth::W256).unwrap().name()
        );
    }
}
