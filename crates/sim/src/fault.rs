//! The single stuck-at fault model.
//!
//! Faults are placed on *lines*: every node output (stem) carries two
//! faults, and every gate/flip-flop input pin fed by a multi-fanout stem
//! (a fanout *branch*) carries two more. Single-fanout branches are the
//! same physical line as their stem and get no separate faults — this is
//! the standard structural fault universe and yields 52 uncollapsed
//! faults on `s27`, collapsing to the 32 the paper enumerates in Table 2.

use bist_netlist::{Circuit, NodeId};
use std::fmt;

/// Where a stuck-at fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// On the output (stem) of a node — a primary input, gate or DFF.
    Output(NodeId),
    /// On a fanout branch: the wire entering `node` at fanin position
    /// `pin`.
    Input {
        /// The consuming node (gate or DFF).
        node: NodeId,
        /// The fanin position (0-based).
        pin: u32,
    },
}

impl FaultSite {
    /// The node this site is attached to (the stem node for output
    /// faults, the consuming node for branch faults).
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            FaultSite::Output(node) | FaultSite::Input { node, .. } => node,
        }
    }
}

/// Sorts a fault list by fault-site node index (stem faults before the
/// branch faults of the same node, then by pin, then stuck-at-0 before
/// stuck-at-1).
///
/// The engines chunk a fault list in order, `W - 1` faults per packed
/// word and contiguous shards per thread — site-sorted chunks cluster
/// their forces on neighbouring injector-table entries and give each
/// shard a compact slice of the value table, instead of the
/// all-stems-then-all-branches interleave the derived [`Ord`] produces.
/// Reordering is *only* a locality optimization: detection times are
/// per-fault, so it never changes any result (pinned by the collapse
/// tests).
pub fn sort_faults_by_site(faults: &mut [Fault]) {
    faults.sort_by_key(|f| match f.site {
        FaultSite::Output(node) => (node.index(), 0u32, 0u32, f.stuck),
        FaultSite::Input { node, pin } => (node.index(), 1, pin, f.stuck),
    });
}

/// A single stuck-at fault.
///
/// # Example
///
/// ```
/// use bist_netlist::benchmarks;
/// use bist_sim::fault_universe;
///
/// let s27 = benchmarks::s27();
/// let faults = fault_universe(&s27);
/// assert_eq!(faults.len(), 52);   // the classic s27 uncollapsed count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The faulty line.
    pub site: FaultSite,
    /// The stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck: bool,
}

impl Fault {
    /// Constructs a stem fault.
    #[must_use]
    pub fn output(node: NodeId, stuck: bool) -> Self {
        Fault { site: FaultSite::Output(node), stuck }
    }

    /// Constructs a branch fault on `node`'s fanin `pin`.
    #[must_use]
    pub fn input(node: NodeId, pin: u32, stuck: bool) -> Self {
        Fault { site: FaultSite::Input { node, pin }, stuck }
    }

    /// Human-readable description using the circuit's signal names, e.g.
    /// `"G8 s-a-1"` or `"G15.1 s-a-0"`.
    #[must_use]
    pub fn describe(&self, circuit: &Circuit) -> String {
        let sa = if self.stuck { "s-a-1" } else { "s-a-0" };
        match self.site {
            FaultSite::Output(n) => format!("{} {sa}", circuit.node(n).name()),
            FaultSite::Input { node, pin } => {
                format!("{}.{pin} {sa}", circuit.node(node).name())
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck { "s-a-1" } else { "s-a-0" };
        match self.site {
            FaultSite::Output(n) => write!(f, "{n} {sa}"),
            FaultSite::Input { node, pin } => write!(f, "{node}.{pin} {sa}"),
        }
    }
}

/// Generates the full (uncollapsed) structural fault universe: two faults
/// per stem and two per multi-fanout branch.
#[must_use]
pub fn fault_universe(circuit: &Circuit) -> Vec<Fault> {
    let fanout = circuit.fanout_table();
    let mut faults = Vec::new();
    for i in 0..circuit.num_nodes() {
        let id = NodeId::from_index(i);
        faults.push(Fault::output(id, false));
        faults.push(Fault::output(id, true));
    }
    // Branch faults only where the stem actually branches.
    for (src_idx, refs) in fanout.iter().enumerate() {
        if refs.len() <= 1 {
            continue;
        }
        let _ = src_idx;
        for r in refs {
            faults.push(Fault::input(r.node, r.pin, false));
            faults.push(Fault::input(r.node, r.pin, true));
        }
    }
    faults.sort();
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::benchmarks;

    #[test]
    fn s27_universe_is_52() {
        let c = benchmarks::s27();
        let faults = fault_universe(&c);
        assert_eq!(faults.len(), 52);
        // 17 nodes × 2 = 34 stem faults.
        let stems = faults.iter().filter(|f| matches!(f.site, FaultSite::Output(_))).count();
        assert_eq!(stems, 34);
        assert_eq!(faults.len() - stems, 18);
    }

    #[test]
    fn universe_is_sorted_and_unique() {
        let c = benchmarks::s27();
        let faults = fault_universe(&c);
        let mut sorted = faults.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(faults, sorted);
    }

    #[test]
    fn no_branch_faults_on_single_fanout_nets() {
        let c = benchmarks::shift_register3();
        // q0 -> q1 -> q2 all single fanout; din/en feed one AND gate.
        let faults = fault_universe(&c);
        assert!(faults.iter().all(|f| matches!(f.site, FaultSite::Output(_))));
        assert_eq!(faults.len(), 2 * c.num_nodes());
    }

    #[test]
    fn describe_uses_names() {
        let c = benchmarks::s27();
        let g8 = c.find("G8").unwrap();
        assert_eq!(Fault::output(g8, true).describe(&c), "G8 s-a-1");
        assert_eq!(Fault::input(g8, 1, false).describe(&c), "G8.1 s-a-0");
    }

    #[test]
    fn display_is_stable() {
        let f = Fault::output(NodeId::from_index(3), false);
        assert_eq!(f.to_string(), "n3 s-a-0");
    }

    #[test]
    fn site_sort_clusters_by_node_index() {
        let c = benchmarks::s27();
        let mut faults = fault_universe(&c);
        sort_faults_by_site(&mut faults);
        // Node indices are non-decreasing down the whole list...
        let idx: Vec<usize> = faults.iter().map(|f| f.site.node().index()).collect();
        assert!(idx.windows(2).all(|w| w[0] <= w[1]), "{idx:?}");
        // ...with each node's stem faults ahead of its branch faults.
        for w in faults.windows(2) {
            if w[0].site.node() == w[1].site.node() {
                let branch_then_stem = matches!(w[0].site, FaultSite::Input { .. })
                    && matches!(w[1].site, FaultSite::Output(_));
                assert!(!branch_then_stem, "{} before {}", w[0], w[1]);
            }
        }
        // Same multiset as the original universe.
        let mut back = faults.clone();
        back.sort();
        assert_eq!(back, fault_universe(&c));
    }
}
