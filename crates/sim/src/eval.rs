//! Gate evaluation over packed three-valued values.

use crate::{Logic, PackedWord};
use bist_netlist::GateKind;
use std::ops::Not;

/// Evaluates a gate over packed fanin values (all lanes at once).
///
/// Generic over any [`PackedWord`] width — the same code evaluates 64
/// machines per [`PackedValue`](crate::PackedValue) or 256/512 per
/// [`PackedVec`](crate::PackedVec).
///
/// # Panics
///
/// Panics if `fanin` is empty (the netlist layer guarantees arity ≥ 1).
///
/// # Example
///
/// ```
/// use bist_netlist::GateKind;
/// use bist_sim::{eval_gate, Logic, PackedValue};
///
/// let a = PackedValue::splat(Logic::One);
/// let b = PackedValue::splat(Logic::X);
/// // 1 NAND X = X, but 0 NAND X = 1:
/// assert_eq!(eval_gate(GateKind::Nand, &[a, b]).lane(0), Logic::X);
/// let z = PackedValue::splat(Logic::Zero);
/// assert_eq!(eval_gate(GateKind::Nand, &[z, b]).lane(0), Logic::One);
/// ```
#[must_use]
pub fn eval_gate<W: PackedWord>(kind: GateKind, fanin: &[W]) -> W {
    assert!(!fanin.is_empty(), "gate must have at least one fanin");
    eval_gate_fold(kind, fanin[0], fanin[1..].iter().copied())
}

/// Folds a gate over `first` and the remaining fanin values — the single
/// definition of packed gate semantics, shared by [`eval_gate`] and the
/// engines' allocation-free table-reading fast path.
#[inline]
#[must_use]
pub fn eval_gate_fold<W: PackedWord>(kind: GateKind, first: W, rest: impl Iterator<Item = W>) -> W {
    match kind {
        GateKind::Buf => first,
        GateKind::Not => W::not(first),
        GateKind::And => rest.fold(first, W::and),
        GateKind::Nand => W::not(rest.fold(first, W::and)),
        GateKind::Or => rest.fold(first, W::or),
        GateKind::Nor => W::not(rest.fold(first, W::or)),
        GateKind::Xor => rest.fold(first, W::xor),
        GateKind::Xnor => W::not(rest.fold(first, W::xor)),
    }
}

/// Scalar convenience wrapper over [`eval_gate`].
#[must_use]
pub fn eval_gate_scalar(kind: GateKind, fanin: &[Logic]) -> Logic {
    eval_scalar_fold(kind, fanin.iter().copied())
}

/// Allocation-free scalar gate evaluation over an iterator of fanin
/// values — the inner loop of the fault-free simulator.
///
/// # Panics
///
/// Panics if the iterator is empty.
#[must_use]
pub fn eval_scalar_fold(kind: GateKind, mut fanin: impl Iterator<Item = Logic>) -> Logic {
    let first = fanin.next().expect("gate must have at least one fanin");
    match kind {
        GateKind::Buf => first,
        GateKind::Not => first.not(),
        GateKind::And => fanin.fold(first, Logic::and),
        GateKind::Nand => fanin.fold(first, Logic::and).not(),
        GateKind::Or => fanin.fold(first, Logic::or),
        GateKind::Nor => fanin.fold(first, Logic::or).not(),
        GateKind::Xor => fanin.fold(first, Logic::xor),
        GateKind::Xnor => fanin.fold(first, Logic::xor).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackedValue, PackedValue256};
    use Logic::{One, Zero, X};

    const ALL: [Logic; 3] = [Zero, One, X];

    #[test]
    fn two_input_tables() {
        for a in ALL {
            for b in ALL {
                assert_eq!(eval_gate_scalar(GateKind::And, &[a, b]), a.and(b));
                assert_eq!(eval_gate_scalar(GateKind::Nand, &[a, b]), a.and(b).not());
                assert_eq!(eval_gate_scalar(GateKind::Or, &[a, b]), a.or(b));
                assert_eq!(eval_gate_scalar(GateKind::Nor, &[a, b]), a.or(b).not());
                assert_eq!(eval_gate_scalar(GateKind::Xor, &[a, b]), a.xor(b));
                assert_eq!(eval_gate_scalar(GateKind::Xnor, &[a, b]), a.xor(b).not());
            }
        }
    }

    #[test]
    fn unary_gates() {
        for a in ALL {
            assert_eq!(eval_gate_scalar(GateKind::Buf, &[a]), a);
            assert_eq!(eval_gate_scalar(GateKind::Not, &[a]), a.not());
        }
    }

    #[test]
    fn wide_gates_fold() {
        assert_eq!(eval_gate_scalar(GateKind::And, &[One, One, One, Zero]), Zero);
        assert_eq!(eval_gate_scalar(GateKind::And, &[One, One, X]), X);
        assert_eq!(eval_gate_scalar(GateKind::Or, &[Zero, Zero, One, X]), One);
        assert_eq!(eval_gate_scalar(GateKind::Nor, &[Zero, Zero, Zero]), One);
        // Odd parity of three ones = 1.
        assert_eq!(eval_gate_scalar(GateKind::Xor, &[One, One, One]), One);
        assert_eq!(eval_gate_scalar(GateKind::Xnor, &[One, One, One]), Zero);
    }

    #[test]
    fn controlling_value_beats_x() {
        assert_eq!(eval_gate_scalar(GateKind::And, &[Zero, X]), Zero);
        assert_eq!(eval_gate_scalar(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval_gate_scalar(GateKind::Or, &[One, X]), One);
        assert_eq!(eval_gate_scalar(GateKind::Nor, &[One, X]), Zero);
    }

    #[test]
    fn packed_lanes_independent() {
        let mut a = PackedValue::ALL_ONE;
        a.set_lane(3, Zero);
        let b = PackedValue::ALL_ONE;
        let out = eval_gate(GateKind::Nand, &[a, b]);
        assert_eq!(out.lane(3), One);
        assert_eq!(out.lane(0), Zero);
        assert!(out.is_valid());
    }

    #[test]
    fn wide_words_evaluate_like_narrow() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Xor] {
            for a in ALL {
                for b in ALL {
                    let narrow =
                        eval_gate(kind, &[PackedValue::splat(a), PackedValue::splat(b)]).lane(10);
                    let wide =
                        eval_gate(kind, &[PackedValue256::splat(a), PackedValue256::splat(b)])
                            .lane(200);
                    assert_eq!(narrow, wide, "{kind:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one fanin")]
    fn empty_fanin_panics() {
        let _ = eval_gate::<PackedValue>(GateKind::And, &[]);
    }
}
