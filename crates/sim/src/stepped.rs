//! An interactive, clock-by-clock circuit simulator.
//!
//! [`SteppedSim`] plays the role of the chip in hardware-in-the-loop
//! style tests: feed one input vector per call, get the primary-output
//! response, and keep the flip-flop state across calls. An optional
//! stuck-at fault turns it into the defective chip. The batch simulators
//! in [`crate::simulate_good`] / [`crate::simulate_faulty`] are the
//! reference; equivalence is unit- and property-tested. Unlike the
//! batch [`SimBackend`](crate::SimBackend) engines, this simulator is
//! deliberately scalar and single-machine — it is an interaction surface,
//! not a throughput path — though like every engine it executes the
//! compiled [`GateTape`] rather than the node graph.

use crate::good::ScalarForce;
use crate::{eval, Fault, Logic, SimError};
use bist_expand::TestVector;
use bist_netlist::{Circuit, GateTape};

/// A stateful one-vector-at-a-time simulator.
///
/// # Example
///
/// ```
/// use bist_netlist::benchmarks;
/// use bist_sim::{Logic, SteppedSim};
/// use bist_expand::TestVector;
///
/// let c = benchmarks::shift_register3();
/// let mut sim = SteppedSim::new(&c);
/// let ones: TestVector = "11".parse()?;
/// for _ in 0..3 {
///     sim.step(&ones)?;          // flush the unknown state
/// }
/// assert_eq!(sim.step(&ones)?, vec![Logic::One]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SteppedSim<'c> {
    circuit: &'c Circuit,
    /// The compiled instruction form every [`step`](Self::step) executes.
    tape: GateTape,
    values: Vec<Logic>,
    state: Vec<Logic>,
    fault: Option<Fault>,
    cycles: usize,
}

impl<'c> SteppedSim<'c> {
    /// Creates a fault-free simulator in the all-unknown state, compiling
    /// the circuit's tape once for the simulator's lifetime.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        SteppedSim {
            circuit,
            tape: GateTape::compile(circuit),
            values: vec![Logic::X; circuit.num_nodes()],
            state: vec![Logic::X; circuit.num_dffs()],
            fault: None,
            cycles: 0,
        }
    }

    /// Creates a simulator with a stuck-at fault injected.
    #[must_use]
    pub fn with_fault(circuit: &'c Circuit, fault: Fault) -> Self {
        let mut sim = SteppedSim::new(circuit);
        sim.fault = Some(fault);
        sim
    }

    /// The simulated circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The injected fault, if any.
    #[must_use]
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// Number of clock cycles applied since construction or
    /// [`reset`](Self::reset).
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The current flip-flop values (circuit DFF order).
    #[must_use]
    pub fn state(&self) -> &[Logic] {
        &self.state
    }

    /// Returns to the all-unknown power-on state.
    pub fn reset(&mut self) {
        self.values.fill(Logic::X);
        self.state.fill(Logic::X);
        self.cycles = 0;
    }

    /// Applies one input vector: evaluates the combinational logic,
    /// returns the primary-output values, and clocks the flip-flops.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] if the vector width differs from the
    /// circuit's input count.
    pub fn step(&mut self, vector: &TestVector) -> Result<Vec<Logic>, SimError> {
        let tape = &self.tape;
        if vector.width() != tape.num_inputs() {
            return Err(SimError::WidthMismatch {
                circuit_inputs: tape.num_inputs(),
                sequence_width: vector.width(),
            });
        }

        // The shared scalar injection semantics — same hooks as the
        // streaming walks in `good.rs`.
        let force = ScalarForce::of(self.fault);

        for (i, &pi) in tape.inputs().iter().enumerate() {
            let pi = pi as usize;
            self.values[pi] = force.force_out(pi, Logic::from_bool(vector.get(i)));
        }
        for (k, &dff) in tape.dffs().iter().enumerate() {
            let dff = dff as usize;
            self.values[dff] = force.force_out(dff, self.state[k]);
        }
        let (ops, outs, starts, fanin) =
            (tape.ops(), tape.gate_out(), tape.fanin_start(), tape.fanin());
        for g in 0..ops.len() {
            let out = outs[g] as usize;
            let window = &fanin[starts[g] as usize..starts[g + 1] as usize];
            let v = eval::eval_scalar_fold(
                ops[g],
                window
                    .iter()
                    .enumerate()
                    .map(|(p, &f)| force.read(&self.values, out, p as u32, f as usize)),
            );
            self.values[out] = force.force_out(out, v);
        }
        let outputs = tape.outputs().iter().map(|&o| self.values[o as usize]).collect();
        for (k, (&dff, &src)) in tape.dffs().iter().zip(tape.dff_src()).enumerate() {
            self.state[k] = force.read(&self.values, dff as usize, 0, src as usize);
        }
        self.cycles += 1;
        Ok(outputs)
    }

    /// Reads the current value of a node (after the last
    /// [`step`](Self::step)); useful for debugging and waveform dumps.
    #[must_use]
    pub fn value(&self, node: bist_netlist::NodeId) -> Logic {
        self.values[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_faulty, simulate_good};
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn stepped_matches_batch_good() {
        let c = benchmarks::s27();
        let t0 = seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011");
        let batch = simulate_good(&c, &t0).unwrap();
        let mut sim = SteppedSim::new(&c);
        for (u, v) in t0.iter().enumerate() {
            assert_eq!(sim.step(v).unwrap(), batch.po[u], "u={u}");
        }
        assert_eq!(sim.state(), &batch.final_state[..]);
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn stepped_matches_batch_faulty() {
        let c = benchmarks::s27();
        let g8 = c.find("G8").unwrap();
        let t0 = seq("0111 1001 0111 1001 0100 1011");
        for fault in [Fault::output(g8, true), Fault::input(g8, 0, false)] {
            let batch = simulate_faulty(&c, &t0, fault).unwrap();
            let mut sim = SteppedSim::with_fault(&c, fault);
            assert_eq!(sim.fault(), Some(fault));
            for (u, v) in t0.iter().enumerate() {
                assert_eq!(sim.step(v).unwrap(), batch.po[u], "u={u} {fault}");
            }
        }
    }

    #[test]
    fn reset_restores_power_on_state() {
        let c = benchmarks::shift_register3();
        let mut sim = SteppedSim::new(&c);
        let v: TestVector = "11".parse().unwrap();
        for _ in 0..4 {
            sim.step(&v).unwrap();
        }
        assert!(sim.state().iter().all(|s| s.is_binary()));
        sim.reset();
        assert!(sim.state().iter().all(|s| !s.is_binary()));
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = benchmarks::s27();
        let mut sim = SteppedSim::new(&c);
        let v: TestVector = "01".parse().unwrap();
        assert!(matches!(sim.step(&v), Err(SimError::WidthMismatch { .. })));
    }

    #[test]
    fn value_inspection() {
        let c = benchmarks::comb_mix();
        let mut sim = SteppedSim::new(&c);
        sim.step(&"110".parse().unwrap()).unwrap();
        let maj = c.find("maj").unwrap();
        assert_eq!(sim.value(maj), Logic::One);
    }

    #[test]
    fn dff_input_pin_fault_latches_forced_value() {
        // A branch fault on a DFF's D pin must affect the *next* cycle.
        let c = benchmarks::s27();
        let g5 = c.dffs()[0]; // G5 = DFF(G10)
        let fault = Fault::input(g5, 0, true);
        let t0 = seq("0111 1001 0111 1001");
        let batch = simulate_faulty(&c, &t0, fault).unwrap();
        let mut sim = SteppedSim::with_fault(&c, fault);
        for (u, v) in t0.iter().enumerate() {
            assert_eq!(sim.step(v).unwrap(), batch.po[u], "u={u}");
        }
    }
}
