use crate::{Logic, SimError};
use std::fmt;

/// A bitmask over the lanes of a [`PackedWord`] — the bookkeeping type the
/// fault-simulation engines use to track which faulty machines are still
/// undetected and which lanes diverged from the good machine this cycle.
///
/// Implemented by `u64` (for [`PackedValue`]) and `[u64; N]` (for
/// [`PackedVec`]). All operations are branch-free bit manipulation so the
/// detection loop stays cheap at any width.
pub trait LaneMask: Copy + PartialEq + Send + Sync + 'static {
    /// The mask with no lanes set.
    const EMPTY: Self;

    /// The mask with lanes `0..n` set.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of lanes.
    fn first_n(n: usize) -> Self;

    /// True if no lane is set.
    fn is_empty(self) -> bool;

    /// Lanes set in both masks.
    #[must_use]
    fn intersect(self, rhs: Self) -> Self;

    /// Lanes set in `self` but not in `rhs`.
    #[must_use]
    fn subtract(self, rhs: Self) -> Self;

    /// Calls `f` with the index of every set lane, in ascending order.
    fn for_each_lane(self, f: impl FnMut(usize));
}

impl LaneMask for u64 {
    const EMPTY: Self = 0;

    fn first_n(n: usize) -> Self {
        assert!(n <= 64, "mask width {n} exceeds 64 lanes");
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    fn is_empty(self) -> bool {
        self == 0
    }

    fn intersect(self, rhs: Self) -> Self {
        self & rhs
    }

    fn subtract(self, rhs: Self) -> Self {
        self & !rhs
    }

    fn for_each_lane(self, mut f: impl FnMut(usize)) {
        let mut bits = self;
        while bits != 0 {
            f(bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

impl<const N: usize> LaneMask for [u64; N] {
    const EMPTY: Self = [0; N];

    fn first_n(n: usize) -> Self {
        assert!(n <= 64 * N, "mask width {n} exceeds {} lanes", 64 * N);
        let mut words = [0u64; N];
        let (full, rem) = (n / 64, n % 64);
        for w in words.iter_mut().take(full) {
            *w = u64::MAX;
        }
        if rem != 0 {
            words[full] = (1u64 << rem) - 1;
        }
        words
    }

    fn is_empty(self) -> bool {
        self.iter().all(|&w| w == 0)
    }

    fn intersect(self, rhs: Self) -> Self {
        let mut out = [0u64; N];
        for i in 0..N {
            out[i] = self[i] & rhs[i];
        }
        out
    }

    fn subtract(self, rhs: Self) -> Self {
        let mut out = [0u64; N];
        for i in 0..N {
            out[i] = self[i] & !rhs[i];
        }
        out
    }

    fn for_each_lane(self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f(wi * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }
}

/// A fixed-width vector of three-valued logic values — the algebra the
/// bit-parallel fault-simulation engines are generic over.
///
/// Lane `i` carries one machine's value of a signal. [`PackedValue`]
/// provides 64 lanes in two `u64` planes; [`PackedVec<N>`] provides
/// `64·N` lanes (256 and 512 via the [`PackedValue256`] /
/// [`PackedValue512`] aliases) in `[u64; N]` planes whose element-wise
/// loops autovectorize to AVX2/AVX-512 on capable hosts.
///
/// The algebra must agree with the scalar [`Logic`] algebra in every lane
/// (property-tested for each implementation).
pub trait PackedWord: Copy + PartialEq + Send + Sync + 'static {
    /// The lane-mask type paired with this width.
    type Mask: LaneMask;

    /// Number of lanes.
    const LANES: usize;

    /// The word with every lane `X`.
    const ALL_X: Self;

    /// Broadcasts one value to all lanes.
    #[must_use]
    fn splat(v: Logic) -> Self;

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::LANES`; see [`try_lane`](Self::try_lane) for
    /// the checked variant.
    #[must_use]
    fn lane(self, i: usize) -> Logic;

    /// Writes lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::LANES`; see
    /// [`try_set_lane`](Self::try_set_lane) for the checked variant.
    fn set_lane(&mut self, i: usize, v: Logic);

    /// Checked [`lane`](Self::lane): out-of-range indices surface a typed
    /// [`SimError::LaneOutOfRange`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::LaneOutOfRange`] if `i >= Self::LANES`.
    fn try_lane(self, i: usize) -> Result<Logic, SimError> {
        if i < Self::LANES {
            Ok(self.lane(i))
        } else {
            Err(SimError::LaneOutOfRange { lane: i, lanes: Self::LANES })
        }
    }

    /// Checked [`set_lane`](Self::set_lane).
    ///
    /// # Errors
    ///
    /// [`SimError::LaneOutOfRange`] if `i >= Self::LANES`.
    fn try_set_lane(&mut self, i: usize, v: Logic) -> Result<(), SimError> {
        if i < Self::LANES {
            self.set_lane(i, v);
            Ok(())
        } else {
            Err(SimError::LaneOutOfRange { lane: i, lanes: Self::LANES })
        }
    }

    /// Lane-wise three-valued AND.
    #[must_use]
    fn and(self, rhs: Self) -> Self;

    /// Lane-wise three-valued OR.
    #[must_use]
    fn or(self, rhs: Self) -> Self;

    /// Lane-wise three-valued XOR.
    #[must_use]
    fn xor(self, rhs: Self) -> Self;

    /// Lane-wise three-valued NOT.
    #[must_use]
    fn not(self) -> Self;

    /// Mask of lanes holding logic 1.
    #[must_use]
    fn ones_mask(self) -> Self::Mask;

    /// Mask of lanes holding logic 0.
    #[must_use]
    fn zeros_mask(self) -> Self::Mask;
}

/// 64 three-valued logic values packed into two machine words.
///
/// Lane `i` is encoded by bit `i` of two words: `ones` (the lane is 1) and
/// `zeros` (the lane is 0). Exactly one of the bits is set for a binary
/// value; neither is set for `X`. Both set is an illegal state that the
/// algebra never produces from legal inputs (checked by
/// [`is_valid`](Self::is_valid) and a property test).
///
/// This encoding makes every gate a handful of bitwise operations over all
/// 64 lanes at once — the workhorse of the parallel-fault simulator, where
/// each lane carries one faulty machine.
///
/// # Example
///
/// ```
/// use bist_sim::{Logic, PackedValue};
///
/// let a = PackedValue::splat(Logic::One);
/// let mut b = PackedValue::splat(Logic::X);
/// b.set_lane(3, Logic::Zero);
/// let c = a.and(b);
/// assert_eq!(c.lane(3), Logic::Zero);
/// assert_eq!(c.lane(0), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedValue {
    /// Bit `i` set ⇔ lane `i` is logic 1.
    pub ones: u64,
    /// Bit `i` set ⇔ lane `i` is logic 0.
    pub zeros: u64,
}

impl PackedValue {
    /// Number of lanes.
    pub const LANES: usize = 64;

    /// All lanes `X`.
    pub const ALL_X: PackedValue = PackedValue { ones: 0, zeros: 0 };

    /// All lanes 0.
    pub const ALL_ZERO: PackedValue = PackedValue { ones: 0, zeros: u64::MAX };

    /// All lanes 1.
    pub const ALL_ONE: PackedValue = PackedValue { ones: u64::MAX, zeros: 0 };

    /// Broadcasts one value to all lanes.
    #[must_use]
    pub fn splat(v: Logic) -> Self {
        match v {
            Logic::Zero => Self::ALL_ZERO,
            Logic::One => Self::ALL_ONE,
            Logic::X => Self::ALL_X,
        }
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub fn lane(self, i: usize) -> Logic {
        assert!(i < Self::LANES, "lane {i} out of range");
        let bit = 1u64 << i;
        match (self.ones & bit != 0, self.zeros & bit != 0) {
            (true, false) => Logic::One,
            (false, true) => Logic::Zero,
            (false, false) => Logic::X,
            (true, true) => unreachable!("invalid packed encoding in lane {i}"),
        }
    }

    /// Writes lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn set_lane(&mut self, i: usize, v: Logic) {
        assert!(i < Self::LANES, "lane {i} out of range");
        let bit = 1u64 << i;
        self.ones &= !bit;
        self.zeros &= !bit;
        match v {
            Logic::One => self.ones |= bit,
            Logic::Zero => self.zeros |= bit,
            Logic::X => {}
        }
    }

    /// True if no lane has both bits set.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.ones & self.zeros == 0
    }

    /// Lane-wise three-valued AND.
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        PackedValue { ones: self.ones & rhs.ones, zeros: self.zeros | rhs.zeros }
    }

    /// Lane-wise three-valued OR.
    #[must_use]
    pub fn or(self, rhs: Self) -> Self {
        PackedValue { ones: self.ones | rhs.ones, zeros: self.zeros & rhs.zeros }
    }

    /// Lane-wise three-valued XOR.
    #[must_use]
    pub fn xor(self, rhs: Self) -> Self {
        PackedValue {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }

    /// Bitmask of lanes holding binary (non-`X`) values.
    #[must_use]
    pub fn binary_mask(self) -> u64 {
        self.ones | self.zeros
    }

    /// Checked [`lane`](Self::lane): surfaces a typed error instead of
    /// panicking on an out-of-range index.
    ///
    /// # Errors
    ///
    /// [`SimError::LaneOutOfRange`] if `i >= 64`.
    pub fn try_lane(self, i: usize) -> Result<Logic, SimError> {
        PackedWord::try_lane(self, i)
    }

    /// Checked [`set_lane`](Self::set_lane).
    ///
    /// # Errors
    ///
    /// [`SimError::LaneOutOfRange`] if `i >= 64`.
    pub fn try_set_lane(&mut self, i: usize, v: Logic) -> Result<(), SimError> {
        PackedWord::try_set_lane(self, i, v)
    }
}

impl PackedWord for PackedValue {
    type Mask = u64;

    const LANES: usize = 64;

    const ALL_X: Self = PackedValue::ALL_X;

    fn splat(v: Logic) -> Self {
        PackedValue::splat(v)
    }

    fn lane(self, i: usize) -> Logic {
        PackedValue::lane(self, i)
    }

    fn set_lane(&mut self, i: usize, v: Logic) {
        PackedValue::set_lane(self, i, v);
    }

    fn and(self, rhs: Self) -> Self {
        PackedValue::and(self, rhs)
    }

    fn or(self, rhs: Self) -> Self {
        PackedValue::or(self, rhs)
    }

    fn xor(self, rhs: Self) -> Self {
        PackedValue::xor(self, rhs)
    }

    fn not(self) -> Self {
        PackedValue { ones: self.zeros, zeros: self.ones }
    }

    fn ones_mask(self) -> u64 {
        self.ones
    }

    fn zeros_mask(self) -> u64 {
        self.zeros
    }
}

/// `64·N` three-valued logic values packed into two `[u64; N]` planes —
/// the wide-word generalization of [`PackedValue`].
///
/// The element-wise plane loops compile to straight-line SIMD (AVX2 at
/// `N = 4`, AVX-512 at `N = 8` with `target-cpu=native`), so one gate
/// evaluation advances 256 or 512 faulty machines. Use the
/// [`PackedValue256`] / [`PackedValue512`] aliases.
///
/// # Example
///
/// ```
/// use bist_sim::{Logic, PackedValue256, PackedWord};
///
/// let mut w = PackedValue256::ALL_X;
/// w.set_lane(200, Logic::Zero);
/// let a = PackedValue256::splat(Logic::One);
/// assert_eq!(a.and(w).lane(200), Logic::Zero);
/// assert_eq!(a.and(w).lane(0), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedVec<const N: usize> {
    /// Bit `i` of word `w` set ⇔ lane `64·w + i` is logic 1.
    pub ones: [u64; N],
    /// Bit `i` of word `w` set ⇔ lane `64·w + i` is logic 0.
    pub zeros: [u64; N],
}

/// 256-lane packed word (`[u64; 4]` planes).
pub type PackedValue256 = PackedVec<4>;

/// 512-lane packed word (`[u64; 8]` planes).
pub type PackedValue512 = PackedVec<8>;

impl<const N: usize> PackedVec<N> {
    /// True if no lane has both plane bits set.
    #[must_use]
    pub fn is_valid(self) -> bool {
        (0..N).all(|i| self.ones[i] & self.zeros[i] == 0)
    }
}

impl<const N: usize> Default for PackedVec<N> {
    fn default() -> Self {
        Self::ALL_X
    }
}

impl<const N: usize> PackedWord for PackedVec<N> {
    type Mask = [u64; N];

    const LANES: usize = 64 * N;

    const ALL_X: Self = PackedVec { ones: [0; N], zeros: [0; N] };

    fn splat(v: Logic) -> Self {
        match v {
            Logic::One => PackedVec { ones: [u64::MAX; N], zeros: [0; N] },
            Logic::Zero => PackedVec { ones: [0; N], zeros: [u64::MAX; N] },
            Logic::X => Self::ALL_X,
        }
    }

    fn lane(self, i: usize) -> Logic {
        assert!(i < Self::LANES, "lane {i} out of range");
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        match (self.ones[w] & bit != 0, self.zeros[w] & bit != 0) {
            (true, false) => Logic::One,
            (false, true) => Logic::Zero,
            (false, false) => Logic::X,
            (true, true) => unreachable!("invalid packed encoding in lane {i}"),
        }
    }

    fn set_lane(&mut self, i: usize, v: Logic) {
        assert!(i < Self::LANES, "lane {i} out of range");
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        self.ones[w] &= !bit;
        self.zeros[w] &= !bit;
        match v {
            Logic::One => self.ones[w] |= bit,
            Logic::Zero => self.zeros[w] |= bit,
            Logic::X => {}
        }
    }

    fn and(self, rhs: Self) -> Self {
        let (mut ones, mut zeros) = ([0u64; N], [0u64; N]);
        for i in 0..N {
            ones[i] = self.ones[i] & rhs.ones[i];
            zeros[i] = self.zeros[i] | rhs.zeros[i];
        }
        PackedVec { ones, zeros }
    }

    fn or(self, rhs: Self) -> Self {
        let (mut ones, mut zeros) = ([0u64; N], [0u64; N]);
        for i in 0..N {
            ones[i] = self.ones[i] | rhs.ones[i];
            zeros[i] = self.zeros[i] & rhs.zeros[i];
        }
        PackedVec { ones, zeros }
    }

    fn xor(self, rhs: Self) -> Self {
        let (mut ones, mut zeros) = ([0u64; N], [0u64; N]);
        for i in 0..N {
            ones[i] = (self.ones[i] & rhs.zeros[i]) | (self.zeros[i] & rhs.ones[i]);
            zeros[i] = (self.ones[i] & rhs.ones[i]) | (self.zeros[i] & rhs.zeros[i]);
        }
        PackedVec { ones, zeros }
    }

    fn not(self) -> Self {
        PackedVec { ones: self.zeros, zeros: self.ones }
    }

    fn ones_mask(self) -> [u64; N] {
        self.ones
    }

    fn zeros_mask(self) -> [u64; N] {
        self.zeros
    }
}

impl std::ops::Not for PackedValue {
    type Output = PackedValue;

    /// Lane-wise three-valued NOT (swap the planes).
    fn not(self) -> PackedValue {
        PackedValue { ones: self.zeros, zeros: self.ones }
    }
}

impl Default for PackedValue {
    fn default() -> Self {
        Self::ALL_X
    }
}

impl fmt::Display for PackedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..Self::LANES {
            write!(f, "{}", self.lane(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::{One, Zero, X};

    const ALL: [Logic; 3] = [Zero, One, X];

    #[test]
    fn splat_and_lane_round_trip() {
        for v in ALL {
            let p = PackedValue::splat(v);
            assert!(p.is_valid());
            for i in [0, 1, 31, 63] {
                assert_eq!(p.lane(i), v);
            }
        }
    }

    #[test]
    fn set_lane_round_trip() {
        let mut p = PackedValue::ALL_X;
        p.set_lane(0, One);
        p.set_lane(63, Zero);
        p.set_lane(17, One);
        p.set_lane(17, X); // overwrite back to X
        assert_eq!(p.lane(0), One);
        assert_eq!(p.lane(63), Zero);
        assert_eq!(p.lane(17), X);
        assert_eq!(p.lane(5), X);
        assert!(p.is_valid());
    }

    /// The packed algebra must agree with the scalar algebra in all lanes.
    #[test]
    fn packed_matches_scalar_exhaustively() {
        for a in ALL {
            for b in ALL {
                let pa = PackedValue::splat(a);
                let pb = PackedValue::splat(b);
                assert_eq!(pa.and(pb).lane(7), a.and(b), "and {a} {b}");
                assert_eq!(pa.or(pb).lane(7), a.or(b), "or {a} {b}");
                assert_eq!(pa.xor(pb).lane(7), a.xor(b), "xor {a} {b}");
                assert_eq!(PackedWord::not(pa).lane(7), !a, "not {a}");
                assert_eq!(!pa, PackedWord::not(pa), "ops::Not and PackedWord::not agree");
                assert!(pa.and(pb).is_valid());
                assert!(pa.or(pb).is_valid());
                assert!(pa.xor(pb).is_valid());
            }
        }
    }

    #[test]
    fn mixed_lanes_evaluate_independently() {
        let mut a = PackedValue::ALL_X;
        let mut b = PackedValue::ALL_X;
        // lane 0: 1 AND 1; lane 1: 0 AND X; lane 2: X AND X.
        a.set_lane(0, One);
        b.set_lane(0, One);
        a.set_lane(1, Zero);
        let c = a.and(b);
        assert_eq!(c.lane(0), One);
        assert_eq!(c.lane(1), Zero);
        assert_eq!(c.lane(2), X);
    }

    #[test]
    fn binary_mask() {
        let mut p = PackedValue::ALL_X;
        p.set_lane(2, One);
        p.set_lane(5, Zero);
        assert_eq!(p.binary_mask(), (1 << 2) | (1 << 5));
        assert_eq!(PackedValue::ALL_ONE.binary_mask(), u64::MAX);
        assert_eq!(PackedValue::ALL_X.binary_mask(), 0);
    }

    #[test]
    fn default_is_all_x() {
        assert_eq!(PackedValue::default(), PackedValue::ALL_X);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_out_of_range_panics() {
        let _ = PackedValue::ALL_X.lane(64);
    }

    #[test]
    fn try_lane_surfaces_typed_error() {
        let mut p = PackedValue::ALL_X;
        assert_eq!(p.try_lane(63), Ok(X));
        assert_eq!(p.try_lane(64), Err(SimError::LaneOutOfRange { lane: 64, lanes: 64 }));
        assert_eq!(p.try_set_lane(2, One), Ok(()));
        assert_eq!(p.lane(2), One);
        assert_eq!(
            p.try_set_lane(100, One),
            Err(SimError::LaneOutOfRange { lane: 100, lanes: 64 })
        );
        let mut w = PackedValue256::ALL_X;
        assert_eq!(w.try_set_lane(255, Zero), Ok(()));
        assert_eq!(w.try_lane(256), Err(SimError::LaneOutOfRange { lane: 256, lanes: 256 }));
    }

    /// Every lane of every wide width must follow the scalar algebra.
    #[test]
    fn wide_matches_scalar_exhaustively() {
        fn check<W: PackedWord>() {
            for a in ALL {
                for b in ALL {
                    let (pa, pb) = (W::splat(a), W::splat(b));
                    for lane in [0, 63, W::LANES / 2, W::LANES - 1] {
                        assert_eq!(pa.and(pb).lane(lane), a.and(b), "and {a} {b} lane {lane}");
                        assert_eq!(pa.or(pb).lane(lane), a.or(b), "or {a} {b} lane {lane}");
                        assert_eq!(pa.xor(pb).lane(lane), a.xor(b), "xor {a} {b} lane {lane}");
                        assert_eq!(W::not(pa).lane(lane), !a, "not {a} lane {lane}");
                    }
                }
            }
        }
        check::<PackedValue>();
        check::<PackedValue256>();
        check::<PackedValue512>();
    }

    #[test]
    fn wide_lanes_are_independent_across_words() {
        let mut a = PackedValue256::ALL_X;
        let mut b = PackedValue256::ALL_X;
        // Lanes straddling all four plane words.
        a.set_lane(0, One);
        b.set_lane(0, One);
        a.set_lane(70, Zero);
        a.set_lane(130, One);
        a.set_lane(255, Zero);
        let c = a.and(b);
        assert_eq!(c.lane(0), One);
        assert_eq!(c.lane(70), Zero);
        assert_eq!(c.lane(130), X);
        assert_eq!(c.lane(255), Zero);
        assert!(c.is_valid());
    }

    #[test]
    fn lane_mask_first_n_and_iteration() {
        assert_eq!(<u64 as LaneMask>::first_n(0), 0);
        assert_eq!(<u64 as LaneMask>::first_n(3), 0b111);
        assert_eq!(<u64 as LaneMask>::first_n(64), u64::MAX);
        let m = <[u64; 4] as LaneMask>::first_n(70);
        assert_eq!(m, [u64::MAX, 0b11_1111, 0, 0]);
        let mut lanes = Vec::new();
        m.subtract(<[u64; 4] as LaneMask>::first_n(63)).for_each_lane(|l| lanes.push(l));
        assert_eq!(lanes, vec![63, 64, 65, 66, 67, 68, 69]);
        assert!(<[u64; 4] as LaneMask>::EMPTY.is_empty());
        assert!(!m.is_empty());
        assert_eq!(m.intersect(<[u64; 4] as LaneMask>::first_n(1)), [1, 0, 0, 0]);
    }

    #[test]
    fn wide_splat_and_set_round_trip() {
        for v in ALL {
            let w = PackedValue512::splat(v);
            assert!(w.is_valid());
            for lane in [0, 64, 200, 511] {
                assert_eq!(w.lane(lane), v);
            }
        }
        let mut w = PackedValue512::default();
        w.set_lane(300, One);
        w.set_lane(300, X);
        assert_eq!(w.lane(300), X);
    }
}
