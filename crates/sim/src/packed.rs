use crate::Logic;
use std::fmt;

/// 64 three-valued logic values packed into two machine words.
///
/// Lane `i` is encoded by bit `i` of two words: `ones` (the lane is 1) and
/// `zeros` (the lane is 0). Exactly one of the bits is set for a binary
/// value; neither is set for `X`. Both set is an illegal state that the
/// algebra never produces from legal inputs (checked by
/// [`is_valid`](Self::is_valid) and a property test).
///
/// This encoding makes every gate a handful of bitwise operations over all
/// 64 lanes at once — the workhorse of the parallel-fault simulator, where
/// each lane carries one faulty machine.
///
/// # Example
///
/// ```
/// use bist_sim::{Logic, PackedValue};
///
/// let a = PackedValue::splat(Logic::One);
/// let mut b = PackedValue::splat(Logic::X);
/// b.set_lane(3, Logic::Zero);
/// let c = a.and(b);
/// assert_eq!(c.lane(3), Logic::Zero);
/// assert_eq!(c.lane(0), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedValue {
    /// Bit `i` set ⇔ lane `i` is logic 1.
    pub ones: u64,
    /// Bit `i` set ⇔ lane `i` is logic 0.
    pub zeros: u64,
}

impl PackedValue {
    /// Number of lanes.
    pub const LANES: usize = 64;

    /// All lanes `X`.
    pub const ALL_X: PackedValue = PackedValue { ones: 0, zeros: 0 };

    /// All lanes 0.
    pub const ALL_ZERO: PackedValue = PackedValue { ones: 0, zeros: u64::MAX };

    /// All lanes 1.
    pub const ALL_ONE: PackedValue = PackedValue { ones: u64::MAX, zeros: 0 };

    /// Broadcasts one value to all lanes.
    #[must_use]
    pub fn splat(v: Logic) -> Self {
        match v {
            Logic::Zero => Self::ALL_ZERO,
            Logic::One => Self::ALL_ONE,
            Logic::X => Self::ALL_X,
        }
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub fn lane(self, i: usize) -> Logic {
        assert!(i < Self::LANES, "lane {i} out of range");
        let bit = 1u64 << i;
        match (self.ones & bit != 0, self.zeros & bit != 0) {
            (true, false) => Logic::One,
            (false, true) => Logic::Zero,
            (false, false) => Logic::X,
            (true, true) => unreachable!("invalid packed encoding in lane {i}"),
        }
    }

    /// Writes lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn set_lane(&mut self, i: usize, v: Logic) {
        assert!(i < Self::LANES, "lane {i} out of range");
        let bit = 1u64 << i;
        self.ones &= !bit;
        self.zeros &= !bit;
        match v {
            Logic::One => self.ones |= bit,
            Logic::Zero => self.zeros |= bit,
            Logic::X => {}
        }
    }

    /// True if no lane has both bits set.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.ones & self.zeros == 0
    }

    /// Lane-wise three-valued AND.
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        PackedValue { ones: self.ones & rhs.ones, zeros: self.zeros | rhs.zeros }
    }

    /// Lane-wise three-valued OR.
    #[must_use]
    pub fn or(self, rhs: Self) -> Self {
        PackedValue { ones: self.ones | rhs.ones, zeros: self.zeros & rhs.zeros }
    }

    /// Lane-wise three-valued XOR.
    #[must_use]
    pub fn xor(self, rhs: Self) -> Self {
        PackedValue {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }

    /// Bitmask of lanes holding binary (non-`X`) values.
    #[must_use]
    pub fn binary_mask(self) -> u64 {
        self.ones | self.zeros
    }
}

impl std::ops::Not for PackedValue {
    type Output = PackedValue;

    /// Lane-wise three-valued NOT (swap the planes).
    fn not(self) -> PackedValue {
        PackedValue { ones: self.zeros, zeros: self.ones }
    }
}

impl Default for PackedValue {
    fn default() -> Self {
        Self::ALL_X
    }
}

impl fmt::Display for PackedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..Self::LANES {
            write!(f, "{}", self.lane(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Not;
    use Logic::{One, Zero, X};

    const ALL: [Logic; 3] = [Zero, One, X];

    #[test]
    fn splat_and_lane_round_trip() {
        for v in ALL {
            let p = PackedValue::splat(v);
            assert!(p.is_valid());
            for i in [0, 1, 31, 63] {
                assert_eq!(p.lane(i), v);
            }
        }
    }

    #[test]
    fn set_lane_round_trip() {
        let mut p = PackedValue::ALL_X;
        p.set_lane(0, One);
        p.set_lane(63, Zero);
        p.set_lane(17, One);
        p.set_lane(17, X); // overwrite back to X
        assert_eq!(p.lane(0), One);
        assert_eq!(p.lane(63), Zero);
        assert_eq!(p.lane(17), X);
        assert_eq!(p.lane(5), X);
        assert!(p.is_valid());
    }

    /// The packed algebra must agree with the scalar algebra in all lanes.
    #[test]
    fn packed_matches_scalar_exhaustively() {
        for a in ALL {
            for b in ALL {
                let pa = PackedValue::splat(a);
                let pb = PackedValue::splat(b);
                assert_eq!(pa.and(pb).lane(7), a.and(b), "and {a} {b}");
                assert_eq!(pa.or(pb).lane(7), a.or(b), "or {a} {b}");
                assert_eq!(pa.xor(pb).lane(7), a.xor(b), "xor {a} {b}");
                assert_eq!(pa.not().lane(7), a.not(), "not {a}");
                assert!(pa.and(pb).is_valid());
                assert!(pa.or(pb).is_valid());
                assert!(pa.xor(pb).is_valid());
            }
        }
    }

    #[test]
    fn mixed_lanes_evaluate_independently() {
        let mut a = PackedValue::ALL_X;
        let mut b = PackedValue::ALL_X;
        // lane 0: 1 AND 1; lane 1: 0 AND X; lane 2: X AND X.
        a.set_lane(0, One);
        b.set_lane(0, One);
        a.set_lane(1, Zero);
        let c = a.and(b);
        assert_eq!(c.lane(0), One);
        assert_eq!(c.lane(1), Zero);
        assert_eq!(c.lane(2), X);
    }

    #[test]
    fn binary_mask() {
        let mut p = PackedValue::ALL_X;
        p.set_lane(2, One);
        p.set_lane(5, Zero);
        assert_eq!(p.binary_mask(), (1 << 2) | (1 << 5));
        assert_eq!(PackedValue::ALL_ONE.binary_mask(), u64::MAX);
        assert_eq!(PackedValue::ALL_X.binary_mask(), 0);
    }

    #[test]
    fn default_is_all_x() {
        assert_eq!(PackedValue::default(), PackedValue::ALL_X);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_out_of_range_panics() {
        let _ = PackedValue::ALL_X.lane(64);
    }
}
