//! Three-valued logic simulation and sequential stuck-at fault simulation.
//!
//! This crate is the simulation substrate for the `subseq-bist` workspace
//! (a reproduction of Pomeranz & Reddy, DAC 1999). It provides:
//!
//! * [`Logic`] — scalar `0/1/X` values with the standard pessimistic
//!   three-valued algebra, and the [`PackedWord`] family — 64
//!   ([`PackedValue`]), 256 or 512 ([`PackedVec`], autovectorizing
//!   `[u64; N]` planes) such values packed for bit-parallel evaluation.
//! * [`fault_universe`] / [`collapse`] — the single stuck-at fault model
//!   (stem + fanout-branch faults) with classic gate-local equivalence
//!   collapsing. On `s27` this yields the 52 → 32 fault counts the paper
//!   works with.
//! * [`simulate_good`] — fault-free simulation from the all-unknown state.
//! * [`FaultSimulator`] — the sequential fault simulator facade over a
//!   pluggable [`SimBackend`]: the default [`PackedBackend`] runs 63
//!   faulty machines per pass plus the fused good machine in the top
//!   lane; [`ShardedBackend`] splits the fault list across OS threads at
//!   a configurable [`WordWidth`] (64/256/512 lanes); the
//!   [`ScalarBackend`] reference engine runs one machine at a time for
//!   differential testing. Every engine executes the compiled
//!   [`GateTape`] (flat CSR fanin arrays + byte opcodes, compiled once
//!   per circuit and shareable via
//!   [`SimBackend::detection_times_tape`]); the node-graph oracle of the
//!   seed implementation survives in [`reference`] purely as a
//!   differential-test baseline. All engines fuse the fault-free machine
//!   into the fault passes (no precollected PO trace), report first
//!   detection times (the `udet(f)` of Procedure 1) and consume
//!   replayable [`VectorSource`] streams, so lazily expanded sequences
//!   simulate without materialization.
//! * [`FaultCoverage`] — fault list + detection times bookkeeping.
//!
//! # Example
//!
//! ```
//! use bist_expand::TestSequence;
//! use bist_netlist::benchmarks;
//! use bist_sim::{collapse, fault_universe, FaultSimulator};
//!
//! let c = benchmarks::s27();
//! let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
//! assert_eq!(faults.len(), 32);
//!
//! let sim = FaultSimulator::new(&c);
//! let t0: TestSequence =
//!     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
//! let times = sim.detection_times(&t0, &faults)?;
//! assert!(times.iter().all(|t| t.is_some()));   // full coverage
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod collapse;
mod coverage;
mod error;
pub mod eval;
mod fault;
mod good;
mod logic;
mod mapped;
mod packed;
mod planes;
pub mod reference;
mod simulator;
mod stepped;
pub mod transition;

pub use backend::{
    PackedBackend, ScalarBackend, ShardedBackend, SimBackend, StateLayout, WordWidth,
};
/// Re-exported from `bist-expand`: the replayable vector-stream trait the
/// backends consume.
pub use bist_expand::VectorSource;
/// Re-exported from `bist-netlist`: the compiled instruction form every
/// engine executes ([`SimBackend::detection_times_tape`]).
pub use bist_netlist::GateTape;
/// Re-exported from `bist-netlist`: the staged compiler artifacts the
/// mapped simulation path ([`detection_times_mapped`]) consumes.
pub use bist_netlist::{CompileOptions, CompiledCircuit, SiteMap, SiteRoute};
/// Re-exported from `bist-obs`: the telemetry sink engines record into.
pub use bist_obs::Obs;
pub use collapse::{collapse, CollapsedFaults};
pub use coverage::FaultCoverage;
pub use error::SimError;
pub use eval::{eval_gate, eval_gate_scalar};
pub use fault::{fault_universe, sort_faults_by_site, Fault, FaultSite};
pub use good::{simulate_faulty, simulate_good, GoodTrace};
pub use logic::Logic;
pub use mapped::{detection_times_mapped, detection_times_mapped_obs};
pub use packed::{LaneMask, PackedValue, PackedValue256, PackedValue512, PackedVec, PackedWord};
pub use simulator::FaultSimulator;
pub use stepped::SteppedSim;
pub use transition::{
    detects_transition, transition_detection_times, transition_universe, TransitionFault,
};
