//! The node-graph reference oracle.
//!
//! Every production engine in this crate executes the compiled
//! [`GateTape`](bist_netlist::GateTape). This module deliberately does
//! **not**: it walks the [`Circuit`] node graph exactly the way the seed
//! implementation did — per gate it dereferences the
//! [`Node`](bist_netlist::Node), matches on its
//! [`NodeKind`](bist_netlist::NodeKind) and folds over its fanin `Vec` —
//! so the differential suite can prove that tape compilation plus the
//! tape-executing engines never change a single detection time. It is a
//! test oracle, not a throughput path; keep it boring.

use crate::{Fault, FaultSite, Logic, SimError};
use bist_expand::VectorSource;
use bist_netlist::{Circuit, NodeKind};

/// First detection time of every fault in `faults` under the vector
/// stream, computed by a fused good/faulty scalar pair walking the
/// **node graph** (never the tape). Semantics are identical to every
/// [`SimBackend`](crate::SimBackend): a fault is detected at time `u`
/// when some primary output is binary in the fault-free machine and the
/// complementary binary value in the faulty machine, both machines
/// starting from the all-`X` state.
///
/// # Errors
///
/// [`SimError::WidthMismatch`] / [`SimError::EmptySequence`] for bad
/// streams, exactly like the engines.
pub fn detection_times(
    circuit: &Circuit,
    source: &dyn VectorSource,
    faults: &[Fault],
) -> Result<Vec<Option<usize>>, SimError> {
    crate::good::validate_width(circuit.num_inputs(), source)?;
    faults.iter().map(|&fault| first_detection(circuit, source, fault)).collect()
}

/// One fused good/faulty node-graph walk with early exit at detection.
fn first_detection(
    circuit: &Circuit,
    source: &dyn VectorSource,
    fault: Fault,
) -> Result<Option<usize>, SimError> {
    let out_force: Option<(usize, Logic)> = match fault {
        Fault { site: FaultSite::Output(n), stuck } => Some((n.index(), Logic::from_bool(stuck))),
        _ => None,
    };
    let in_force: Option<(usize, u32, Logic)> = match fault {
        Fault { site: FaultSite::Input { node, pin }, stuck } => {
            Some((node.index(), pin, Logic::from_bool(stuck)))
        }
        _ => None,
    };
    let read = |values: &[Logic], consumer: usize, pin: u32, src: usize| -> Logic {
        match in_force {
            Some((n, p, v)) if n == consumer && p == pin => v,
            _ => values[src],
        }
    };
    let force_out = |node: usize, v: Logic| -> Logic {
        match out_force {
            Some((n, f)) if n == node => f,
            _ => v,
        }
    };

    let n = circuit.num_nodes();
    let mut good = vec![Logic::X; n];
    let mut bad = vec![Logic::X; n];
    let mut good_state = vec![Logic::X; circuit.num_dffs()];
    let mut bad_state = vec![Logic::X; circuit.num_dffs()];
    let mut first = None;

    source.visit(&mut |t, vector| {
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            let v = Logic::from_bool(vector.get(i));
            good[pi.index()] = v;
            bad[pi.index()] = force_out(pi.index(), v);
        }
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            good[dff.index()] = good_state[k];
            bad[dff.index()] = force_out(dff.index(), bad_state[k]);
        }
        for &g in circuit.eval_order() {
            let node = circuit.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            let gi = g.index();
            good[gi] =
                crate::eval::eval_scalar_fold(*kind, node.fanin().iter().map(|&f| good[f.index()]));
            let v = crate::eval::eval_scalar_fold(
                *kind,
                node.fanin().iter().enumerate().map(|(p, &f)| read(&bad, gi, p as u32, f.index())),
            );
            bad[gi] = force_out(gi, v);
        }
        let observable = circuit.outputs().iter().any(|&o| {
            let (g, b) = (good[o.index()], bad[o.index()]);
            g.is_binary() && b.is_binary() && g != b
        });
        if observable {
            first = Some(t);
            return false;
        }
        for (k, &dff) in circuit.dffs().iter().enumerate() {
            let src = circuit.node(dff).fanin()[0];
            good_state[k] = good[src.index()];
            bad_state[k] = read(&bad, dff.index(), 0, src.index());
        }
        true
    });

    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, fault_universe, PackedBackend, SimBackend};
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    #[test]
    fn oracle_matches_packed_on_s27() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let oracle = detection_times(&c, &t0, &faults).unwrap();
        let packed = PackedBackend.detection_times(&c, &t0, &faults).unwrap();
        assert_eq!(oracle, packed);
        assert_eq!(oracle.iter().filter(|t| t.is_some()).count(), 32);
    }

    #[test]
    fn oracle_validates_like_the_engines() {
        let c = benchmarks::s27();
        let bad: TestSequence = "000".parse().unwrap();
        assert!(matches!(detection_times(&c, &bad, &[]), Err(SimError::WidthMismatch { .. })));
    }
}
