//! Fault coverage bookkeeping.

use crate::Fault;

/// A fault list paired with first-detection times — the result of fault
/// simulating a sequence, and the raw material of the paper's Procedure 1
/// (which needs the detected set `F` and the detection times `udet(f)`).
///
/// [`simulate`](FaultCoverage::simulate) goes through the
/// [`FaultSimulator`](crate::FaultSimulator) facade and therefore runs on
/// the circuit's compiled [`GateTape`](bist_netlist::GateTape) — callers
/// holding a fault list in the site-sorted order of
/// [`collapse`](crate::collapse) get the engines' chunk locality for
/// free.
///
/// # Example
///
/// ```
/// use bist_expand::TestSequence;
/// use bist_netlist::benchmarks;
/// use bist_sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};
///
/// let c = benchmarks::s27();
/// let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
/// let t0: TestSequence =
///     "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
/// let cov = FaultCoverage::simulate(&FaultSimulator::new(&c), &t0, faults)?;
/// assert_eq!(cov.detected_count(), 32);
/// assert_eq!(cov.max_detection_time(), Some(9));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCoverage {
    faults: Vec<Fault>,
    times: Vec<Option<usize>>,
}

impl FaultCoverage {
    /// Pairs a fault list with detection times.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn new(faults: Vec<Fault>, times: Vec<Option<usize>>) -> Self {
        assert_eq!(faults.len(), times.len(), "faults/times length mismatch");
        FaultCoverage { faults, times }
    }

    /// Runs the simulator and builds the coverage in one step.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn simulate(
        sim: &crate::FaultSimulator<'_>,
        seq: &bist_expand::TestSequence,
        faults: Vec<Fault>,
    ) -> Result<Self, crate::SimError> {
        let times = sim.detection_times(seq, &faults)?;
        Ok(FaultCoverage::new(faults, times))
    }

    /// The fault list.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Detection times aligned with [`faults`](Self::faults).
    #[must_use]
    pub fn times(&self) -> &[Option<usize>] {
        &self.times
    }

    /// Total number of faults.
    #[must_use]
    pub fn total(&self) -> usize {
        self.faults.len()
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.times.iter().filter(|t| t.is_some()).count()
    }

    /// Coverage fraction in `[0, 1]` (0 for an empty list).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.faults.is_empty() {
            0.0
        } else {
            self.detected_count() as f64 / self.total() as f64
        }
    }

    /// Iterates over `(fault, udet)` for the detected faults.
    pub fn detected(&self) -> impl Iterator<Item = (Fault, usize)> + '_ {
        self.faults.iter().zip(&self.times).filter_map(|(&f, &t)| t.map(|u| (f, u)))
    }

    /// Iterates over the undetected faults.
    pub fn undetected(&self) -> impl Iterator<Item = Fault> + '_ {
        self.faults
            .iter()
            .zip(&self.times)
            .filter_map(|(&f, &t)| if t.is_none() { Some(f) } else { None })
    }

    /// The latest first-detection time, if anything was detected — used by
    /// Procedure 1 to pick the hardest target fault.
    #[must_use]
    pub fn max_detection_time(&self) -> Option<usize> {
        self.times.iter().flatten().copied().max()
    }

    /// The detection time of a specific fault (`None` if undetected or
    /// not in the list).
    #[must_use]
    pub fn detection_time(&self, fault: Fault) -> Option<usize> {
        self.faults.iter().position(|&f| f == fault).and_then(|i| self.times[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::NodeId;

    fn fake(n: usize) -> Vec<Fault> {
        (0..n).map(|i| Fault::output(NodeId::from_index(i), i % 2 == 0)).collect()
    }

    #[test]
    fn counts_and_fraction() {
        let cov = FaultCoverage::new(fake(4), vec![Some(0), None, Some(3), None]);
        assert_eq!(cov.total(), 4);
        assert_eq!(cov.detected_count(), 2);
        assert!((cov.fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cov.max_detection_time(), Some(3));
    }

    #[test]
    fn empty_coverage() {
        let cov = FaultCoverage::new(vec![], vec![]);
        assert_eq!(cov.fraction(), 0.0);
        assert_eq!(cov.max_detection_time(), None);
    }

    #[test]
    fn detected_and_undetected_partition() {
        let faults = fake(5);
        let cov = FaultCoverage::new(faults.clone(), vec![Some(1), None, Some(2), None, Some(0)]);
        let det: Vec<Fault> = cov.detected().map(|(f, _)| f).collect();
        let undet: Vec<Fault> = cov.undetected().collect();
        assert_eq!(det.len() + undet.len(), 5);
        assert_eq!(det, vec![faults[0], faults[2], faults[4]]);
        assert_eq!(undet, vec![faults[1], faults[3]]);
    }

    #[test]
    fn detection_time_lookup() {
        let faults = fake(3);
        let cov = FaultCoverage::new(faults.clone(), vec![Some(7), None, Some(1)]);
        assert_eq!(cov.detection_time(faults[0]), Some(7));
        assert_eq!(cov.detection_time(faults[1]), None);
        assert_eq!(cov.detection_time(Fault::output(NodeId::from_index(99), true)), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = FaultCoverage::new(fake(2), vec![None]);
    }
}
