//! The blocked bit-plane simulation engine —
//! [`StateLayout::BitPlanes`](crate::StateLayout).
//!
//! The interleaved engine in [`crate::backend`] stores the value table as
//! an array of words: one `PackedVec<N>` (`2·N` plane words) per gate
//! slot, so the ones/zeros planes of all lanes interleave in memory. At
//! 512 lanes that is 128 bytes per slot, and on circuits whose value
//! table outgrows the cache the sweep turns memory-bound — the PR 4
//! benchmarks show w512 no longer beating w256 on the `a5378` analog.
//! This module is the cache-shaped alternative; which layout wins is a
//! host property, recorded per build host by the `state_layout/*` group
//! of `BENCH_fault_sim.json` (on the current AVX-512 build host with a
//! 2 MiB L2 / 260 MiB L3, the interleaved layout's vectorized loops keep
//! it 2–3× ahead, so it remains the default — see the README).
//!
//! This module splits the state the other way: **structure of bit
//! planes**. The table is `2·N` contiguous rows of `u64`, one ones-row
//! and one zeros-row per plane word, each indexed by gate slot
//! (`row[plane][slot]`). One plane of one slot is exactly a
//! [`PackedValue`] (a 64-lane ones/zeros pair), so the per-plane sweep
//! reuses the scalar-word algebra unchanged — the layout cannot drift
//! from the packed semantics.
//!
//! The combinational sweep is **blocked**: it walks the tape's
//! precompiled cache-sized [`tiles`](GateTape::tiles) (run fragments of
//! at most [`GateTape::TILE_GATES`] gates), and for each tile evaluates
//! all `N` planes before moving on. A tile touches at most ~3 ·
//! `TILE_GATES` value slots per plane — small enough that the tile's
//! fanin window, its CSR metadata and its output slots stay L1-resident
//! while the tile is revisited once per plane, instead of every gate
//! dragging `2·N` plane words through the cache at once. Per plane the
//! working set of a whole sweep is two rows (`16 · num_nodes` bytes)
//! rather than the full `16·N`-byte-per-slot table.
//!
//! Fault injection, good-machine fusion and early exit are identical to
//! the interleaved engine (the [`Injector`] is shared); forces are
//! applied through the plane-filtered accessors so a patch point only
//! touches the plane being swept. Results are bit-identical to every
//! other engine — pinned by the differential and randomized-fuzz suites.

use crate::backend::{elapsed_us, eval2, Injector, SweepObs, SweepStats, IN_FORCE, OUT_FORCE};
use crate::packed::LaneMask;
use crate::{Fault, Logic, PackedValue, SimError};
use bist_expand::VectorSource;
use bist_netlist::{GateKind, GateTape, RunArity};

/// Reads plane value of `slot` from its ones/zeros rows.
#[inline]
fn pv(on: &[u64], zn: &[u64], slot: usize) -> PackedValue {
    PackedValue { ones: on[slot], zeros: zn[slot] }
}

/// Writes plane value of `slot` to its ones/zeros rows.
#[inline]
fn put(on: &mut [u64], zn: &mut [u64], slot: usize, v: PackedValue) {
    on[slot] = v.ones;
    zn[slot] = v.zeros;
}

/// The branch-free two-input row loop, monomorphized per `op` — the
/// bit-plane counterpart of the interleaved engine's `eval2_run`.
#[inline]
fn eval2_rows(
    on: &mut [u64],
    zn: &mut [u64],
    outs: &[u32],
    pairs: &[u32],
    op: impl Fn(PackedValue, PackedValue) -> PackedValue,
) {
    for (&o, p) in outs.iter().zip(pairs.chunks_exact(2)) {
        let v = op(pv(on, zn, p[0] as usize), pv(on, zn, p[1] as usize));
        put(on, zn, o as usize, v);
    }
}

/// Evaluates tape positions `[g0, g1)` — a slice of one homogeneous tile
/// — in a single bit plane, with no force checks. The opcode and arity
/// dispatch happen once here; the segment then runs in a tight loop over
/// the two plane rows.
#[inline]
fn eval_segment_rows(
    tape: &GateTape,
    kind: GateKind,
    arity: RunArity,
    g0: usize,
    g1: usize,
    on: &mut [u64],
    zn: &mut [u64],
) {
    let outs = &tape.gate_out()[g0..g1];
    let starts = tape.fanin_start();
    let s0 = starts[g0] as usize;
    match arity {
        RunArity::Two => {
            let pairs = &tape.fanin()[s0..s0 + 2 * outs.len()];
            match kind {
                GateKind::And => eval2_rows(on, zn, outs, pairs, super::packed::PackedValue::and),
                GateKind::Nand => eval2_rows(on, zn, outs, pairs, |a, b| !a.and(b)),
                GateKind::Or => eval2_rows(on, zn, outs, pairs, super::packed::PackedValue::or),
                GateKind::Nor => eval2_rows(on, zn, outs, pairs, |a, b| !a.or(b)),
                GateKind::Xor => eval2_rows(on, zn, outs, pairs, super::packed::PackedValue::xor),
                GateKind::Xnor => eval2_rows(on, zn, outs, pairs, |a, b| !a.xor(b)),
                // A validated netlist never gives BUF/NOT two fanins;
                // agree with `eval_gate_fold` (ignore the extra) anyway.
                GateKind::Buf => eval2_rows(on, zn, outs, pairs, |a, _| a),
                GateKind::Not => eval2_rows(on, zn, outs, pairs, |a, _| !a),
            }
        }
        RunArity::One => {
            let srcs = &tape.fanin()[s0..s0 + outs.len()];
            if kind.is_inverting() {
                for (&o, &f) in outs.iter().zip(srcs) {
                    let v = !pv(on, zn, f as usize);
                    put(on, zn, o as usize, v);
                }
            } else {
                for (&o, &f) in outs.iter().zip(srcs) {
                    let v = pv(on, zn, f as usize);
                    put(on, zn, o as usize, v);
                }
            }
        }
        RunArity::Many => {
            let fanin = tape.fanin();
            for g in g0..g1 {
                let s = starts[g] as usize;
                let e = starts[g + 1] as usize;
                let v = crate::eval::eval_gate_fold(
                    kind,
                    pv(on, zn, fanin[s] as usize),
                    fanin[s + 1..e].iter().map(|&f| pv(on, zn, f as usize)),
                );
                put(on, zn, outs[g - g0] as usize, v);
            }
        }
    }
}

/// One shard's reusable bit-plane simulation state: injector tables plus
/// the `2·N` value rows and `2·N` flip-flop state rows. Allocated once
/// per shard and reused across every chunk it runs.
pub(crate) struct PlaneScratch<const N: usize> {
    injector: Injector,
    /// `N` ones-rows, plane `p` at `[p·num_nodes, (p+1)·num_nodes)`.
    ones: Vec<u64>,
    /// `N` zeros-rows, laid out like `ones`.
    zeros: Vec<u64>,
    /// `N` flip-flop ones-rows, plane `p` at `[p·num_dffs, ...)`.
    state_ones: Vec<u64>,
    /// `N` flip-flop zeros-rows, laid out like `state_ones`.
    state_zeros: Vec<u64>,
}

impl<const N: usize> PlaneScratch<N> {
    pub(crate) fn new(tape: &GateTape) -> Self {
        PlaneScratch {
            injector: Injector::new(tape.num_nodes()),
            ones: vec![0; N * tape.num_nodes()],
            zeros: vec![0; N * tape.num_nodes()],
            state_ones: vec![0; N * tape.num_dffs()],
            state_zeros: vec![0; N * tape.num_dffs()],
        }
    }
}

/// One pass over the stream with up to `64·N - 1` faulty machines in the
/// low lanes and the fault-free machine fused into the top lane (plane
/// `N - 1`, bit 63) — semantically identical to the interleaved
/// `run_chunk`, but sweeping plane-major over the tape's blocked tiles.
#[allow(clippy::too_many_lines)]
fn run_chunk_planes<const N: usize>(
    tape: &GateTape,
    source: &dyn VectorSource,
    chunk: &[Fault],
    times: &mut [Option<usize>],
    scratch: &mut PlaneScratch<N>,
    stats: &mut SweepStats,
) -> Result<(), SimError> {
    scratch.injector.load(tape, chunk, 64 * N - 1)?;
    // All-X: neither plane bit set.
    scratch.ones.fill(0);
    scratch.zeros.fill(0);
    scratch.state_ones.fill(0);
    scratch.state_zeros.fill(0);
    let stride = tape.num_nodes();
    let dffs = tape.num_dffs();
    let PlaneScratch { injector, ones, zeros, state_ones, state_zeros } = scratch;
    stats.chunks += 1;
    stats.patches += injector.forced_gates.len() as u64;
    let mut vectors = 0u64;
    let mut early_exit = false;

    let mut undetected: [u64; N] = LaneMask::first_n(chunk.len());

    let gate_out = tape.gate_out();
    let starts = tape.fanin_start();
    let fanin = tape.fanin();
    const GOOD_BIT: u64 = 1 << 63;

    source.visit(&mut |t, vector| {
        vectors += 1;
        // Drive sources, plane by plane (stem forces included: a stuck
        // PI/DFF is stuck every cycle, in exactly its lane's plane).
        for p in 0..N {
            let on = &mut ones[p * stride..(p + 1) * stride];
            let zn = &mut zeros[p * stride..(p + 1) * stride];
            for (i, &pi) in tape.inputs().iter().enumerate() {
                let pi = pi as usize;
                let mut v = PackedValue::splat(Logic::from_bool(vector.get(i)));
                if injector.output_forced(pi) {
                    v = injector.force_output_in_plane(pi, p, v);
                }
                put(on, zn, pi, v);
            }
            for (k, &dff) in tape.dffs().iter().enumerate() {
                let dff = dff as usize;
                let mut v = PackedValue {
                    ones: state_ones[p * dffs + k],
                    zeros: state_zeros[p * dffs + k],
                };
                if injector.output_forced(dff) {
                    v = injector.force_output_in_plane(dff, p, v);
                }
                put(on, zn, dff, v);
            }
        }
        // Blocked combinational sweep: tile-outer, plane-inner, so one
        // tile's CSR metadata and fanin window serve all N planes while
        // cache-hot. The sorted forced-gate list splits each tile into
        // segments with zero per-gate force checks, exactly as in the
        // interleaved engine.
        let forced = &injector.forced_gates;
        let mut fi = 0usize;
        for tile in tape.tiles() {
            let (mut g, end) = (tile.start as usize, tile.end as usize);
            while g < end {
                while fi < forced.len() && (forced[fi].0 as usize) < g {
                    fi += 1;
                }
                let stop = match forced.get(fi) {
                    Some(&(pos, _)) => (pos as usize).min(end),
                    None => end,
                };
                if g < stop {
                    for p in 0..N {
                        eval_segment_rows(
                            tape,
                            tile.kind,
                            tile.arity,
                            g,
                            stop,
                            &mut ones[p * stride..(p + 1) * stride],
                            &mut zeros[p * stride..(p + 1) * stride],
                        );
                    }
                    g = stop;
                }
                if g < end {
                    let Some(&(pos, flags)) = forced.get(fi) else { unreachable!() };
                    debug_assert_eq!(pos as usize, g);
                    let out = gate_out[g] as usize;
                    let s = starts[g] as usize;
                    let e = starts[g + 1] as usize;
                    for p in 0..N {
                        let on = &mut ones[p * stride..(p + 1) * stride];
                        let zn = &mut zeros[p * stride..(p + 1) * stride];
                        let mut v = if flags & IN_FORCE != 0 {
                            let first = injector.forced_input_in_plane(
                                out,
                                0,
                                p,
                                pv(on, zn, fanin[s] as usize),
                            );
                            crate::eval::eval_gate_fold(
                                tile.kind,
                                first,
                                fanin[s + 1..e].iter().enumerate().map(|(i, &f)| {
                                    injector.forced_input_in_plane(
                                        out,
                                        (i + 1) as u32,
                                        p,
                                        pv(on, zn, f as usize),
                                    )
                                }),
                            )
                        } else if e - s == 2 {
                            eval2(
                                tile.kind,
                                pv(on, zn, fanin[s] as usize),
                                pv(on, zn, fanin[s + 1] as usize),
                            )
                        } else {
                            crate::eval::eval_gate_fold(
                                tile.kind,
                                pv(on, zn, fanin[s] as usize),
                                fanin[s + 1..e].iter().map(|&f| pv(on, zn, f as usize)),
                            )
                        };
                        if flags & OUT_FORCE != 0 {
                            v = injector.force_output_in_plane(out, p, v);
                        }
                        put(on, zn, out, v);
                    }
                    g += 1;
                    fi += 1;
                }
            }
        }
        // Compare the faulty lanes against the fused good lane (plane
        // N-1, bit 63): gather the output's plane words row by row.
        for &o in tape.outputs() {
            let o = o as usize;
            let diff_from_zeros = match (
                ones[(N - 1) * stride + o] & GOOD_BIT != 0,
                zeros[(N - 1) * stride + o] & GOOD_BIT != 0,
            ) {
                (true, false) => true,  // good = 1: lanes at 0 differ
                (false, true) => false, // good = 0: lanes at 1 differ
                _ => continue,          // good = X: nothing observable
            };
            let mut newly = [0u64; N];
            let mut any = 0u64;
            for (p, slot) in newly.iter_mut().enumerate() {
                let diff =
                    if diff_from_zeros { zeros[p * stride + o] } else { ones[p * stride + o] };
                *slot = diff & undetected[p];
                any |= *slot;
            }
            if any != 0 {
                newly.for_each_lane(|lane| times[lane] = Some(t));
                undetected = undetected.subtract(newly);
            }
        }
        // Chunk early-exit: every fault has its first detection; the rest
        // of the stream cannot change any result.
        if undetected.is_empty() {
            early_exit = true;
            return false;
        }
        // Clock: latch next state (with D-pin branch forces), plane by
        // plane.
        for p in 0..N {
            let on = &ones[p * stride..(p + 1) * stride];
            let zn = &zeros[p * stride..(p + 1) * stride];
            for (k, (&dff, &src)) in tape.dffs().iter().zip(tape.dff_src()).enumerate() {
                let di = dff as usize;
                let mut v = pv(on, zn, src as usize);
                if injector.input_forced(di) {
                    v = injector.forced_input_in_plane(di, 0, p, v);
                }
                state_ones[p * dffs + k] = v.ones;
                state_zeros[p * dffs + k] = v.zeros;
            }
        }
        true
    });
    stats.vectors += vectors;
    stats.early_exits += u64::from(early_exit);
    Ok(())
}

/// Runs one contiguous shard of the fault list through chunked bit-plane
/// passes of `64·N - 1` faults each, reusing one scratch block.
pub(crate) fn run_shard_planes<const N: usize>(
    tape: &GateTape,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
    sweep: &SweepObs,
) -> Result<(), SimError> {
    let per_chunk = 64 * N - 1;
    let start = sweep.is_active().then(std::time::Instant::now);
    let mut stats = SweepStats::default();
    let mut scratch = PlaneScratch::<N>::new(tape);
    for (chunk, slots) in faults.chunks(per_chunk).zip(times.chunks_mut(per_chunk)) {
        sweep.check_cancelled()?;
        run_chunk_planes::<N>(tape, source, chunk, slots, &mut scratch, &mut stats)?;
    }
    if let Some(start) = start {
        sweep.flush(&stats, elapsed_us(start));
    }
    Ok(())
}

/// [`crate::backend::shard_across_threads`] over the bit-plane engine.
pub(crate) fn run_sharded_planes<const N: usize>(
    tape: &GateTape,
    source: &dyn VectorSource,
    faults: &[Fault],
    times: &mut [Option<usize>],
    threads: usize,
    sweep: &SweepObs,
) -> Result<(), SimError> {
    crate::backend::shard_across_threads(faults, times, threads, 64 * N - 1, |chunk, slots| {
        run_shard_planes::<N>(tape, source, chunk, slots, sweep)
    })
}
