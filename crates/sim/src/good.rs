//! Fault-free (good-machine) and single-faulty-machine scalar simulation.
//!
//! All walks execute the compiled [`GateTape`] — the flat, cache-linear
//! instruction form of a [`Circuit`] — never the node graph itself. The
//! public entry points compile the tape on the fly (compilation is
//! `O(nodes)`, trivial next to any simulation pass); the `pub(crate)`
//! `*_tape` cores take a caller-supplied tape so the engines and facades
//! that simulate repeatedly compile exactly once.

use crate::{Fault, FaultSite, Logic, SimError};
use bist_expand::{TestSequence, VectorSource};
use bist_netlist::{Circuit, GateTape};

/// The fault-free response of a circuit to a test sequence, starting from
/// the all-unknown state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodTrace {
    /// `po[t][i]` = value of the `i`-th primary output at time unit `t`.
    pub po: Vec<Vec<Logic>>,
    /// Flip-flop values after the last vector (circuit DFF order).
    pub final_state: Vec<Logic>,
}

impl GoodTrace {
    /// Number of simulated time units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.po.len()
    }

    /// True if no time units were simulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.po.is_empty()
    }

    /// First time unit at which *every* primary output is binary, if any —
    /// the earliest point from which a MISR can start compacting without
    /// capturing unknowns.
    #[must_use]
    pub fn first_fully_binary_time(&self) -> Option<usize> {
        self.po.iter().position(|outs| outs.iter().all(|v| v.is_binary()))
    }
}

/// Simulates the fault-free circuit under `seq` from the all-`X` state.
///
/// # Errors
///
/// [`SimError::WidthMismatch`] if the sequence width differs from the
/// circuit's primary input count; [`SimError::EmptySequence`] for an empty
/// sequence.
pub fn simulate_good(circuit: &Circuit, seq: &TestSequence) -> Result<GoodTrace, SimError> {
    simulate_good_tape(&GateTape::compile(circuit), seq)
}

/// [`simulate_good`] over a caller-compiled tape — the path the
/// [`FaultSimulator`](crate::FaultSimulator) facade uses so repeated
/// `good()` calls never recompile.
pub(crate) fn simulate_good_tape(
    tape: &GateTape,
    seq: &TestSequence,
) -> Result<GoodTrace, SimError> {
    simulate_machine(tape, seq, None)
}

/// Simulates the circuit with a single stuck-at fault injected, from the
/// all-`X` state — the faulty machine a MISR would observe.
///
/// # Errors
///
/// Same as [`simulate_good`].
pub fn simulate_faulty(
    circuit: &Circuit,
    seq: &TestSequence,
    fault: Fault,
) -> Result<GoodTrace, SimError> {
    simulate_machine(&GateTape::compile(circuit), seq, Some(fault))
}

/// The single-fault injection hooks a scalar tape walk needs, decomposed
/// from a [`Fault`] once up front — the one definition of scalar force
/// semantics, shared by every scalar walk in this crate (streams here,
/// the stepped simulator, the scalar backend).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScalarForce {
    out: Option<(usize, Logic)>,
    input: Option<(usize, u32, Logic)>,
}

impl ScalarForce {
    pub(crate) fn of(fault: Option<Fault>) -> Self {
        let out = match fault {
            Some(Fault { site: FaultSite::Output(n), stuck }) => {
                Some((n.index(), Logic::from_bool(stuck)))
            }
            _ => None,
        };
        let input = match fault {
            Some(Fault { site: FaultSite::Input { node, pin }, stuck }) => {
                Some((node.index(), pin, Logic::from_bool(stuck)))
            }
            _ => None,
        };
        ScalarForce { out, input }
    }

    #[inline]
    pub(crate) fn read(&self, values: &[Logic], consumer: usize, pin: u32, src: usize) -> Logic {
        match self.input {
            Some((n, p, v)) if n == consumer && p == pin => v,
            _ => values[src],
        }
    }

    #[inline]
    pub(crate) fn force_out(&self, node: usize, v: Logic) -> Logic {
        match self.out {
            Some((n, f)) if n == node => f,
            _ => v,
        }
    }
}

/// One combinational sweep of the tape over a scalar value table, with
/// `force` applied — the single definition of scalar gate-tape execution
/// shared by every scalar walk in this crate.
#[inline]
fn sweep_tape(tape: &GateTape, values: &mut [Logic], force: &ScalarForce) {
    let ops = tape.ops();
    let outs = tape.gate_out();
    let starts = tape.fanin_start();
    let fanin = tape.fanin();
    for g in 0..ops.len() {
        let out = outs[g] as usize;
        let s = starts[g] as usize;
        let e = starts[g + 1] as usize;
        let v = crate::eval::eval_scalar_fold(
            ops[g],
            fanin[s..e]
                .iter()
                .enumerate()
                .map(|(p, &f)| force.read(values, out, p as u32, f as usize)),
        );
        values[out] = force.force_out(out, v);
    }
}

/// Streams one machine (fault-free or single-fault) over a vector source,
/// delivering the primary-output values of each time unit to `on_po`.
/// The visitor returns `true` to continue; returning `false` stops the
/// stream early. Returns the flip-flop state after the last simulated
/// vector.
pub(crate) fn stream_machine_tape(
    tape: &GateTape,
    source: &dyn VectorSource,
    fault: Option<Fault>,
    on_po: &mut dyn FnMut(usize, &[Logic]) -> bool,
) -> Result<Vec<Logic>, SimError> {
    validate_width(tape.num_inputs(), source)?;
    let force = ScalarForce::of(fault);

    let mut values = vec![Logic::X; tape.num_nodes()];
    let mut state = vec![Logic::X; tape.num_dffs()];
    let mut po_scratch: Vec<Logic> = Vec::with_capacity(tape.num_outputs());

    source.visit(&mut |t, vector| {
        // Drive sources.
        for (i, &pi) in tape.inputs().iter().enumerate() {
            let pi = pi as usize;
            values[pi] = force.force_out(pi, Logic::from_bool(vector.get(i)));
        }
        for (k, &dff) in tape.dffs().iter().enumerate() {
            let dff = dff as usize;
            values[dff] = force.force_out(dff, state[k]);
        }
        // Combinational sweep.
        sweep_tape(tape, &mut values, &force);
        // Observe.
        po_scratch.clear();
        po_scratch.extend(tape.outputs().iter().map(|&o| values[o as usize]));
        let go_on = on_po(t, &po_scratch);
        // Clock (with D-pin injection).
        for (k, (&dff, &src)) in tape.dffs().iter().zip(tape.dff_src()).enumerate() {
            state[k] = force.read(&values, dff as usize, 0, src as usize);
        }
        go_on
    });

    Ok(state)
}

/// Width/emptiness validation shared by every simulation engine: rejects
/// mismatched and empty streams before anything runs, so all backends
/// fail identically on bad input — including with an empty fault list.
pub(crate) fn validate_width(num_inputs: usize, source: &dyn VectorSource) -> Result<(), SimError> {
    if source.width() != num_inputs {
        return Err(SimError::WidthMismatch {
            circuit_inputs: num_inputs,
            sequence_width: source.width(),
        });
    }
    if source.is_empty() {
        return Err(SimError::EmptySequence);
    }
    Ok(())
}

/// Visitor of the fused pair walk: receives the time unit, the fault-free
/// primary outputs and the faulty primary outputs; returns `true` to keep
/// streaming.
pub(crate) type PairVisitor<'v> = dyn FnMut(usize, &[Logic], &[Logic]) -> bool + 'v;

/// Streams the fault-free machine and one faulty machine in lockstep over
/// the tape, delivering both primary-output slices per time unit — the
/// fused good-machine walk of the scalar reference backend. Nothing is
/// collected: detection is O(1) in stream length.
pub(crate) fn stream_machine_fused_tape(
    tape: &GateTape,
    source: &dyn VectorSource,
    fault: Fault,
    on_po: &mut PairVisitor<'_>,
) -> Result<(), SimError> {
    validate_width(tape.num_inputs(), source)?;
    let force = ScalarForce::of(Some(fault));

    let n = tape.num_nodes();
    let mut good = vec![Logic::X; n];
    let mut bad = vec![Logic::X; n];
    let mut good_state = vec![Logic::X; tape.num_dffs()];
    let mut bad_state = vec![Logic::X; tape.num_dffs()];
    let mut good_po: Vec<Logic> = Vec::with_capacity(tape.num_outputs());
    let mut bad_po: Vec<Logic> = Vec::with_capacity(tape.num_outputs());

    source.visit(&mut |t, vector| {
        // Drive sources on both machines.
        for (i, &pi) in tape.inputs().iter().enumerate() {
            let pi = pi as usize;
            let v = Logic::from_bool(vector.get(i));
            good[pi] = v;
            bad[pi] = force.force_out(pi, v);
        }
        for (k, &dff) in tape.dffs().iter().enumerate() {
            let dff = dff as usize;
            good[dff] = good_state[k];
            bad[dff] = force.force_out(dff, bad_state[k]);
        }
        // One combinational sweep over both value tables: each gate's
        // metadata (opcode, CSR window) is read once and drives both
        // machines, the scalar analogue of the packed engines' fused
        // good lane.
        let ops = tape.ops();
        let outs = tape.gate_out();
        let starts = tape.fanin_start();
        let fanin = tape.fanin();
        for g in 0..ops.len() {
            let out = outs[g] as usize;
            let window = &fanin[starts[g] as usize..starts[g + 1] as usize];
            good[out] =
                crate::eval::eval_scalar_fold(ops[g], window.iter().map(|&f| good[f as usize]));
            let v = crate::eval::eval_scalar_fold(
                ops[g],
                window
                    .iter()
                    .enumerate()
                    .map(|(p, &f)| force.read(&bad, out, p as u32, f as usize)),
            );
            bad[out] = force.force_out(out, v);
        }
        // Observe both machines.
        good_po.clear();
        good_po.extend(tape.outputs().iter().map(|&o| good[o as usize]));
        bad_po.clear();
        bad_po.extend(tape.outputs().iter().map(|&o| bad[o as usize]));
        let go_on = on_po(t, &good_po, &bad_po);
        // Clock both machines (with D-pin injection on the faulty one).
        for (k, (&dff, &src)) in tape.dffs().iter().zip(tape.dff_src()).enumerate() {
            good_state[k] = good[src as usize];
            bad_state[k] = force.read(&bad, dff as usize, 0, src as usize);
        }
        go_on
    });

    Ok(())
}

fn simulate_machine(
    tape: &GateTape,
    seq: &TestSequence,
    fault: Option<Fault>,
) -> Result<GoodTrace, SimError> {
    let mut po = Vec::with_capacity(seq.len());
    let final_state = stream_machine_tape(tape, seq, fault, &mut |_, outs| {
        po.push(outs.to_vec());
        true
    })?;
    Ok(GoodTrace { po, final_state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn shift_register_propagates_after_unknown_flush() {
        let c = benchmarks::shift_register3();
        // din=1,en=1 for 5 cycles: q2 = X,X,X then 1s.
        let t = simulate_good(&c, &seq("11 11 11 11 11")).unwrap();
        assert_eq!(t.po[0][0], Logic::X);
        assert_eq!(t.po[1][0], Logic::X);
        assert_eq!(t.po[2][0], Logic::X);
        assert_eq!(t.po[3][0], Logic::One);
        assert_eq!(t.po[4][0], Logic::One);
        assert_eq!(t.first_fully_binary_time(), Some(3));
    }

    #[test]
    fn shift_register_delays_by_three() {
        let c = benchmarks::shift_register3();
        // Pattern 1,0,1,1,0 on din with en=1: q2 at t = din at t-3.
        let t = simulate_good(&c, &seq("11 01 11 11 01 01 01 01")).unwrap();
        let dins = [true, false, true, true, false];
        for (i, &d) in dins.iter().enumerate() {
            assert_eq!(t.po[i + 3][0], Logic::from_bool(d), "t={}", i + 3);
        }
    }

    #[test]
    fn toggle_counts() {
        let c = benchmarks::toggle();
        // en=1 first cycle resolves nothing (q unknown: X xor 1 = X).
        let t = simulate_good(&c, &seq("1 1 1")).unwrap();
        assert_eq!(t.po[0][0], Logic::X);
        assert_eq!(t.po[2][0], Logic::X, "toggle never self-synchronizes from X");
    }

    #[test]
    fn comb_mix_truth() {
        let c = benchmarks::comb_mix();
        // inputs a,b,c = 1,1,0: maj=1, par=0, out=NAND(1,0)=1.
        let t = simulate_good(&c, &seq("110")).unwrap();
        assert_eq!(t.po[0], vec![Logic::One, Logic::Zero, Logic::One]);
        // 1,1,1: maj=1, par=1, out=0.
        let t = simulate_good(&c, &seq("111")).unwrap();
        assert_eq!(t.po[0], vec![Logic::One, Logic::One, Logic::Zero]);
    }

    #[test]
    fn s27_synchronizes() {
        // The s27 state is fully determined after a few vectors of the
        // paper's Table 2 sequence.
        let c = benchmarks::s27();
        let t0 = seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011");
        let t = simulate_good(&c, &t0).unwrap();
        assert_eq!(t.len(), 10);
        assert!(t.first_fully_binary_time().is_some());
        assert!(t.final_state.iter().all(|v| v.is_binary()));
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = benchmarks::s27();
        assert_eq!(
            simulate_good(&c, &seq("000")),
            Err(SimError::WidthMismatch { circuit_inputs: 4, sequence_width: 3 })
        );
    }

    #[test]
    fn final_state_feeds_forward() {
        let c = benchmarks::shift_register3();
        let t = simulate_good(&c, &seq("11 11 11 11")).unwrap();
        assert_eq!(t.final_state, vec![Logic::One; 3]);
    }

    #[test]
    fn faulty_trace_differs_where_simulator_detects() {
        use crate::{Fault, FaultSimulator};
        let c = benchmarks::shift_register3();
        let q2 = c.find("q2").unwrap();
        let f = Fault::output(q2, false);
        let s = seq("11 11 11 11 11");
        let good = simulate_good(&c, &s).unwrap();
        let bad = simulate_faulty(&c, &s, f).unwrap();
        // Detection time from the packed simulator must be exactly the
        // first time the scalar traces differ with binary values.
        let t = FaultSimulator::new(&c).first_detection(&s, f).unwrap().unwrap();
        assert_ne!(good.po[t], bad.po[t]);
        for u in 0..t {
            let observable = good.po[u]
                .iter()
                .zip(&bad.po[u])
                .any(|(g, b)| g.is_binary() && b.is_binary() && g != b);
            assert!(!observable, "difference before detection time at u={u}");
        }
    }

    #[test]
    fn fused_pair_matches_separate_machines() {
        use crate::Fault;
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let t0 = seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011");
        let g8 = c.find("G8").unwrap();
        let g5 = c.dffs()[0];
        for fault in
            [Fault::output(g8, true), Fault::input(g8, 0, false), Fault::input(g5, 0, true)]
        {
            let good = simulate_good(&c, &t0).unwrap();
            let bad = simulate_faulty(&c, &t0, fault).unwrap();
            let mut steps = 0usize;
            stream_machine_fused_tape(&tape, &t0, fault, &mut |t, g, b| {
                assert_eq!(g, &good.po[t][..], "good PO at t={t} for {fault}");
                assert_eq!(b, &bad.po[t][..], "faulty PO at t={t} for {fault}");
                steps += 1;
                true
            })
            .unwrap();
            assert_eq!(steps, t0.len());
        }
    }

    #[test]
    fn fused_pair_validates_input() {
        use crate::Fault;
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        let g8 = c.find("G8").unwrap();
        let err = stream_machine_fused_tape(
            &tape,
            &seq("000"),
            Fault::output(g8, true),
            &mut |_, _, _| panic!("must not run"),
        );
        assert_eq!(err, Err(SimError::WidthMismatch { circuit_inputs: 4, sequence_width: 3 }));
    }

    #[test]
    fn faulty_trace_with_input_pin_fault() {
        use crate::Fault;
        let c = benchmarks::s27();
        let g17 = c.find("G17").unwrap();
        let s = seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011");
        let good = simulate_good(&c, &s).unwrap();
        let bad = simulate_faulty(&c, &s, Fault::input(g17, 0, true)).unwrap();
        assert_ne!(good.po, bad.po, "branch fault must perturb the PO trace");
    }
}
