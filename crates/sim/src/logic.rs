use std::fmt;

/// A three-valued logic value: `0`, `1`, or unknown (`X`).
///
/// Sequential circuits are simulated from the *all-unspecified* state
/// (paper §3.1: a subsequence detects a fault *"assuming that both the
/// fault free and the faulty circuits are in the all-unspecified states
/// before the subsequence is applied"*), so unknowns must be first-class.
/// The usual pessimistic 3-valued algebra is used.
///
/// # Example
///
/// ```
/// use bist_sim::Logic;
///
/// assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero); // 0 controls AND
/// assert_eq!(Logic::One.and(Logic::X), Logic::X);
/// assert_eq!(Logic::One.or(Logic::X), Logic::One);    // 1 controls OR
/// assert_eq!(!Logic::X, Logic::X);  // NOT via std::ops::Not
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic {
    /// Converts a boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for binary values, `None` for `X`.
    #[must_use]
    pub fn to_option(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Whether the value is 0 or 1 (not `X`).
    #[must_use]
    pub fn is_binary(self) -> bool {
        self != Logic::X
    }

    /// Three-valued AND.
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued OR.
    #[must_use]
    pub fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Three-valued XOR.
    #[must_use]
    pub fn xor(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from_bool(a != b),
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;

    /// Three-valued NOT.
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "x",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Not;
    use Logic::{One, Zero, X};

    const ALL: [Logic; 3] = [Zero, One, X];

    #[test]
    fn not_truth_table() {
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(X.not(), X);
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(Zero.and(Zero), Zero);
        assert_eq!(Zero.and(One), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(One.or(Zero), One);
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.or(X), X);
    }

    #[test]
    fn xor_truth_table() {
        assert_eq!(Zero.xor(Zero), Zero);
        assert_eq!(Zero.xor(One), One);
        assert_eq!(One.xor(One), Zero);
        for v in ALL {
            assert_eq!(v.xor(X), X);
            assert_eq!(X.xor(v), X);
        }
    }

    #[test]
    fn operators_are_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn de_morgan_holds_in_three_values() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from(true), One);
        assert_eq!(Logic::from(false), Zero);
        assert_eq!(One.to_option(), Some(true));
        assert_eq!(X.to_option(), None);
        assert!(One.is_binary());
        assert!(!X.is_binary());
        assert_eq!(Logic::default(), X);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{Zero}{One}{X}"), "01x");
    }
}
