//! Fault-site-mapped simulation over a staged compile.
//!
//! An optimized [`GateTape`](bist_netlist::GateTape) no longer carries a
//! patch point for every original fault site, so faults cannot be
//! injected blindly by node index. [`detection_times_mapped`] is the
//! routing layer between a fault list (defined on the *original*
//! circuit) and the two tapes of a [`CompiledCircuit`]: each fault's
//! [`SiteRoute`] decides where — and whether — it is simulated, and the
//! per-route results are scattered back into original fault order, so a
//! mapped run is bit-identical to running every fault on the unoptimized
//! baseline.
//!
//! * [`Direct`](SiteRoute::Direct) faults run on the optimized tape
//!   unchanged.
//! * [`Redirect`](SiteRoute::Redirect) stem faults run on the optimized
//!   tape rewritten as input-pin faults at their sole surviving consumer.
//! * [`Pinned`](SiteRoute::Pinned) faults run on the baseline tape.
//! * [`Untestable`](SiteRoute::Untestable) faults are reported undetected
//!   without simulating anything.

use crate::backend::SimBackend;
use crate::{Fault, FaultSite, SimError};
use bist_expand::VectorSource;
use bist_netlist::{CompiledCircuit, SiteRoute};
use bist_obs::Obs;

/// First detection time of every fault in `faults` under the replayable
/// `source`, routing each fault through `compiled`'s
/// [`SiteMap`](bist_netlist::SiteMap). Results are indexed like `faults`.
///
/// For an identity compile this is exactly
/// [`SimBackend::detection_times_tape`] on the (shared) tape; otherwise
/// the fault list is partitioned by route, simulated in at most two
/// passes (`source` is replayed for the pinned pass) and merged.
///
/// # Errors
///
/// Width mismatch / empty stream, from the underlying engine.
pub fn detection_times_mapped(
    backend: &dyn SimBackend,
    compiled: &CompiledCircuit,
    source: &dyn VectorSource,
    faults: &[Fault],
) -> Result<Vec<Option<usize>>, SimError> {
    detection_times_mapped_obs(backend, compiled, source, faults, &Obs::noop())
}

/// [`detection_times_mapped`] with a telemetry sink threaded through to
/// the engine passes
/// ([`SimBackend::detection_times_tape_obs`]). Observation-only: results
/// are bit-identical to the uninstrumented call.
///
/// # Errors
///
/// Width mismatch / empty stream, from the underlying engine.
pub fn detection_times_mapped_obs(
    backend: &dyn SimBackend,
    compiled: &CompiledCircuit,
    source: &dyn VectorSource,
    faults: &[Fault],
    obs: &Obs,
) -> Result<Vec<Option<usize>>, SimError> {
    let map = compiled.site_map();
    if map.is_identity() {
        return backend.detection_times_tape_obs(compiled.tape(), source, faults, obs);
    }
    let mut direct: Vec<Fault> = Vec::new();
    let mut direct_idx: Vec<usize> = Vec::new();
    let mut pinned: Vec<Fault> = Vec::new();
    let mut pinned_idx: Vec<usize> = Vec::new();
    for (i, &f) in faults.iter().enumerate() {
        let route = match f.site {
            FaultSite::Output(node) => map.output_route(node),
            FaultSite::Input { node, .. } => map.input_route(node),
        };
        match route {
            SiteRoute::Direct => {
                direct.push(f);
                direct_idx.push(i);
            }
            SiteRoute::Redirect { node, pin } => {
                direct.push(Fault::input(node, pin, f.stuck));
                direct_idx.push(i);
            }
            SiteRoute::Pinned => {
                pinned.push(f);
                pinned_idx.push(i);
            }
            SiteRoute::Untestable => {}
        }
    }
    let mut results = vec![None; faults.len()];
    if direct.is_empty() && pinned.is_empty() {
        // Nothing to simulate, but keep the engine's argument checking
        // (width mismatch, empty stream) observable.
        backend.detection_times_tape_obs(compiled.tape(), source, &[], obs)?;
        return Ok(results);
    }
    if !direct.is_empty() {
        let times = backend.detection_times_tape_obs(compiled.tape(), source, &direct, obs)?;
        for (k, t) in times.into_iter().enumerate() {
            results[direct_idx[k]] = t;
        }
    }
    if !pinned.is_empty() {
        let times = backend.detection_times_tape_obs(compiled.baseline(), source, &pinned, obs)?;
        for (k, t) in times.into_iter().enumerate() {
            results[pinned_idx[k]] = t;
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PackedBackend;
    use crate::{collapse, fault_universe};
    use bist_expand::TestSequence;
    use bist_netlist::{benchmarks, compile_staged, CompileOptions};

    fn table2_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    #[test]
    fn mapped_s27_matches_baseline_on_every_route() {
        let c = benchmarks::s27();
        let compiled = compile_staged(&c, CompileOptions::all());
        let faults = fault_universe(&c);
        let t0 = table2_t0();
        let backend = PackedBackend;
        let baseline = backend.detection_times_tape(compiled.baseline(), &t0, &faults).unwrap();
        let mapped = detection_times_mapped(&backend, &compiled, &t0, &faults).unwrap();
        assert_eq!(mapped, baseline);
        let reps = collapse(&c, &faults).representatives().to_vec();
        let mapped_reps = detection_times_mapped(&backend, &compiled, &t0, &reps).unwrap();
        assert_eq!(mapped_reps.iter().filter(|t| t.is_some()).count(), 32);
    }

    #[test]
    fn identity_compile_short_circuits() {
        let c = benchmarks::s27();
        let compiled = compile_staged(&c, CompileOptions::none());
        let faults = fault_universe(&c);
        let t0 = table2_t0();
        let backend = PackedBackend;
        assert_eq!(
            detection_times_mapped(&backend, &compiled, &t0, &faults).unwrap(),
            backend.detection_times_tape(compiled.tape(), &t0, &faults).unwrap()
        );
    }

    #[test]
    fn errors_surface_even_with_no_routable_faults() {
        let c = benchmarks::s27();
        let compiled = compile_staged(&c, CompileOptions::all());
        let bad: TestSequence = "000 000".parse().unwrap();
        let err = detection_times_mapped(&PackedBackend, &compiled, &bad, &[]);
        assert!(matches!(err, Err(SimError::WidthMismatch { .. })));
    }
}
