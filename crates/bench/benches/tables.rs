//! End-to-end table-row regeneration benchmarks — one per paper table.
//!
//! Each benchmark measures producing one table's row for `s27` from
//! scratch (the full pipeline for Tables 3/4/5, the detection-table dump
//! for Table 2, the window map for Figure 1).
//!
//! Writes `BENCH_tables.json` into the workspace root.

use bist_bench::timing::{self, Report};
use bist_bench::{run_pipeline, PipelineConfig};
use subseq_bist::core::figure1;
use subseq_bist::expand::TestSequence;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultSimulator};

fn quick_config() -> PipelineConfig {
    PipelineConfig { seed: 3, ns: vec![1, 2], t0_compaction_budget: 50, t0_max_length: 64 }
}

fn main() {
    timing::init_cli();
    let mut report = Report::new("tables");

    let entry = benchmarks::suite().into_iter().next().expect("s27 entry");

    {
        let circuit = benchmarks::s27();
        let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        let sim = FaultSimulator::new(&circuit);
        let t0: TestSequence =
            "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
        report.run("table2_row_s27", || sim.detection_times(&t0, &faults).expect("ok"));
    }

    report
        .run("table3_row_s27", || run_pipeline(&entry, &quick_config()).expect("ok").table3_row());
    report
        .run("table4_row_s27", || run_pipeline(&entry, &quick_config()).expect("ok").table4_row());
    report
        .run("table5_row_s27", || run_pipeline(&entry, &quick_config()).expect("ok").table5_row());

    let out = run_pipeline(&entry, &quick_config()).expect("ok");
    report.run("figure1_s27", || figure1(out.t0_len, &out.scheme.best_run().sequences));

    let path = report.write_json().expect("write BENCH_tables.json");
    println!("wrote {}", path.display());
}
