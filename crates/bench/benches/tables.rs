//! End-to-end table-row regeneration benchmarks — one per paper table.
//!
//! Each benchmark measures producing one table's row for `s27` from
//! scratch (the full pipeline for Tables 3/4/5, the detection-table dump
//! for Table 2, the window map for Figure 1).

use bist_bench::{run_pipeline, PipelineConfig};
use bist_core::figure1;
use bist_expand::TestSequence;
use bist_netlist::benchmarks;
use bist_sim::{collapse, fault_universe, FaultSimulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_config() -> PipelineConfig {
    PipelineConfig { seed: 3, ns: vec![1, 2], t0_compaction_budget: 50, t0_max_length: 64 }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    let entry = benchmarks::suite().into_iter().next().expect("s27 entry");

    group.bench_function("table2_row_s27", |b| {
        let circuit = benchmarks::s27();
        let faults =
            collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        let sim = FaultSimulator::new(&circuit);
        let t0: TestSequence =
            "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
        b.iter(|| black_box(sim.detection_times(&t0, &faults).expect("ok")))
    });

    group.bench_function("table3_row_s27", |b| {
        b.iter(|| black_box(run_pipeline(&entry, &quick_config()).expect("ok").table3_row()))
    });

    group.bench_function("table4_row_s27", |b| {
        b.iter(|| black_box(run_pipeline(&entry, &quick_config()).expect("ok").table4_row()))
    });

    group.bench_function("table5_row_s27", |b| {
        b.iter(|| black_box(run_pipeline(&entry, &quick_config()).expect("ok").table5_row()))
    });

    group.bench_function("figure1_s27", |b| {
        let out = run_pipeline(&entry, &quick_config()).expect("ok");
        b.iter(|| black_box(figure1(out.t0_len, &out.scheme.best_run().sequences)))
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
