//! Fault-simulation benchmarks: 64 packed fault machines per pass vs one
//! fault at a time (both as the serial use of the packed engine and as
//! the dedicated scalar backend), plus the good-machine baseline.
//!
//! Writes `BENCH_fault_sim.json` into the workspace root.

use bist_bench::timing::Report;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultSimulator};
use subseq_bist::tgen::Lfsr;

fn main() {
    let mut report = Report::new("fault_sim");

    let circuits = vec![benchmarks::s27(), benchmarks::suite()[1].build().expect("a298 builds")];
    for circuit in &circuits {
        let faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
        let sim = FaultSimulator::new(circuit);
        let scalar = FaultSimulator::scalar(circuit);
        let seq = Lfsr::new(42).sequence(circuit.num_inputs(), 64);
        let name = circuit.name().to_string();

        report
            .run(format!("parallel64/{name}"), || sim.detection_times(&seq, &faults).expect("ok"));
        report.run(format!("serial/{name}"), || {
            faults.iter().map(|&f| sim.first_detection(&seq, f).expect("ok")).collect::<Vec<_>>()
        });
        report.run(format!("scalar_backend/{name}"), || {
            scalar.detection_times(&seq, &faults).expect("ok")
        });
        report.run(format!("good_only/{name}"), || sim.good(&seq).expect("ok"));
    }

    let path = report.write_json().expect("write BENCH_fault_sim.json");
    println!("wrote {}", path.display());
}
