//! Fault-simulation benchmarks: the engine ladder from one-fault-at-a-time
//! scalar simulation up to the thread-sharded 256/512-lane wide-word
//! engine, on small circuits and on the `a5378`/`a35932` analogs where
//! throughput on the expanded vector stream is the binding constraint.
//!
//! Since PR 4 every engine executes the compiled gate tape; the historic
//! row names (`packed64/*`, `sharded/*`) are kept so `BENCH_fault_sim.json`
//! tracks the node-graph → compiled-core trajectory across PRs. Groups
//! covering the tape itself: `compile_tape/*` (one-off tape construction
//! per circuit), `detect/tape/*` (detection over a shared precompiled
//! tape — the Session/campaign hot path), `detect/blocked/*` (the PR 5
//! blocked bit-plane sweep per word width) and `state_layout/*` (the A/B
//! between the bit-plane layout and the interleaved array-of-words
//! layout at the memory-bound widths — the row pair that decides the
//! production default per host).
//!
//! Writes `BENCH_fault_sim.json` into the workspace root. Run with
//! `--smoke` (as CI does) for a fast schema-checking pass.

use bist_bench::timing::{self, Report};
use subseq_bist::expand::expansion::{Expand, ExpansionConfig};
use subseq_bist::netlist::{benchmarks, compile_staged, GateTape};
use subseq_bist::sim::{
    collapse, detection_times_mapped, fault_universe, Fault, FaultSimulator, PackedBackend,
    ShardedBackend, SimBackend, StateLayout, WordWidth,
};
use subseq_bist::tgen::Lfsr;
use subseq_bist::CompileOptions;

/// The sharded-engine sweep: a progression of thread counts and word
/// widths over the same fault list.
const SWEEP: [(usize, usize); 6] = [(1, 64), (2, 64), (4, 64), (1, 256), (4, 256), (4, 512)];

fn main() {
    timing::init_cli();
    let mut report = Report::new("fault_sim");

    // Small circuits: the full ladder including the scalar oracle.
    let circuits = vec![benchmarks::s27(), benchmarks::suite()[1].build().expect("a298 builds")];
    for circuit in &circuits {
        let faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
        let sim = FaultSimulator::new(circuit);
        let scalar = FaultSimulator::scalar(circuit);
        let seq = Lfsr::new(42).sequence(circuit.num_inputs(), 64);
        let name = circuit.name().to_string();

        report.run(format!("compile_tape/{name}"), || GateTape::compile(circuit));
        report
            .run(format!("parallel64/{name}"), || sim.detection_times(&seq, &faults).expect("ok"));
        report.run(format!("serial/{name}"), || {
            faults.iter().map(|&f| sim.first_detection(&seq, f).expect("ok")).collect::<Vec<_>>()
        });
        report.run(format!("scalar_backend/{name}"), || {
            scalar.detection_times(&seq, &faults).expect("ok")
        });
        report.run(format!("good_only/{name}"), || sim.good(&seq).expect("ok"));
    }

    // Staged-compile optimization per suite circuit: each row times the
    // full pass pipeline, and the removal count rides in the row name
    // (`optimize/compile/<circuit>/removedN`) so BENCH_fault_sim.json
    // records gates-removed without a separate scalar channel.
    let opt_suite =
        if timing::smoke() { benchmarks::suite_up_to(600) } else { benchmarks::suite() };
    for entry in opt_suite {
        let circuit = entry.build().expect("suite circuit builds");
        let removed = compile_staged(&circuit, CompileOptions::all()).gates_removed();
        report.run(format!("optimize/compile/{}/removed{removed}", entry.name), || {
            compile_staged(&circuit, CompileOptions::all())
        });
    }

    // Large analogs: packed vs the sharded sweep on an expanded stream —
    // the workload the paper's scheme actually runs (8·n·|S| vectors).
    let large: &[(&str, usize, usize)] = if timing::smoke() {
        &[("a5378", 256, 2)] // tiny sample: schema check only
    } else {
        &[("a5378", 2048, 4), ("a35932", 1024, 2)]
    };
    for &(name, max_faults, s_len) in large {
        let entry =
            benchmarks::suite().into_iter().find(|e| e.name == name).expect("analog in suite");
        let circuit = entry.build().expect("analog builds");
        let mut faults: Vec<Fault> =
            collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        faults.truncate(max_faults);
        let s = Lfsr::new(5378).sequence(circuit.num_inputs(), s_len);
        let cfg = ExpansionConfig::new(2).expect("n >= 1");
        let stream = cfg.stream(&s);
        let tape = GateTape::compile(&circuit);
        let packed = FaultSimulator::new(&circuit);

        // Tape construction is a one-off per circuit; the row exists to
        // prove it stays negligible next to a single detection pass.
        report.run(format!("compile_tape/{name}"), || GateTape::compile(&circuit));
        // The compiled-core hot path: detection over a shared,
        // precompiled tape (what Session/campaign runs actually execute).
        let tape_ns = report
            .run(format!("detect/tape/{name}/f{max_faults}"), || {
                PackedBackend.detection_times_tape(&tape, &stream, &faults).expect("ok")
            })
            .median_ns;
        // The same end-to-end detection through the optimized compile and
        // the fault-site map — the `--optimize` campaign hot path.
        let compiled = compile_staged(&circuit, CompileOptions::all());
        let opt_ns = report
            .run(format!("optimize/detect/{name}/f{max_faults}"), || {
                detection_times_mapped(&PackedBackend, &compiled, &stream, &faults).expect("ok")
            })
            .median_ns;
        println!(
            "{name}: -{} gates, detect {:.1} ms unoptimized vs {:.1} ms optimized ({:.2}x)",
            compiled.gates_removed(),
            tape_ns / 1e6,
            opt_ns / 1e6,
            tape_ns / opt_ns
        );
        // The blocked bit-plane sweep at every word width (single
        // thread, shared tape) — the alternative state layout.
        for width in [64usize, 256, 512] {
            let engine = ShardedBackend::with_layout(
                1,
                WordWidth::from_lanes(width).expect("valid"),
                StateLayout::BitPlanes,
            )
            .expect("threads >= 1");
            report.run(format!("detect/blocked/{name}/w{width}"), || {
                engine.detection_times_tape(&tape, &stream, &faults).expect("ok")
            });
        }
        // State-layout A/B at the memory-bound widths: the bit-plane
        // layout vs the interleaved array-of-words layout, same tape,
        // same stream, same fault list — the row pair that decides the
        // production default per host.
        for width in [256usize, 512] {
            for (layout, label) in
                [(StateLayout::BitPlanes, "planes"), (StateLayout::Interleaved, "interleaved")]
            {
                let engine = ShardedBackend::with_layout(
                    1,
                    WordWidth::from_lanes(width).expect("valid"),
                    layout,
                )
                .expect("threads >= 1");
                report.run(format!("state_layout/{label}/{name}/w{width}"), || {
                    engine.detection_times_tape(&tape, &stream, &faults).expect("ok")
                });
            }
        }

        let baseline = report
            .run(format!("packed64/{name}/f{max_faults}"), || {
                packed.detection_times_stream(&stream, &faults).expect("ok")
            })
            .median_ns;
        let mut best = f64::INFINITY;
        for (threads, width) in SWEEP {
            let engine =
                ShardedBackend::new(threads, WordWidth::from_lanes(width).expect("valid width"))
                    .expect("threads >= 1");
            let m = report.run(format!("sharded/{name}/w{width}_t{threads}"), || {
                engine.detection_times_tape(&tape, &stream, &faults).expect("ok")
            });
            best = best.min(m.median_ns);
        }
        println!(
            "{name}: packed64 {:.1} ms vs best sharded {:.1} ms ({:.2}x)",
            baseline / 1e6,
            best / 1e6,
            baseline / best
        );
    }

    let path = report.write_json().expect("write BENCH_fault_sim.json");
    println!("wrote {}", path.display());
}
