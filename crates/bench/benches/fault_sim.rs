//! Fault-simulation benchmarks, including the parallel-vs-serial ablation
//! called out in DESIGN.md: 64 packed fault machines per pass vs one
//! fault at a time.

use bist_netlist::benchmarks;
use bist_sim::{collapse, fault_universe, FaultSimulator};
use bist_tgen::Lfsr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(20);

    let circuits = vec![
        benchmarks::s27(),
        benchmarks::suite()[1].build().expect("a298 builds"),
    ];
    for circuit in &circuits {
        let faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
        let sim = FaultSimulator::new(circuit);
        let seq = Lfsr::new(42).sequence(circuit.num_inputs(), 64);

        group.bench_with_input(
            BenchmarkId::new("parallel64", circuit.name()),
            &(),
            |b, ()| b.iter(|| black_box(sim.detection_times(&seq, &faults).expect("ok"))),
        );
        group.bench_with_input(BenchmarkId::new("serial", circuit.name()), &(), |b, ()| {
            b.iter(|| {
                let times: Vec<_> = faults
                    .iter()
                    .map(|&f| sim.first_detection(&seq, f).expect("ok"))
                    .collect();
                black_box(times)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("good_only", circuit.name()),
            &(),
            |b, ()| b.iter(|| black_box(sim.good(&seq).expect("ok"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
