//! Expansion micro-benchmarks: streaming vs materialized expansion, the
//! cycle-accurate hardware model, and packed vs scalar fault-simulation
//! backends on benchmark circuits.
//!
//! Writes `BENCH_expansion.json` into the workspace root — the first
//! point of the performance trajectory tracked across PRs.
//!
//! The paper's own tables use ISCAS-89 circuits (s208 etc.); this suite
//! embeds the real `s27` plus synthetic analogs, so the backend
//! comparison runs on `s27` and the `a298` analog.

use bist_bench::timing::{self, Report};
use subseq_bist::expand::expansion::{Expand, ExpansionConfig};
use subseq_bist::expand::hardware::OnChipExpander;
use subseq_bist::expand::{TestSequence, TestVector, VectorSource};
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultSimulator};

fn sample_sequence(len: usize, width: usize) -> TestSequence {
    TestSequence::from_vectors(
        (0..len).map(|i| TestVector::from_fn(width, |b| (i * 7 + b * 3) % 5 < 2)).collect(),
    )
    .expect("nonempty")
}

fn main() {
    timing::init_cli();
    let mut report = Report::new("expansion");

    // Streaming vs materialized expansion (pure sequence manipulation).
    for &(len, n) in &[(8usize, 2usize), (32, 8), (128, 16)] {
        let s = sample_sequence(len, 16);
        let cfg = ExpansionConfig::new(n).expect("n >= 1");
        report.run(format!("expand/materialized/len{len}_n{n}"), || cfg.expand(&s));
        report.run(format!("expand/streamed/len{len}_n{n}"), || {
            // Walk the lazy stream to completion without materializing.
            let mut ones = 0usize;
            cfg.stream(&s).visit(&mut |_, v| {
                ones += v.count_ones();
                true
            });
            ones
        });
        report.run(format!("expand/hardware_model/len{len}_n{n}"), || {
            let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
            hw.load(&s).expect("fits");
            hw.run().expect("loaded")
        });
    }

    // Packed vs scalar backend, simulating a streamed expansion over the
    // full collapsed fault list (the scheme's hot operation).
    for circuit in [benchmarks::s27(), benchmarks::suite()[1].build().expect("a298 builds")] {
        let faults = collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
        let s = sample_sequence(8, circuit.num_inputs());
        let cfg = ExpansionConfig::new(4).expect("n >= 1");
        let name = circuit.name().to_string();
        let packed = FaultSimulator::new(&circuit);
        let scalar = FaultSimulator::scalar(&circuit);
        report.run(format!("detect/packed64/{name}"), || {
            packed.detection_times_stream(&cfg.stream(&s), &faults).expect("ok")
        });
        report.run(format!("detect/scalar/{name}"), || {
            scalar.detection_times_stream(&cfg.stream(&s), &faults).expect("ok")
        });
        report.run(format!("detect/packed64_materialized/{name}"), || {
            packed.detection_times(&cfg.expand(&s), &faults).expect("ok")
        });
    }

    let path = report.write_json().expect("write BENCH_expansion.json");
    println!("wrote {}", path.display());
}
