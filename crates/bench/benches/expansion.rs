//! Expansion micro-benchmarks: software reference vs the cycle-accurate
//! hardware model, across loaded-sequence lengths and repetition counts.

use bist_expand::expansion::ExpansionConfig;
use bist_expand::hardware::OnChipExpander;
use bist_expand::{TestSequence, TestVector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sample_sequence(len: usize, width: usize) -> TestSequence {
    TestSequence::from_vectors(
        (0..len)
            .map(|i| TestVector::from_fn(width, |b| (i * 7 + b * 3) % 5 < 2))
            .collect(),
    )
    .expect("nonempty")
}

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion");
    for &(len, n) in &[(8usize, 2usize), (32, 8), (128, 16)] {
        let s = sample_sequence(len, 16);
        let cfg = ExpansionConfig::new(n).expect("n >= 1");
        group.bench_with_input(
            BenchmarkId::new("software", format!("len{len}_n{n}")),
            &s,
            |b, s| b.iter(|| black_box(cfg.expand(black_box(s)))),
        );
        group.bench_with_input(
            BenchmarkId::new("hardware_model", format!("len{len}_n{n}")),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
                    hw.load(s).expect("fits");
                    black_box(hw.run().expect("loaded"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
