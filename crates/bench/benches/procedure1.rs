//! Benchmarks of the paper's procedures on s27: Procedure 1 (selection)
//! and the §3.2 static compaction, across repetition counts. The ratio of
//! these times to the `t0_simulation_baseline` is the quantity Table 4
//! reports.

use bist_core::{compact_set, find_subsequence_with_growth, select_subsequences, WindowGrowth};
use bist_expand::expansion::ExpansionConfig;
use bist_expand::TestSequence;
use bist_netlist::benchmarks;
use bist_sim::{collapse, fault_universe, Fault, FaultCoverage, FaultSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_procedures(c: &mut Criterion) {
    let circuit = benchmarks::s27();
    let faults: Vec<Fault> =
        collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(&circuit);
    let t0: TestSequence =
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
    let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).expect("simulates");

    let mut group = c.benchmark_group("procedure1");
    for n in [1usize, 4, 16] {
        let expansion = ExpansionConfig::new(n).expect("n >= 1");
        group.bench_with_input(BenchmarkId::new("select", n), &n, |b, _| {
            b.iter(|| {
                black_box(select_subsequences(&sim, &t0, &cov, &expansion, 0).expect("ok"))
            })
        });
        let selection = select_subsequences(&sim, &t0, &cov, &expansion, 0).expect("ok");
        let detected: Vec<Fault> = cov.detected().map(|(f, _)| f).collect();
        group.bench_with_input(BenchmarkId::new("compact", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    compact_set(&sim, selection.sequences.clone(), &detected, &expansion)
                        .expect("ok"),
                )
            })
        });
    }
    group.bench_function("t0_simulation_baseline", |b| {
        b.iter(|| black_box(sim.detection_times(&t0, &faults).expect("ok")))
    });

    // Ablation: the paper's linear window growth vs. the exponential
    // heuristic, over every detected fault.
    let expansion = ExpansionConfig::new(2).expect("valid");
    for (label, growth) in [
        ("grow_linear", WindowGrowth::Linear),
        ("grow_exponential", WindowGrowth::Exponential),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for (f, udet) in cov.detected() {
                    black_box(
                        find_subsequence_with_growth(
                            &sim, &t0, f, udet, &expansion, 0, growth,
                        )
                        .expect("ok"),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_procedures);
criterion_main!(benches);
