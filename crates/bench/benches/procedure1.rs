//! Benchmarks of the paper's procedures on s27: Procedure 1 (selection)
//! and the §3.2 static compaction, across repetition counts. The ratio of
//! these times to the `t0_simulation_baseline` is the quantity Table 4
//! reports.
//!
//! Writes `BENCH_procedure1.json` into the workspace root.

use bist_bench::timing::{self, Report};
use subseq_bist::core::{
    compact_set, find_subsequence_with_growth, select_subsequences, WindowGrowth,
};
use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::expand::TestSequence;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, Fault, FaultCoverage, FaultSimulator};

fn main() {
    timing::init_cli();
    let mut report = Report::new("procedure1");

    let circuit = benchmarks::s27();
    let faults: Vec<Fault> =
        collapse(&circuit, &fault_universe(&circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(&circuit);
    let t0: TestSequence =
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().expect("valid");
    let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).expect("simulates");

    for n in [1usize, 4, 16] {
        let expansion = ExpansionConfig::new(n).expect("n >= 1");
        report.run(format!("select/n{n}"), || {
            select_subsequences(&sim, &t0, &cov, &expansion, 0).expect("ok")
        });
        let selection = select_subsequences(&sim, &t0, &cov, &expansion, 0).expect("ok");
        let detected: Vec<Fault> = cov.detected().map(|(f, _)| f).collect();
        report.run(format!("compact/n{n}"), || {
            compact_set(&sim, selection.sequences.clone(), &detected, &expansion).expect("ok")
        });
    }
    report.run("t0_simulation_baseline", || sim.detection_times(&t0, &faults).expect("ok"));

    // Ablation: the paper's linear window growth vs. the exponential
    // heuristic, over every detected fault.
    let expansion = ExpansionConfig::new(2).expect("valid");
    for (label, growth) in
        [("grow_linear", WindowGrowth::Linear), ("grow_exponential", WindowGrowth::Exponential)]
    {
        report.run(label, || {
            for (f, udet) in cov.detected() {
                find_subsequence_with_growth(&sim, &t0, f, udet, &expansion, 0, growth)
                    .expect("ok");
            }
        });
    }

    let path = report.write_json().expect("write BENCH_procedure1.json");
    println!("wrote {}", path.display());
}
