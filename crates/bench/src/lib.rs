//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The binaries in `src/bin/` print the paper's tables side by side with
//! our measured values:
//!
//! * `table2` — the s27 test sequence with per-time-unit detected faults
//! * `figure1` — the subsequence windows carved out of `T0`
//! * `table3` — per-circuit selection results before/after compaction
//! * `table4` — normalized run times
//! * `table5` — comparison with `T0` (the headline 0.46 / 0.10 ratios)
//! * `reproduce` — everything above in one run
//!
//! The shared pipeline lives in [`run_pipeline`]; the paper's published
//! numbers live in [`paper`]. See `EXPERIMENTS.md` for recorded
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod pipeline;
pub mod tables;

pub use pipeline::{run_pipeline, CircuitOutcome, PipelineConfig};
