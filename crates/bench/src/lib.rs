//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The binaries in `src/bin/` print the paper's tables side by side with
//! our measured values:
//!
//! * `table2` — the s27 test sequence with per-time-unit detected faults
//! * `figure1` — the subsequence windows carved out of `T0`
//! * `table3` — per-circuit selection results before/after compaction
//! * `table4` — normalized run times
//! * `table5` — comparison with `T0` (the headline 0.46 / 0.10 ratios)
//! * `reproduce` — everything above in one run
//! * `ablation` / `delay_defects` — extensions beyond the paper's tables
//!
//! The shared pipeline lives in [`run_pipeline`] and drives one
//! [`Session`](subseq_bist::Session) per circuit;
//! [`run_suite_campaign`] runs a whole suite subset through the
//! `bist-batch` campaign engine (shared artifact caches, one worker per
//! core) — `table3`/`table4` are built on it. The paper's published
//! numbers live in [`paper`]. The `benches/` targets use the [`timing`]
//! harness (criterion is unavailable offline) and write `BENCH_*.json`
//! trajectory files into the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod pipeline;
pub mod tables;
pub mod timing;

pub use pipeline::{run_pipeline, run_suite_campaign, CircuitOutcome, PipelineConfig};
