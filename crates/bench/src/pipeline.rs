//! The shared experiment pipeline: one [`Session`] run per suite circuit,
//! either directly ([`run_pipeline`]) or through the batch campaign
//! engine with shared artifact caches ([`run_suite_campaign`], which the
//! table binaries use).

use bist_batch::{BatchError, Campaign, CampaignEngine};
use subseq_bist::core::{SchemeResult, Table3Row, Table4Row, Table5Row};
use subseq_bist::netlist::benchmarks::SuiteEntry;
use subseq_bist::netlist::Circuit;
use subseq_bist::sim::FaultCoverage;
use subseq_bist::tgen::TgenConfig;
use subseq_bist::{BistError, Session};

/// Configuration of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed used for `T0` generation and Procedure 2 omission order.
    pub seed: u64,
    /// Repetition counts to sweep.
    pub ns: Vec<usize>,
    /// Static-compaction budget for `T0` generation (trial simulations).
    pub t0_compaction_budget: usize,
    /// Hard cap on `|T0|` (the paper's longest `T0` is 1024 vectors).
    pub t0_max_length: usize,
}

impl PipelineConfig {
    /// The defaults used by every table binary: seed 1999 (the paper's
    /// year), the paper's `n` sweep, a 300-trial `T0` compaction, and a
    /// 1024-vector `T0` cap matching the longest published `T0`.
    #[must_use]
    pub fn new() -> Self {
        PipelineConfig {
            seed: 1999,
            ns: vec![2, 4, 8, 16],
            t0_compaction_budget: 300,
            t0_max_length: 1024,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::new()
    }
}

/// Everything the tables need for one circuit.
#[derive(Debug)]
pub struct CircuitOutcome {
    /// The circuit (built from the suite entry).
    pub circuit: Circuit,
    /// Name of the ISCAS-89 circuit this stands in for.
    pub analog_of: &'static str,
    /// Size of the collapsed fault universe.
    pub faults_total: usize,
    /// Faults detected by the generated `T0`.
    pub faults_detected: usize,
    /// `|T0|`.
    pub t0_len: usize,
    /// Coverage of `T0` (detected set + `udet`).
    pub coverage: FaultCoverage,
    /// The generated `T0`.
    pub t0: subseq_bist::expand::TestSequence,
    /// The scheme sweep result.
    pub scheme: SchemeResult,
    /// Wall-clock seconds for `T0` generation (not part of the paper's
    /// tables; printed for context).
    pub tgen_seconds: f64,
}

impl CircuitOutcome {
    /// This circuit's Table 3 row.
    #[must_use]
    pub fn table3_row(&self) -> Table3Row {
        let best = self.scheme.best_run();
        Table3Row {
            circuit: self.circuit.name().to_string(),
            faults_total: self.faults_total,
            faults_detected: self.faults_detected,
            t0_len: self.t0_len,
            n: best.n,
            count_before: best.before.count,
            total_before: best.before.total_len,
            max_before: best.before.max_len,
            count_after: best.after.count,
            total_after: best.after.total_len,
            max_after: best.after.max_len,
        }
    }

    /// This circuit's Table 4 row.
    #[must_use]
    pub fn table4_row(&self) -> Table4Row {
        Table4Row {
            circuit: self.circuit.name().to_string(),
            proc1_normalized: self.scheme.normalized_proc1_time(),
            compact_normalized: self.scheme.normalized_compact_time(),
        }
    }

    /// This circuit's Table 5 row.
    #[must_use]
    pub fn table5_row(&self) -> Table5Row {
        let best = self.scheme.best_run();
        Table5Row {
            circuit: self.circuit.name().to_string(),
            t0_len: self.t0_len,
            n: best.n,
            count: best.after.count,
            total_len: best.after.total_len,
            max_len: best.after.max_len,
            test_len: best.applied_test_len(),
        }
    }
}

/// Runs the full pipeline for one suite entry through [`Session`]: build
/// the circuit, generate and compact `T0`, fault simulate it, and sweep
/// the scheme over `config.ns`.
///
/// # Errors
///
/// Propagates netlist/simulation errors (not expected for the built-in
/// suite).
pub fn run_pipeline(
    entry: &SuiteEntry,
    config: &PipelineConfig,
) -> Result<CircuitOutcome, BistError> {
    let parts = Session::builder()
        .circuit(entry.build()?)
        .tgen(
            TgenConfig::new()
                .compaction_budget(config.t0_compaction_budget)
                .max_length(config.t0_max_length),
        )
        .ns(config.ns.clone())
        .seed(config.seed)
        .verify(false)
        .run()?
        .into_parts();

    Ok(CircuitOutcome {
        analog_of: entry.analog_of,
        faults_total: parts.faults_total,
        faults_detected: parts.coverage.detected_count(),
        t0_len: parts.t0.len(),
        coverage: parts.coverage,
        t0: parts.t0,
        scheme: parts.scheme,
        tgen_seconds: parts.t0_seconds,
        circuit: parts.circuit,
    })
}

/// Runs the whole suite subset as one batch campaign: jobs share parsed
/// circuits, collapsed fault universes and generated `T0`s through the
/// engine's [`ArtifactCache`](bist_batch::ArtifactCache), and run
/// concurrently (one worker per available core). Outcomes come back in
/// suite order, converted to the same [`CircuitOutcome`] the tables
/// print — this is what the `table3`/`table4` binaries are built on.
///
/// # Errors
///
/// The first failing job (the campaign engine cancels the rest), or a
/// campaign configuration error.
pub fn run_suite_campaign(
    entries: &[SuiteEntry],
    config: &PipelineConfig,
) -> Result<Vec<CircuitOutcome>, BatchError> {
    // An over-restrictive gate cap selects no circuits; match the old
    // per-entry loop (empty tables) rather than a campaign config error.
    if entries.is_empty() {
        return Ok(Vec::new());
    }
    let campaign = Campaign::new()
        .suite_circuits(entries.iter().map(|e| e.name))
        .ns(config.ns.clone())
        .seeds([config.seed])
        .tgen(
            TgenConfig::new()
                .compaction_budget(config.t0_compaction_budget)
                .max_length(config.t0_max_length),
        )
        .verify(false);
    let outcome = CampaignEngine::new().run(&campaign, &mut [])?;
    let mut results = Vec::with_capacity(outcome.outcomes.len());
    for job in outcome.outcomes {
        let entry = entries
            .iter()
            .find(|e| e.name == job.spec.circuit.key())
            .expect("campaign jobs come from `entries`");
        let report = job.result.map_err(|failure| BatchError::JobFailed {
            job: job.spec.id,
            circuit: job.spec.circuit.label(),
            message: failure.to_string(),
        })?;
        let parts = report.into_parts();
        results.push(CircuitOutcome {
            analog_of: entry.analog_of,
            faults_total: parts.faults_total,
            faults_detected: parts.coverage.detected_count(),
            t0_len: parts.t0.len(),
            coverage: parts.coverage,
            t0: parts.t0,
            scheme: parts.scheme,
            tgen_seconds: parts.t0_seconds,
            circuit: parts.circuit,
        });
    }
    Ok(results)
}

/// Parses the common CLI convention of the table binaries:
/// `--quick` (≤ 300 gates), `--full` (everything), `--upto N`, default
/// ≤ 3000 gates (everything except the `s35932` analog).
#[must_use]
pub fn max_gates_from_args(args: &[String]) -> usize {
    let mut max = 3000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => max = 300,
            "--full" => max = usize::MAX,
            "--upto" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    max = v;
                }
            }
            _ => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use subseq_bist::netlist::benchmarks::suite;

    #[test]
    fn pipeline_runs_on_s27() {
        let entries = suite();
        let cfg =
            PipelineConfig { seed: 3, ns: vec![1, 2], t0_compaction_budget: 50, t0_max_length: 64 };
        let out = run_pipeline(&entries[0], &cfg).unwrap();
        assert_eq!(out.circuit.name(), "s27");
        assert_eq!(out.faults_total, 32);
        assert_eq!(out.faults_detected, 32);
        let row3 = out.table3_row();
        assert_eq!(row3.circuit, "s27");
        assert!(row3.count_after <= row3.count_before);
        let row5 = out.table5_row();
        assert_eq!(row5.test_len, 8 * row5.n * row5.total_len);
        let row4 = out.table4_row();
        assert!(row4.proc1_normalized > 0.0);
    }

    #[test]
    fn suite_campaign_matches_direct_pipeline() {
        let entries: Vec<_> = suite().into_iter().take(2).collect();
        let cfg =
            PipelineConfig { seed: 3, ns: vec![1, 2], t0_compaction_budget: 20, t0_max_length: 32 };
        let batched = run_suite_campaign(&entries, &cfg).unwrap();
        assert_eq!(batched.len(), 2);
        for (entry, out) in entries.iter().zip(&batched) {
            let direct = run_pipeline(entry, &cfg).unwrap();
            assert_eq!(out.circuit.name(), entry.name);
            assert_eq!(out.analog_of, entry.analog_of);
            assert_eq!(out.t0, direct.t0, "{} T0 differs", entry.name);
            assert_eq!(out.table3_row(), direct.table3_row(), "{} rows differ", entry.name);
        }
    }

    #[test]
    fn arg_parsing() {
        let args = |v: &[&str]| v.iter().map(std::string::ToString::to_string).collect::<Vec<_>>();
        assert_eq!(max_gates_from_args(&args(&[])), 3000);
        assert_eq!(max_gates_from_args(&args(&["--quick"])), 300);
        assert_eq!(max_gates_from_args(&args(&["--full"])), usize::MAX);
        assert_eq!(max_gates_from_args(&args(&["--upto", "500"])), 500);
        assert_eq!(max_gates_from_args(&args(&["--upto", "junk"])), 3000);
    }
}
