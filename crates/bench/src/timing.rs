//! A dependency-free micro-benchmark harness with JSON trajectory output.
//!
//! The build environment cannot fetch `criterion`, so the `benches/`
//! targets use this self-calibrating timer instead: each benchmark is run
//! for enough iterations to swamp timer noise, several samples are taken,
//! and the per-iteration median is reported. [`Report::write_json`] emits
//! a `BENCH_<name>.json` file so successive PRs can track performance
//! trajectories.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's measured timings (nanoseconds per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name (e.g. `"expand/materialized/len32_n8"`).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Median of the per-iteration sample means.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

/// Target wall-clock time per calibration/sample batch.
const BATCH_NANOS: u128 = 20_000_000; // 20 ms
/// Samples per benchmark.
const SAMPLES: usize = 7;

/// Times `f`, auto-calibrating the iteration count. The closure's return
/// value is passed through [`black_box`] so the computation cannot be
/// optimized away.
pub fn bench<T>(name: impl Into<String>, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up + calibration: double iterations until a batch takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= BATCH_NANOS || iters >= 1 << 24 {
            break;
        }
        // Jump close to the target in one step once we have a estimate.
        let factor = (BATCH_NANOS / elapsed.max(1)).clamp(2, 128) as u64;
        iters = iters.saturating_mul(factor).min(1 << 24);
    }

    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = samples[samples.len() / 2];
    let min_ns = samples[0];
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;

    let m = Measurement { name: name.into(), iters, median_ns, min_ns, mean_ns };
    println!(
        "{:<48} {:>12.0} ns/iter (min {:>10.0}, {} iters/sample)",
        m.name, m.median_ns, m.min_ns, m.iters
    );
    m
}

/// A named collection of measurements, serializable to `BENCH_<name>.json`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report name (the benchmark target).
    pub name: String,
    /// All measurements, in run order.
    pub measurements: Vec<Measurement>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Report { name: name.into(), measurements: Vec::new() }
    }

    /// Runs and records one benchmark.
    pub fn run<T>(&mut self, name: impl Into<String>, f: impl FnMut() -> T) -> &Measurement {
        let m = bench(name, f);
        self.measurements.push(m);
        self.measurements.last().expect("just pushed")
    }

    /// The recorded measurement with the given name, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.name == name)
    }

    /// Renders the report as a JSON document (hand-rolled: no serde in
    /// this environment; names are ASCII identifiers by convention).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                escape(&m.name),
                m.iters,
                m.median_ns,
                m.min_ns,
                m.mean_ns,
                if i + 1 == self.measurements.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the workspace root.
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters >= 1);
    }

    #[test]
    fn json_shape() {
        let mut r = Report::new("unit");
        r.measurements.push(Measurement {
            name: "a\"b".into(),
            iters: 10,
            median_ns: 1.5,
            min_ns: 1.0,
            mean_ns: 2.0,
        });
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"median_ns\": 1.5"));
        assert!(r.get("a\"b").is_some());
        assert!(r.get("missing").is_none());
    }
}
