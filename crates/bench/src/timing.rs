//! A dependency-free micro-benchmark harness with JSON trajectory output.
//!
//! The build environment cannot fetch `criterion`, so the `benches/`
//! targets use this self-calibrating timer instead: each benchmark is run
//! for enough iterations to swamp timer noise, several samples are taken,
//! and the per-iteration median is reported. [`Report::write_json`] emits
//! a `BENCH_<name>.json` file so successive PRs can track performance
//! trajectories.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Process-wide smoke-mode flag (see [`init_cli`]).
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Enables/disables smoke mode: tiny calibration batches and two samples
/// per benchmark, so a full bench target finishes in seconds. Timings are
/// meaningless in smoke mode — it exists so CI can execute every
/// benchmark end-to-end and catch `BENCH_*.json` schema regressions.
pub fn set_smoke(on: bool) {
    SMOKE.store(on, Ordering::Relaxed);
}

/// True if smoke mode is enabled.
#[must_use]
pub fn smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// Bench-binary entry point: enables smoke mode when `--smoke` is among
/// the process arguments or `BENCH_SMOKE=1` is set. Call first in every
/// bench `main`.
pub fn init_cli() {
    let flagged = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    if flagged {
        set_smoke(true);
        println!("(smoke mode: timings are not meaningful)");
    }
}

/// One benchmark's measured timings (nanoseconds per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name (e.g. `"expand/materialized/len32_n8"`).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Median of the per-iteration sample means.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

/// Target wall-clock time per calibration/sample batch.
const BATCH_NANOS: u128 = 20_000_000; // 20 ms
/// Samples per benchmark.
const SAMPLES: usize = 7;

/// Times `f`, auto-calibrating the iteration count. The closure's return
/// value is passed through [`black_box`] so the computation cannot be
/// optimized away.
pub fn bench<T>(name: impl Into<String>, mut f: impl FnMut() -> T) -> Measurement {
    let (batch_nanos, num_samples) = if smoke() { (200_000, 2) } else { (BATCH_NANOS, SAMPLES) };
    // Warm-up + calibration: double iterations until a batch takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= batch_nanos || iters >= 1 << 24 {
            break;
        }
        // Jump close to the target in one step once we have a estimate.
        let factor = (batch_nanos / elapsed.max(1)).clamp(2, 128) as u64;
        iters = iters.saturating_mul(factor).min(1 << 24);
    }

    let mut samples = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = samples[samples.len() / 2];
    let min_ns = samples[0];
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;

    let m = Measurement { name: name.into(), iters, median_ns, min_ns, mean_ns };
    println!(
        "{:<48} {:>12.0} ns/iter (min {:>10.0}, {} iters/sample)",
        m.name, m.median_ns, m.min_ns, m.iters
    );
    m
}

/// A named collection of measurements, serializable to `BENCH_<name>.json`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report name (the benchmark target).
    pub name: String,
    /// All measurements, in run order.
    pub measurements: Vec<Measurement>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Report { name: name.into(), measurements: Vec::new() }
    }

    /// Runs and records one benchmark.
    pub fn run<T>(&mut self, name: impl Into<String>, f: impl FnMut() -> T) -> &Measurement {
        let m = bench(name, f);
        self.measurements.push(m);
        self.measurements.last().expect("just pushed")
    }

    /// The recorded measurement with the given name, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.name == name)
    }

    /// Renders the report as a JSON document (hand-rolled: no serde in
    /// this environment; names are ASCII identifiers by convention).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                escape(&m.name),
                m.iters,
                m.median_ns,
                m.min_ns,
                m.mean_ns,
                if i + 1 == self.measurements.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the workspace root, after
    /// validating the document against the report schema — a schema
    /// regression fails the bench run (and CI, which runs every bench in
    /// smoke mode) instead of silently corrupting the trajectory files.
    ///
    /// # Errors
    ///
    /// I/O errors from the write; `InvalidData` if the rendered JSON does
    /// not round-trip through [`validate_json`].
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let json = self.to_json();
        validate_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Validates that `text` is a syntactically well-formed JSON document
/// with the `BENCH_*.json` report schema: a top-level object with a
/// string `"bench"` and an array `"results"` whose entries each carry
/// `name`, `iters`, `median_ns`, `min_ns` and `mean_ns`.
///
/// # Errors
///
/// A description of the first syntax or schema violation found.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    p.ws();
    p.report()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

const RESULT_KEYS: [&str; 5] = ["name", "iters", "median_ns", "min_ns", "mean_ns"];

/// Hand-rolled recursive-descent JSON parser (no serde in this offline
/// environment); strict enough to catch truncation, bad escaping and
/// missing report fields.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') | Some(b'b') | Some(b'f') | Some(b'n') | Some(b'r')
                        | Some(b't') => out.push(' '),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 2..self.pos + 6);
                            if !hex.is_some_and(|h| h.iter().all(u8::is_ascii_hexdigit)) {
                                return Err(format!("bad \\u escape at byte {}", self.pos));
                            }
                            out.push(' ');
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(&b) if b >= 0x20 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("expected number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("digits required after `.` at byte {}", self.pos));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("digits required in exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }

    /// Any JSON value, structure-checked only.
    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => self.object(|p, _| p.value()),
            Some(b'[') => self.array(JsonParser::value),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn object(
        &mut self,
        mut member: impl FnMut(&mut Self, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.ws();
        self.eat(b'{')?;
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            member(self, &key)?;
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(
        &mut self,
        mut element: impl FnMut(&mut Self) -> Result<(), String>,
    ) -> Result<(), String> {
        self.ws();
        self.eat(b'[')?;
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            element(self)?;
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    /// The report schema: `{"bench": <string>, "results": [<entry>...]}`.
    fn report(&mut self) -> Result<(), String> {
        let mut saw_bench = false;
        let mut saw_results = false;
        self.object(|p, key| match key {
            "bench" => {
                saw_bench = true;
                p.ws();
                p.string().map(|_| ())
            }
            "results" => {
                saw_results = true;
                p.array(JsonParser::result_entry)
            }
            _ => p.value(),
        })?;
        if !saw_bench {
            return Err("missing top-level `bench` key".to_string());
        }
        if !saw_results {
            return Err("missing top-level `results` key".to_string());
        }
        Ok(())
    }

    fn result_entry(&mut self) -> Result<(), String> {
        let mut seen: Vec<String> = Vec::new();
        self.object(|p, key| {
            seen.push(key.to_string());
            p.value()
        })?;
        for required in RESULT_KEYS {
            if !seen.iter().any(|k| k == required) {
                return Err(format!("result entry missing `{required}`"));
            }
        }
        Ok(())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `bench()` reads the process-global smoke flag; tests that call it
    /// (or toggle the flag) serialize on this guard so parallel test
    /// threads never observe each other's mode.
    static BENCH_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_measures_something() {
        let _serial = BENCH_GUARD.lock().unwrap();
        let m = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters >= 1);
    }

    #[test]
    fn validate_accepts_real_reports() {
        let mut r = Report::new("unit");
        r.measurements.push(Measurement {
            name: "a/b_c".into(),
            iters: 10,
            median_ns: 1.5,
            min_ns: 1.0,
            mean_ns: 2.0,
        });
        validate_json(&r.to_json()).expect("report schema is valid");
        // Empty result lists are still valid documents.
        validate_json(&Report::new("empty").to_json()).expect("empty report valid");
    }

    #[test]
    fn validate_rejects_malformed_and_schema_violations() {
        // Truncation.
        let good = {
            let mut r = Report::new("unit");
            r.measurements.push(Measurement {
                name: "x".into(),
                iters: 1,
                median_ns: 1.0,
                min_ns: 1.0,
                mean_ns: 1.0,
            });
            r.to_json()
        };
        assert!(validate_json(&good[..good.len() - 4]).is_err());
        // Syntax errors.
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}x").is_err());
        assert!(validate_json(r#"{"bench": "a", "results": [,]}"#).is_err());
        // Schema violations.
        // Standard \uXXXX escapes are legal JSON; malformed ones are not.
        let unicode = r#"{"bench": "caf\u00e9", "results": []}"#;
        validate_json(unicode).expect("\\u escape is valid JSON");
        assert!(validate_json(r#"{"bench": "\u00zz", "results": []}"#).is_err());
        assert!(validate_json("{}").unwrap_err().contains("bench"));
        assert!(validate_json(r#"{"bench": "a"}"#).unwrap_err().contains("results"));
        let missing_key = r#"{"bench": "a", "results": [{"name": "x", "iters": 1}]}"#;
        assert!(validate_json(missing_key).unwrap_err().contains("median_ns"));
    }

    #[test]
    fn smoke_mode_runs_fast_and_round_trips() {
        let _serial = BENCH_GUARD.lock().unwrap();
        set_smoke(true);
        let m = bench("smoke_spin", || std::hint::black_box(41) + 1);
        set_smoke(false);
        assert!(m.iters >= 1);
        assert!(m.median_ns > 0.0);
    }

    #[test]
    fn json_shape() {
        let mut r = Report::new("unit");
        r.measurements.push(Measurement {
            name: "a\"b".into(),
            iters: 10,
            median_ns: 1.5,
            min_ns: 1.0,
            mean_ns: 2.0,
        });
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"median_ns\": 1.5"));
        assert!(r.get("a\"b").is_some());
        assert!(r.get("missing").is_none());
    }
}
