//! The paper's published experimental numbers (Tables 3, 4 and 5),
//! transcribed for side-by-side comparison with measured results.

/// One circuit's published results (Tables 3 + 4 + 5 combined; Table 5's
/// `test len` column is `8 · n · tot_after`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// ISCAS-89 circuit name.
    pub circuit: &'static str,
    /// Total faults.
    pub faults_total: usize,
    /// Faults detected by `T0` (STRATEGATE + compaction).
    pub faults_detected: usize,
    /// `|T0|`.
    pub t0_len: usize,
    /// Best repetition count.
    pub n: usize,
    /// `|S|` before compaction.
    pub count_before: usize,
    /// Total length before compaction.
    pub total_before: usize,
    /// Max length before compaction.
    pub max_before: usize,
    /// `|S|` after compaction.
    pub count_after: usize,
    /// Total length after compaction.
    pub total_after: usize,
    /// Max length after compaction.
    pub max_after: usize,
    /// Table 4: Procedure 1 time / `T0` simulation time.
    pub proc1_normalized: f64,
    /// Table 4: compaction time / `T0` simulation time.
    pub compact_normalized: f64,
}

impl PaperRow {
    /// Table 5 `tot len / orig len` ratio.
    #[must_use]
    pub fn total_ratio(&self) -> f64 {
        self.total_after as f64 / self.t0_len as f64
    }

    /// Table 5 `max len / orig len` ratio.
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        self.max_after as f64 / self.t0_len as f64
    }

    /// Table 5 applied test length (`8·n·tot_after`).
    #[must_use]
    pub fn test_len(&self) -> usize {
        8 * self.n * self.total_after
    }
}

/// Tables 3-5 of the paper, in publication order.
pub const PAPER_ROWS: [PaperRow; 12] = [
    PaperRow {
        circuit: "s298",
        faults_total: 308,
        faults_detected: 265,
        t0_len: 117,
        n: 16,
        count_before: 7,
        total_before: 42,
        max_before: 17,
        count_after: 4,
        total_after: 27,
        max_after: 17,
        proc1_normalized: 30.62,
        compact_normalized: 64.59,
    },
    PaperRow {
        circuit: "s344",
        faults_total: 342,
        faults_detected: 329,
        t0_len: 57,
        n: 8,
        count_before: 7,
        total_before: 19,
        max_before: 6,
        count_after: 5,
        total_after: 14,
        max_after: 6,
        proc1_normalized: 10.99,
        compact_normalized: 19.16,
    },
    PaperRow {
        circuit: "s382",
        faults_total: 399,
        faults_detected: 364,
        t0_len: 516,
        n: 16,
        count_before: 9,
        total_before: 337,
        max_before: 94,
        count_after: 5,
        total_after: 272,
        max_after: 94,
        proc1_normalized: 308.27,
        compact_normalized: 137.66,
    },
    PaperRow {
        circuit: "s400",
        faults_total: 421,
        faults_detected: 380,
        t0_len: 611,
        n: 16,
        count_before: 6,
        total_before: 261,
        max_before: 100,
        count_after: 5,
        total_after: 259,
        max_after: 100,
        proc1_normalized: 224.93,
        compact_normalized: 147.31,
    },
    PaperRow {
        circuit: "s526",
        faults_total: 555,
        faults_detected: 454,
        t0_len: 1006,
        n: 16,
        count_before: 12,
        total_before: 717,
        max_before: 122,
        count_after: 9,
        total_after: 637,
        max_after: 122,
        proc1_normalized: 328.57,
        compact_normalized: 93.67,
    },
    PaperRow {
        circuit: "s641",
        faults_total: 467,
        faults_detected: 404,
        t0_len: 101,
        n: 16,
        count_before: 20,
        total_before: 42,
        max_before: 8,
        count_after: 13,
        total_after: 29,
        max_after: 8,
        proc1_normalized: 43.76,
        compact_normalized: 62.44,
    },
    PaperRow {
        circuit: "s820",
        faults_total: 850,
        faults_detected: 814,
        t0_len: 491,
        n: 4,
        count_before: 54,
        total_before: 534,
        max_before: 15,
        count_after: 45,
        total_after: 454,
        max_after: 15,
        proc1_normalized: 83.03,
        compact_normalized: 71.49,
    },
    PaperRow {
        circuit: "s1196",
        faults_total: 1242,
        faults_detected: 1239,
        t0_len: 238,
        n: 4,
        count_before: 110,
        total_before: 152,
        max_before: 2,
        count_after: 100,
        total_after: 137,
        max_after: 2,
        proc1_normalized: 13.27,
        compact_normalized: 47.14,
    },
    PaperRow {
        circuit: "s1423",
        faults_total: 1515,
        faults_detected: 1414,
        t0_len: 1024,
        n: 8,
        count_before: 24,
        total_before: 464,
        max_before: 82,
        count_after: 21,
        total_after: 422,
        max_after: 82,
        proc1_normalized: 103.10,
        compact_normalized: 56.45,
    },
    PaperRow {
        circuit: "s1488",
        faults_total: 1486,
        faults_detected: 1444,
        t0_len: 455,
        n: 8,
        count_before: 19,
        total_before: 254,
        max_before: 44,
        count_after: 15,
        total_after: 220,
        max_after: 44,
        proc1_normalized: 41.16,
        compact_normalized: 77.17,
    },
    PaperRow {
        circuit: "s5378",
        faults_total: 4603,
        faults_detected: 3639,
        t0_len: 646,
        n: 8,
        count_before: 43,
        total_before: 348,
        max_before: 29,
        count_after: 38,
        total_after: 326,
        max_after: 29,
        proc1_normalized: 9.46,
        compact_normalized: 20.74,
    },
    PaperRow {
        circuit: "s35932",
        faults_total: 39094,
        faults_detected: 35100,
        t0_len: 257,
        n: 8,
        count_before: 20,
        total_before: 406,
        max_before: 32,
        count_after: 6,
        total_after: 77,
        max_after: 32,
        proc1_normalized: 6.71,
        compact_normalized: 16.08,
    },
];

/// Looks up the published row for an ISCAS-89 circuit.
#[must_use]
pub fn paper_row(circuit: &str) -> Option<&'static PaperRow> {
    PAPER_ROWS.iter().find(|r| r.circuit == circuit)
}

/// The paper's reported average ratios (last row of Table 5).
pub const PAPER_AVG_TOTAL_RATIO: f64 = 0.46;
/// See [`PAPER_AVG_TOTAL_RATIO`].
pub const PAPER_AVG_MAX_RATIO: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_in_order() {
        assert_eq!(PAPER_ROWS.len(), 12);
        assert_eq!(PAPER_ROWS[0].circuit, "s298");
        assert_eq!(PAPER_ROWS[11].circuit, "s35932");
    }

    #[test]
    fn test_len_column_matches_table5() {
        // Table 5's last column, as printed in the paper.
        let expected =
            [3456, 896, 34816, 33152, 81536, 3712, 14528, 4384, 27008, 14080, 20864, 4928];
        for (row, want) in PAPER_ROWS.iter().zip(expected) {
            assert_eq!(row.test_len(), want, "{}", row.circuit);
        }
    }

    #[test]
    fn published_averages_hold() {
        let avg_total: f64 =
            PAPER_ROWS.iter().map(PaperRow::total_ratio).sum::<f64>() / PAPER_ROWS.len() as f64;
        let avg_max: f64 =
            PAPER_ROWS.iter().map(PaperRow::max_ratio).sum::<f64>() / PAPER_ROWS.len() as f64;
        assert!((avg_total - PAPER_AVG_TOTAL_RATIO).abs() < 0.01, "avg total {avg_total}");
        assert!((avg_max - PAPER_AVG_MAX_RATIO).abs() < 0.01, "avg max {avg_max}");
    }

    #[test]
    fn ratios_match_published_table5_columns() {
        // Spot checks against the printed ratio columns.
        let s298 = paper_row("s298").unwrap();
        assert!((s298.total_ratio() - 0.23).abs() < 0.005);
        assert!((s298.max_ratio() - 0.15).abs() < 0.005);
        let s820 = paper_row("s820").unwrap();
        assert!((s820.total_ratio() - 0.92).abs() < 0.005);
        assert!((s820.max_ratio() - 0.03).abs() < 0.005);
    }

    #[test]
    fn lookup() {
        assert!(paper_row("s1423").is_some());
        assert!(paper_row("s9234").is_none());
    }
}
