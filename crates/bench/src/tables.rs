//! Printing of the paper-vs-measured tables (shared by the binaries).

use crate::paper::{paper_row, PAPER_AVG_MAX_RATIO, PAPER_AVG_TOTAL_RATIO};
use crate::pipeline::CircuitOutcome;
use subseq_bist::core::{figure1, Table3Row, Table4Row, Table5Row};

/// Prints Table 3 (selection results) with the paper's row under each
/// measured row.
pub fn print_table3(outcomes: &[CircuitOutcome]) {
    println!("Table 3: Experimental results (measured, with paper row for the analog below)");
    println!("{}", Table3Row::header());
    for out in outcomes {
        println!("{}", out.table3_row());
        if let Some(p) = paper_row(out.analog_of) {
            println!(
                "  paper {:<8} {:>4} {:>6} {:>5} {:>3} | {:>4} {:>7} {:>7} | {:>4} {:>7} {:>7}",
                p.circuit,
                p.faults_total,
                p.faults_detected,
                p.t0_len,
                p.n,
                p.count_before,
                p.total_before,
                p.max_before,
                p.count_after,
                p.total_after,
                p.max_after
            );
        }
    }
}

/// Prints Table 4 (normalized run times).
pub fn print_table4(outcomes: &[CircuitOutcome]) {
    println!("Table 4: Normalized run times (time / time-to-simulate-T0)");
    println!("{}", Table4Row::header());
    for out in outcomes {
        println!("{}", out.table4_row());
        if let Some(p) = paper_row(out.analog_of) {
            println!(
                "  paper {:<8} {:>8.2} {:>10.2}",
                p.circuit, p.proc1_normalized, p.compact_normalized
            );
        }
    }
}

/// Prints Table 5 (comparison with `T0`) and the measured averages
/// against the paper's 0.46 / 0.10.
pub fn print_table5(outcomes: &[CircuitOutcome]) {
    println!("Table 5: Comparison with T0");
    println!("{}", Table5Row::header());
    let mut sum_total = 0.0;
    let mut sum_max = 0.0;
    for out in outcomes {
        let row = out.table5_row();
        sum_total += row.total_ratio();
        sum_max += row.max_ratio();
        println!("{row}");
        if let Some(p) = paper_row(out.analog_of) {
            println!(
                "  paper {:<8} {:>3} {:>3} {:>4} {:>8} {:>6.2} {:>8} {:>6.2} {:>9}",
                p.circuit,
                p.t0_len,
                p.n,
                p.count_after,
                p.total_after,
                p.total_ratio(),
                p.max_after,
                p.max_ratio(),
                p.test_len()
            );
        }
    }
    let k = outcomes.len() as f64;
    if k > 0.0 {
        println!("{:<8} {:>24} {:>6.2} {:>15.2}", "average", "", sum_total / k, sum_max / k);
        println!(
            "  paper {:<8} {:>17} {PAPER_AVG_TOTAL_RATIO:>6.2} {PAPER_AVG_MAX_RATIO:>15.2}",
            "average", ""
        );
    }
}

/// Prints Figure 1 (subsequence windows over `T0`) for one circuit.
pub fn print_figure1(out: &CircuitOutcome) {
    let best = out.scheme.best_run();
    println!("Figure 1: sequences selected from T0 for {} (n = {})", out.circuit.name(), best.n);
    print!("{}", figure1(out.t0_len, &best.sequences));
}

/// Prints the per-circuit context line (not in the paper; aids
/// reproducibility).
pub fn print_context(out: &CircuitOutcome) {
    println!(
        "# {}: analog of {}, {} — T0 generated in {:.1}s, coverage {}/{} ({:.1}%)",
        out.circuit.name(),
        out.analog_of,
        out.circuit,
        out.tgen_seconds,
        out.faults_detected,
        out.faults_total,
        100.0 * out.faults_detected as f64 / out.faults_total as f64
    );
}
