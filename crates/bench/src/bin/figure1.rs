//! Regenerates Figure 1: the subsequences `S1, S2, ...` carved out of
//! `T0`, illustrating that only part of `T0` is ever loaded.
//!
//! Usage: `figure1 [circuit]` (default `s27`; any suite circuit name).

use bist_bench::tables::{print_context, print_figure1};
use bist_bench::{run_pipeline, PipelineConfig};
use subseq_bist::netlist::benchmarks::suite;

fn main() -> Result<(), subseq_bist::BistError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s27".to_string());
    let entries = suite();
    let entry = entries.iter().find(|e| e.name == name).ok_or_else(|| {
        subseq_bist::BistError::Config(format!(
            "unknown circuit `{name}`; try one of: s27, a298, a344, ..."
        ))
    })?;
    let out = run_pipeline(entry, &PipelineConfig::new())?;
    print_context(&out);
    print_figure1(&out);
    Ok(())
}
