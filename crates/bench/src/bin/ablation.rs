//! Ablation study: what does each expansion operation buy?
//!
//! Re-runs Procedure 1 + static compaction with *subsets* of the paper's
//! expansion recipe (repetition / complementation / shift / reversal) and
//! reports the resulting `|S|`, total and maximum loaded lengths. A
//! weaker expander must compensate by loading more (or longer)
//! subsequences; the differences quantify each operation's contribution.
//!
//! Usage: `ablation [circuit ...]` (default: `s27 a298 a344`).

use subseq_bist::core::{compact_set, select_subsequences};
use subseq_bist::expand::expansion::{CustomExpansion, Expand};
use subseq_bist::netlist::benchmarks::suite;
use subseq_bist::sim::{Fault, FaultSimulator};
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn recipes() -> Vec<(String, CustomExpansion)> {
    let base = |n: usize| CustomExpansion::new(n).expect("n >= 1");
    let mut out = vec![
        ("plain load (n1)".to_string(), base(1)),
        ("repeat only (n4)".to_string(), base(4)),
        ("n4 + complement".to_string(), base(4).complement(true)),
        ("n4 + shift".to_string(), base(4).shift(true)),
        ("n4 + reverse".to_string(), base(4).reverse(true)),
        ("n4 + compl + shift".to_string(), base(4).complement(true).shift(true)),
        ("full recipe (n4)".to_string(), base(4).complement(true).shift(true).reverse(true)),
    ];
    for (name, r) in &mut out {
        *name = format!("{name:<20} [{}]", r.describe());
    }
    out
}

fn main() -> Result<(), subseq_bist::BistError> {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        names = vec!["s27".into(), "a298".into(), "a344".into()];
    }
    let entries = suite();

    for name in &names {
        let entry = entries
            .iter()
            .find(|e| e.name == name.as_str())
            .ok_or_else(|| subseq_bist::BistError::Config(format!("unknown circuit `{name}`")))?;
        let circuit = entry.build()?;
        let t0 = generate_t0(
            &circuit,
            &TgenConfig::new().seed(1999).max_length(512).compaction_budget(150),
        )?;
        let sim = FaultSimulator::new(&circuit);
        let detected: Vec<Fault> = t0.coverage.detected().map(|(f, _)| f).collect();
        println!(
            "\n{name}: |T0| = {}, F = {} faults — ablation of the expansion recipe",
            t0.sequence.len(),
            detected.len()
        );
        println!(
            "{:<32} {:>5} {:>8} {:>8} {:>10}",
            "recipe", "|S|", "tot len", "max len", "applied"
        );
        for (label, recipe) in recipes() {
            let selection = select_subsequences(&sim, &t0.sequence, &t0.coverage, &recipe, 1999)?;
            let (compacted, _) = compact_set(&sim, selection.sequences, &detected, &recipe)?;
            let tot: usize = compacted.iter().map(subseq_bist::core::SelectedSequence::len).sum();
            let max =
                compacted.iter().map(subseq_bist::core::SelectedSequence::len).max().unwrap_or(0);
            println!(
                "{label:<32} {:>5} {tot:>8} {max:>8} {:>10}",
                compacted.len(),
                recipe.length_factor() * tot
            );
        }
    }
    println!(
        "\nreading guide: weaker recipes must load more vectors (higher tot len) or\n\
         longer subsequences (higher max len) to keep the same guaranteed coverage."
    );
    Ok(())
}
