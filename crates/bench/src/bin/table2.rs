//! Regenerates Table 2: a test sequence for `s27` with the faults first
//! detected at every time unit.
//!
//! Two sequences are shown: the exact sequence printed in the paper's
//! Table 2 (validating that our simulator reproduces the published
//! per-time-unit detection counts), and the `T0` our generator produces.

use subseq_bist::expand::TestSequence;
use subseq_bist::netlist::benchmarks;
use subseq_bist::sim::{collapse, fault_universe, FaultSimulator};
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn print_detection_table(
    circuit: &subseq_bist::netlist::Circuit,
    seq: &TestSequence,
    title: &str,
) -> Result<(), subseq_bist::BistError> {
    let faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
    let sim = FaultSimulator::new(circuit);
    let times = sim.detection_times(seq, &faults)?;
    println!("{title}");
    println!("{:<4} {:<8} detected faults", "u", "T0[u]");
    for (u, vector) in seq.iter().enumerate() {
        let detected: Vec<String> = faults
            .iter()
            .zip(&times)
            .filter(|&(_, &t)| t == Some(u))
            .map(|(f, _)| f.describe(circuit))
            .collect();
        println!("{:<4} {:<8} {}", u, vector.to_string(), detected.join(" "));
    }
    let total = times.iter().filter(|t| t.is_some()).count();
    println!("-- {total}/{} faults detected\n", faults.len());
    Ok(())
}

fn main() -> Result<(), subseq_bist::BistError> {
    let s27 = benchmarks::s27();

    let paper_t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse()?;
    print_detection_table(
        &s27,
        &paper_t0,
        "Table 2 (paper's exact sequence; per-time-unit counts must be 0,9,4,0,1,11,2,0,3,2)",
    )?;

    let generated = generate_t0(&s27, &TgenConfig::new().seed(1999))?;
    print_detection_table(&s27, &generated.sequence, "Our generated T0 for s27")?;
    Ok(())
}
