//! Regenerates Table 3: per-circuit selection results before/after static
//! compaction of `S`.
//!
//! Usage: `table3 [--quick | --full | --upto N]` (gate-count cap; default
//! 3000 — everything except the `s35932` analog).

use bist_bench::pipeline::max_gates_from_args;
use bist_bench::tables::{print_context, print_table3};
use bist_bench::{run_pipeline, PipelineConfig};
use subseq_bist::netlist::benchmarks::suite_up_to;

fn main() -> Result<(), subseq_bist::BistError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cap = max_gates_from_args(&args);
    let entries = suite_up_to(cap);
    let skipped = 13 - entries.len();
    if skipped > 0 {
        eprintln!("note: skipping {skipped} circuit(s) above {cap} gates (use --full to include)");
    }
    let cfg = PipelineConfig::new();
    let mut outcomes = Vec::new();
    for entry in &entries {
        eprintln!("running {} ...", entry.name);
        let out = run_pipeline(entry, &cfg)?;
        print_context(&out);
        outcomes.push(out);
    }
    println!();
    print_table3(&outcomes);
    Ok(())
}
