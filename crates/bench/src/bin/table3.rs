//! Regenerates Table 3: per-circuit selection results before/after static
//! compaction of `S`.
//!
//! Runs the suite as one batch campaign ([`run_suite_campaign`]): all
//! circuits share the engine's artifact caches and run concurrently, one
//! worker per core.
//!
//! Usage: `table3 [--quick | --full | --upto N]` (gate-count cap; default
//! 3000 — everything except the `s35932` analog).

use bist_batch::BatchError;
use bist_bench::pipeline::{max_gates_from_args, run_suite_campaign};
use bist_bench::tables::{print_context, print_table3};
use bist_bench::PipelineConfig;
use subseq_bist::netlist::benchmarks::suite_up_to;

fn main() -> Result<(), BatchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cap = max_gates_from_args(&args);
    let entries = suite_up_to(cap);
    let skipped = 13 - entries.len();
    if skipped > 0 {
        eprintln!("note: skipping {skipped} circuit(s) above {cap} gates (use --full to include)");
    }
    eprintln!("running {} circuits as one campaign ...", entries.len());
    let outcomes = run_suite_campaign(&entries, &PipelineConfig::new())?;
    for out in &outcomes {
        print_context(out);
    }
    println!();
    print_table3(&outcomes);
    Ok(())
}
