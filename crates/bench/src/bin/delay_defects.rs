//! Quantifies the paper's at-speed claim (§1): the scheme "applies
//! at-speed a number of test vectors that is larger than the number of
//! vectors in T0. Consequently, it potentially achieves better coverage
//! of defects that affect circuit delays."
//!
//! We measure gross-delay (transition) fault coverage of:
//!
//! 1. `T0` applied once (what loading the deterministic sequence buys);
//! 2. the scheme's expanded subsequences, each applied from the unknown
//!    state (what the on-chip expansion buys at the *same stuck-at
//!    coverage*).
//!
//! Usage: `delay_defects [circuit ...]` (default: `s27 a298 a382`).

use subseq_bist::expand::expansion::ExpansionConfig;
use subseq_bist::netlist::benchmarks::suite;
use subseq_bist::sim::{transition_detection_times, transition_universe, FaultSimulator};
use subseq_bist::tgen::{generate_t0, TgenConfig};

fn main() -> Result<(), subseq_bist::BistError> {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        names = vec!["s27".into(), "a298".into(), "a382".into()];
    }
    let entries = suite();

    println!(
        "{:<8} {:>8} | {:>10} {:>8} | {:>10} {:>8} {:>9}",
        "circuit", "#trans", "T0 det", "cov", "Sexp det", "cov", "at-speed"
    );
    for name in &names {
        let entry = entries
            .iter()
            .find(|e| e.name == name.as_str())
            .ok_or_else(|| subseq_bist::BistError::Config(format!("unknown circuit `{name}`")))?;
        let circuit = entry.build()?;
        let t0 = generate_t0(
            &circuit,
            &TgenConfig::new().seed(1999).max_length(512).compaction_budget(150),
        )?;
        let sim = FaultSimulator::new(&circuit);
        let scheme = subseq_bist::core::run_scheme(
            &sim,
            &t0.sequence,
            &t0.coverage,
            &subseq_bist::core::SchemeConfig::new().ns(vec![4, 8]).seed(1999),
        )?;
        let best = scheme.best_run();
        let expansion = ExpansionConfig::new(best.n)?;

        let faults = transition_universe(&circuit);

        // Baseline: T0 once.
        let t0_times = transition_detection_times(&circuit, &t0.sequence, &faults)?;
        let t0_det = t0_times.iter().filter(|t| t.is_some()).count();

        // Scheme: union over the expanded subsequences.
        let mut covered = vec![false; faults.len()];
        let mut applied = 0usize;
        for sel in &best.sequences {
            let sexp = expansion.expand(&sel.sequence);
            applied += sexp.len();
            let remaining: Vec<_> = faults
                .iter()
                .zip(&covered)
                .filter_map(|(&f, &c)| if c { None } else { Some(f) })
                .collect();
            let times = transition_detection_times(&circuit, &sexp, &remaining)?;
            let mut it = times.iter();
            for (f, c) in faults.iter().zip(covered.iter_mut()) {
                if !*c {
                    let _ = f;
                    if it.next().expect("aligned").is_some() {
                        *c = true;
                    }
                }
            }
        }
        let scheme_det = covered.iter().filter(|&&c| c).count();

        println!(
            "{:<8} {:>8} | {:>10} {:>7.1}% | {:>10} {:>7.1}% {:>9}",
            name,
            faults.len(),
            t0_det,
            100.0 * t0_det as f64 / faults.len() as f64,
            scheme_det,
            100.0 * scheme_det as f64 / faults.len() as f64,
            applied
        );
    }
    println!(
        "\n`at-speed` is the total number of vectors the scheme applies at speed;\n\
         the paper's claim holds when the Sexp coverage meets or beats T0's\n\
         while loading far fewer vectors (see table5 for the loading side)."
    );
    Ok(())
}
