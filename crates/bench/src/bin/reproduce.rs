//! Regenerates every table and figure of the paper in one run, sharing
//! the heavy computation across tables.
//!
//! Usage: `reproduce [--quick | --full | --upto N]`.

use bist_bench::pipeline::max_gates_from_args;
use bist_bench::tables::{print_context, print_figure1, print_table3, print_table4, print_table5};
use bist_bench::{run_pipeline, PipelineConfig};
use subseq_bist::netlist::benchmarks::suite_up_to;

fn main() -> Result<(), subseq_bist::BistError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cap = max_gates_from_args(&args);
    let entries = suite_up_to(cap);
    let skipped = 13 - entries.len();
    if skipped > 0 {
        eprintln!("note: skipping {skipped} circuit(s) above {cap} gates (use --full to include)");
    }

    let cfg = PipelineConfig::new();
    let mut outcomes = Vec::new();
    for entry in &entries {
        eprintln!("running {} ...", entry.name);
        let out = run_pipeline(entry, &cfg)?;
        print_context(&out);
        outcomes.push(out);
    }

    println!();
    print_figure1(&outcomes[0]);
    println!();
    print_table3(&outcomes);
    println!();
    print_table4(&outcomes);
    println!();
    print_table5(&outcomes);
    Ok(())
}
