//! Regenerates Table 4: run times of Procedure 1 and of the compaction,
//! normalized by the time to fault simulate `T0`.
//!
//! Runs the suite as one batch campaign ([`run_suite_campaign`]) sharing
//! artifact caches across circuits. The normalized times are per-job
//! ratios, so campaign concurrency does not skew them.
//!
//! Usage: `table4 [--quick | --full | --upto N]`. Run in `--release`;
//! debug timings are meaningless.

use bist_batch::BatchError;
use bist_bench::pipeline::{max_gates_from_args, run_suite_campaign};
use bist_bench::tables::{print_context, print_table4};
use bist_bench::PipelineConfig;
use subseq_bist::netlist::benchmarks::suite_up_to;

fn main() -> Result<(), BatchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = suite_up_to(max_gates_from_args(&args));
    eprintln!("running {} circuits as one campaign ...", entries.len());
    let outcomes = run_suite_campaign(&entries, &PipelineConfig::new())?;
    for out in &outcomes {
        print_context(out);
    }
    println!();
    print_table4(&outcomes);
    Ok(())
}
