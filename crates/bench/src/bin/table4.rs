//! Regenerates Table 4: run times of Procedure 1 and of the compaction,
//! normalized by the time to fault simulate `T0`.
//!
//! Usage: `table4 [--quick | --full | --upto N]`. Run in `--release`;
//! debug timings are meaningless.

use bist_bench::pipeline::max_gates_from_args;
use bist_bench::tables::{print_context, print_table4};
use bist_bench::{run_pipeline, PipelineConfig};
use subseq_bist::netlist::benchmarks::suite_up_to;

fn main() -> Result<(), subseq_bist::BistError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = suite_up_to(max_gates_from_args(&args));
    let cfg = PipelineConfig::new();
    let mut outcomes = Vec::new();
    for entry in &entries {
        eprintln!("running {} ...", entry.name);
        let out = run_pipeline(entry, &cfg)?;
        print_context(&out);
        outcomes.push(out);
    }
    println!();
    print_table4(&outcomes);
    Ok(())
}
