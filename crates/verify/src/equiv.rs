//! SAT/BDD-free structural equivalence of sequential circuits.
//!
//! Two circuits are *structurally equivalent* when their primary-output
//! and next-state functions are built from identical gate structure over
//! positionally-matched sources: PI `k` of one circuit corresponds to PI
//! `k` of the other, flip-flop `k` to flip-flop `k` (test vectors and
//! state vectors are positional throughout the workspace, so position
//! *is* the interface). [`check_equiv`] walks each PO cone and each
//! flip-flop D cone pair-wise, memoizing proven-equal node pairs;
//! flip-flop outputs are cut points, so the walk is combinational and
//! terminates even on self-feeding state.
//!
//! The check is **sound, not complete**: a pass certifies functional
//! equivalence (same gates over the same sources compute the same
//! values), while a mismatch only means "not structurally identical" —
//! e.g. commutative fanin swaps are reported as different, by design.
//! That conservative direction is exactly what the writer→parser round
//! trip and a future netlist optimization pre-pass need from a gate:
//! false alarms are reviewable, false passes are not.
//!
//! [`structural_hash`] is the one-sided fingerprint of the same
//! canonical form: equivalent circuits always hash equal, so campaign
//! caches can use it as a cheap pre-filter before the full walk.

use bist_netlist::{Circuit, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// Why two circuits failed the structural equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inequivalence {
    /// Which part of the comparison failed (`"interface"` for
    /// PI/PO/DFF count mismatches, `"po-cone"` / `"dff-cone"` for
    /// structural differences inside a cone).
    pub scope: &'static str,
    /// Human-readable account, naming nets from both circuits.
    pub detail: String,
}

impl fmt::Display for Inequivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not structurally equivalent ({}): {}", self.scope, self.detail)
    }
}

impl std::error::Error for Inequivalence {}

/// Pair-wise cone walker with memoized proven-equal pairs.
struct Matcher<'a> {
    a: &'a Circuit,
    b: &'a Circuit,
    /// Position of each node in its circuit's PI table (or `u32::MAX`).
    a_pi_pos: Vec<u32>,
    b_pi_pos: Vec<u32>,
    /// Position of each node in its circuit's DFF table (or `u32::MAX`).
    a_dff_pos: Vec<u32>,
    b_dff_pos: Vec<u32>,
    /// Proven-equal `(a, b)` node pairs. The cones are DAGs, so plain
    /// success memoization is enough — no in-progress marking needed.
    proven: HashMap<(u32, u32), bool>,
}

fn positions(len: usize, ids: &[NodeId]) -> Vec<u32> {
    let mut pos = vec![u32::MAX; len];
    for (k, id) in ids.iter().enumerate() {
        pos[id.index()] = u32::try_from(k).expect("table index exceeds u32");
    }
    pos
}

impl<'a> Matcher<'a> {
    fn new(a: &'a Circuit, b: &'a Circuit) -> Self {
        Matcher {
            a,
            b,
            a_pi_pos: positions(a.num_nodes(), a.inputs()),
            b_pi_pos: positions(b.num_nodes(), b.inputs()),
            a_dff_pos: positions(a.num_nodes(), a.dffs()),
            b_dff_pos: positions(b.num_nodes(), b.dffs()),
            proven: HashMap::new(),
        }
    }

    /// Do `na` (in `a`) and `nb` (in `b`) compute the same function of
    /// the positional PIs and flip-flop outputs?
    fn cones_match(&mut self, na: NodeId, nb: NodeId) -> bool {
        let key = (na.index() as u32, nb.index() as u32);
        if let Some(&hit) = self.proven.get(&key) {
            return hit;
        }
        let node_a = self.a.node(na);
        let node_b = self.b.node(nb);
        let ok = match (node_a.kind(), node_b.kind()) {
            (NodeKind::Input, NodeKind::Input) => {
                self.a_pi_pos[na.index()] == self.b_pi_pos[nb.index()]
            }
            (NodeKind::Dff, NodeKind::Dff) => {
                // Cut point: same state position. The D cones are
                // compared once, from the top-level loop — recursing
                // here would chase sequential feedback forever.
                self.a_dff_pos[na.index()] == self.b_dff_pos[nb.index()]
            }
            (NodeKind::Gate(ka), NodeKind::Gate(kb)) => {
                ka == kb
                    && node_a.fanin().len() == node_b.fanin().len()
                    && node_a
                        .fanin()
                        .iter()
                        .zip(node_b.fanin())
                        .all(|(&fa, &fb)| self.cones_match(fa, fb))
            }
            _ => false,
        };
        self.proven.insert(key, ok);
        ok
    }
}

/// Certifies that `a` and `b` are structurally equivalent.
///
/// Accepts any relabeling/reordering of the *gates* (names and
/// declaration order are canonicalized away); requires positional
/// agreement of the PI, PO and flip-flop interfaces, matching opcodes
/// and pin-ordered fanin throughout every cone.
///
/// # Errors
///
/// An [`Inequivalence`] naming the first differing cone.
pub fn check_equiv(a: &Circuit, b: &Circuit) -> Result<(), Inequivalence> {
    let interface = [
        ("inputs", a.num_inputs(), b.num_inputs()),
        ("outputs", a.num_outputs(), b.num_outputs()),
        ("flip-flops", a.num_dffs(), b.num_dffs()),
    ];
    for (label, na, nb) in interface {
        if na != nb {
            return Err(Inequivalence {
                scope: "interface",
                detail: format!("`{}` has {na} {label}, `{}` has {nb}", a.name(), b.name()),
            });
        }
    }
    let mut m = Matcher::new(a, b);
    for (k, (&oa, &ob)) in a.outputs().iter().zip(b.outputs()).enumerate() {
        if !m.cones_match(oa, ob) {
            return Err(Inequivalence {
                scope: "po-cone",
                detail: format!(
                    "output {k} (`{}` vs `{}`) differs structurally",
                    a.node(oa).name(),
                    b.node(ob).name()
                ),
            });
        }
    }
    for (k, (&da, &db)) in a.dffs().iter().zip(b.dffs()).enumerate() {
        let sa = a.node(da).fanin()[0];
        let sb = b.node(db).fanin()[0];
        if !m.cones_match(sa, sb) {
            return Err(Inequivalence {
                scope: "dff-cone",
                detail: format!(
                    "flip-flop {k} d-input (`{}` vs `{}`) differs structurally",
                    a.node(sa).name(),
                    b.node(sb).name()
                ),
            });
        }
    }
    debug_assert_eq!(
        structural_hash(a),
        structural_hash(b),
        "cone walk accepted but canonical hashes differ"
    );
    Ok(())
}

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no deps.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn combine(h: u64, v: u64) -> u64 {
    mix(h ^ mix(v))
}

/// A canonical fingerprint of a circuit's structure.
///
/// Names and gate declaration order do not enter the hash; PI/PO/DFF
/// positions, opcodes and pin order do. [`check_equiv`]-equal circuits
/// therefore always hash equal, so an unequal hash proves structural
/// inequivalence — the cheap pre-filter for caches. (Equal hashes do
/// *not* prove equivalence; run the full check.)
#[must_use]
pub fn structural_hash(circuit: &Circuit) -> u64 {
    let mut node_hash = vec![0u64; circuit.num_nodes()];
    for (k, &id) in circuit.inputs().iter().enumerate() {
        node_hash[id.index()] = combine(0x01, k as u64);
    }
    for (k, &id) in circuit.dffs().iter().enumerate() {
        node_hash[id.index()] = combine(0x02, k as u64);
    }
    // eval_order is topological, so every fanin hash is final when read.
    for &id in circuit.eval_order() {
        let node = circuit.node(id);
        let NodeKind::Gate(kind) = node.kind() else {
            unreachable!("eval_order contains only gates")
        };
        let mut h = combine(0x03, *kind as u64);
        for &f in node.fanin() {
            h = combine(h, node_hash[f.index()]);
        }
        node_hash[id.index()] = h;
    }
    let mut h = combine(0x10, circuit.num_inputs() as u64);
    h = combine(h, circuit.num_dffs() as u64);
    for &o in circuit.outputs() {
        h = combine(h, node_hash[o.index()]);
    }
    for &d in circuit.dffs() {
        h = combine(h, node_hash[circuit.node(d).fanin()[0].index()]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::parser::parse_bench;
    use bist_netlist::{benchmarks, fuzz, writer};

    #[test]
    fn every_suite_circuit_equals_itself() {
        for entry in benchmarks::suite_up_to(2000) {
            let c = entry.build().unwrap();
            assert_eq!(check_equiv(&c, &c), Ok(()), "{}", entry.name);
        }
    }

    #[test]
    fn writer_parser_round_trip_is_equivalent() {
        for entry in benchmarks::suite_up_to(2000) {
            let c = entry.build().unwrap();
            let text = writer::to_bench(&c);
            let back = parse_bench(entry.name, &text).unwrap();
            assert_eq!(check_equiv(&c, &back), Ok(()), "{}", entry.name);
            assert_eq!(structural_hash(&c), structural_hash(&back), "{}", entry.name);
        }
    }

    #[test]
    fn gate_reordering_is_equivalent() {
        // The same netlist with gate lines declared in reverse order:
        // different NodeIds, identical structure.
        let fwd = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
u = AND(a, b)
v = OR(u, a)
y = XOR(u, v)
";
        let rev = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(u, v)
v = OR(u, a)
u = AND(a, b)
";
        let cf = parse_bench("fwd", fwd).unwrap();
        let cr = parse_bench("rev", rev).unwrap();
        assert_eq!(check_equiv(&cf, &cr), Ok(()));
        assert_eq!(structural_hash(&cf), structural_hash(&cr));
    }

    #[test]
    fn renaming_is_equivalent() {
        let orig = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = NAND(a, q)\n";
        let renamed = "INPUT(in0)\nOUTPUT(out0)\nstate = DFF(out0)\nout0 = NAND(in0, state)\n";
        let a = parse_bench("orig", orig).unwrap();
        let b = parse_bench("renamed", renamed).unwrap();
        assert_eq!(check_equiv(&a, &b), Ok(()));
    }

    #[test]
    fn opcode_flip_is_rejected() {
        let and = parse_bench("a", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let nand = parse_bench("b", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let err = check_equiv(&and, &nand).unwrap_err();
        assert_eq!(err.scope, "po-cone", "{err}");
        assert_ne!(structural_hash(&and), structural_hash(&nand));
    }

    #[test]
    fn swapped_fanins_on_asymmetric_cones_are_rejected() {
        // The gates are commutative, but the *cones* behind pin 0 and
        // pin 1 differ: swapping them changes the structure. The checker
        // is order-sensitive by design (sound, not complete).
        let ab = parse_bench("ab", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\ny = AND(n, b)\n")
            .unwrap();
        let ba = parse_bench("ba", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\ny = AND(b, n)\n")
            .unwrap();
        let err = check_equiv(&ab, &ba).unwrap_err();
        assert_eq!(err.scope, "po-cone", "{err}");
    }

    #[test]
    fn dff_cone_mutation_is_rejected() {
        let a =
            parse_bench("a", "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(d)\nd = OR(a, b)\n").unwrap();
        let b =
            parse_bench("b", "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(d)\nd = OR(a, a)\n").unwrap();
        let err = check_equiv(&a, &b).unwrap_err();
        assert_eq!(err.scope, "dff-cone", "{err}");
    }

    #[test]
    fn interface_mismatch_is_rejected() {
        let one = parse_bench("one", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let two = parse_bench("two", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let err = check_equiv(&one, &two).unwrap_err();
        assert_eq!(err.scope, "interface", "{err}");
        assert!(err.to_string().contains("inputs"), "{err}");
    }

    #[test]
    fn pi_position_swap_is_rejected() {
        // Same gates, PI declaration order swapped: vectors are
        // positional, so this is a different circuit.
        let ab = parse_bench("ab", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let ba = parse_bench("ba", "INPUT(b)\nINPUT(a)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        assert!(check_equiv(&ab, &ba).is_err());
    }

    #[test]
    fn self_feeding_state_terminates() {
        // q = DFF(q): the cut-point rule must stop the walk.
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(q)\ny = AND(a, q)\n";
        let a = parse_bench("a", src).unwrap();
        let b = parse_bench("b", src).unwrap();
        assert_eq!(check_equiv(&a, &b), Ok(()));
    }

    #[test]
    fn fuzz_round_trips_are_equivalent() {
        for seed in 0..24 {
            let c = fuzz::fuzz_circuit(seed);
            let back = parse_bench("rt", &writer::to_bench(&c)).unwrap();
            assert_eq!(check_equiv(&c, &back), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn hash_is_name_insensitive_but_structure_sensitive() {
        let a = parse_bench("x", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let b = parse_bench("y", "INPUT(p)\nOUTPUT(q)\nq = NOT(p)\n").unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));
        let c = parse_bench("z", "INPUT(p)\nOUTPUT(q)\nq = BUF(p)\n").unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&c));
    }
}
