//! Netlist lint: structural diagnostics over `.bench` sources and
//! validated circuits.
//!
//! Two entry points share one code table:
//!
//! * [`lint_source`] runs on raw `.bench` text via the lenient
//!   [`parse_bench_raw`](bist_netlist::parser::parse_bench_raw) layer, so
//!   it can *diagnose* netlists the strict parser would refuse —
//!   duplicate drivers, combinational cycles, undriven nets, degenerate
//!   arities — instead of stopping at the first defect. Only outright
//!   syntax junk (unparseable lines, unknown gate kinds) is an error.
//! * [`lint_circuit`] runs on an already-validated
//!   [`Circuit`](bist_netlist::Circuit). Construction has excluded the
//!   error-class defects, so only the warning-class analyses (dead
//!   logic, duplicate fanin, constant always-X nets, duplicate cones)
//!   can fire.
//!
//! Every diagnostic carries a stable [`LintCode`] (`L001`…), a
//! [`Severity`] and the offending net names. "Lint-clean" means **no
//! error-severity diagnostics** ([`is_clean`]): warnings flag dead or
//! redundant structure that simulates fine — the fuzz corpus
//! deliberately contains such shapes.

use bist_netlist::parser::{parse_bench, parse_bench_raw, RawStatement};
use bist_netlist::{
    always_x_closure, duplicate_cone_pairs, Circuit, GateKind, NetlistError, NodeKind,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The netlist violates an invariant every engine assumes; the strict
    /// parser/builder would reject it.
    Error,
    /// Dead or redundant structure: legal to build and simulate, but
    /// almost certainly not what the author meant.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Stable lint code. The `L0xx` string form is the public contract —
/// JSONL consumers and the dirty fuzz generator key on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `L001` — combinational cycle not broken by a flip-flop.
    CombinationalCycle,
    /// `L002` — a signal is read but never driven.
    UndrivenNet,
    /// `L003` — a signal is defined more than once.
    DuplicateDriver,
    /// `L004` — degenerate fanin: arity-0 gate, multi-input NOT/BUF/DFF,
    /// or a single-input AND/OR/XOR-class gate.
    DegenerateFanin,
    /// `L005` — a combinational gate reads its own output.
    SelfDrivingNet,
    /// `L006` — a primary input is also driven by a gate or flip-flop.
    InputDriven,
    /// `L007` — `OUTPUT(x)` references a signal that is never defined.
    UnknownOutput,
    /// `L008` — a gate that cannot reach any primary output (through any
    /// number of flip-flops); its value is computed and discarded.
    DanglingGate,
    /// `L009` — a flip-flop that cannot reach any primary output: state
    /// that is clocked but never observed.
    UnreachableDff,
    /// `L010` — a primary input that cannot reach any primary output.
    UnusedInput,
    /// `L011` — a gate lists the same fanin signal twice.
    DuplicateFanin,
    /// `L012` — the netlist declares no primary inputs.
    NoInputs,
    /// `L013` — the netlist declares no primary outputs.
    NoOutputs,
    /// `L014` — a gate or flip-flop whose value can never leave `X`
    /// under the pessimistic 3-valued semantics (the always-X closure
    /// the staged compiler's constant fold removes): logic that computes
    /// nothing observable.
    ConstantGate,
    /// `L015` — a pair of gates computing the identical function (same
    /// opcode over the same nets, after buffer/same-fanin forwarding):
    /// one of the two is redundant.
    DuplicateCone,
}

impl LintCode {
    /// All codes, in code order — the public catalogue.
    pub const ALL: [LintCode; 15] = [
        LintCode::CombinationalCycle,
        LintCode::UndrivenNet,
        LintCode::DuplicateDriver,
        LintCode::DegenerateFanin,
        LintCode::SelfDrivingNet,
        LintCode::InputDriven,
        LintCode::UnknownOutput,
        LintCode::DanglingGate,
        LintCode::UnreachableDff,
        LintCode::UnusedInput,
        LintCode::DuplicateFanin,
        LintCode::NoInputs,
        LintCode::NoOutputs,
        LintCode::ConstantGate,
        LintCode::DuplicateCone,
    ];

    /// The stable `L0xx` string form.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::CombinationalCycle => "L001",
            LintCode::UndrivenNet => "L002",
            LintCode::DuplicateDriver => "L003",
            LintCode::DegenerateFanin => "L004",
            LintCode::SelfDrivingNet => "L005",
            LintCode::InputDriven => "L006",
            LintCode::UnknownOutput => "L007",
            LintCode::DanglingGate => "L008",
            LintCode::UnreachableDff => "L009",
            LintCode::UnusedInput => "L010",
            LintCode::DuplicateFanin => "L011",
            LintCode::NoInputs => "L012",
            LintCode::NoOutputs => "L013",
            LintCode::ConstantGate => "L014",
            LintCode::DuplicateCone => "L015",
        }
    }

    /// The fixed severity of this code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::CombinationalCycle
            | LintCode::UndrivenNet
            | LintCode::DuplicateDriver
            | LintCode::DegenerateFanin
            | LintCode::SelfDrivingNet
            | LintCode::InputDriven
            | LintCode::UnknownOutput
            | LintCode::NoInputs
            | LintCode::NoOutputs => Severity::Error,
            LintCode::DanglingGate
            | LintCode::UnreachableDff
            | LintCode::UnusedInput
            | LintCode::DuplicateFanin
            | LintCode::ConstantGate
            | LintCode::DuplicateCone => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding: a stable code plus the offending nets and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code (severity is a property of the code).
    pub code: LintCode,
    /// Human-readable description, lowercase, one line.
    pub message: String,
    /// The offending net/gate names, sorted and deduplicated.
    pub nets: Vec<String>,
}

impl Diagnostic {
    /// The severity of this diagnostic (fixed per code).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    fn new(code: LintCode, message: String, mut nets: Vec<String>) -> Self {
        nets.sort();
        nets.dedup();
        Diagnostic { code, message, nets }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity(), self.code, self.message)
    }
}

/// `true` if `diags` contains no error-severity diagnostics.
///
/// Warnings (dead logic, duplicate fanin) do not make a netlist dirty:
/// the fuzz corpus deliberately produces such shapes and every engine
/// simulates them correctly.
#[must_use]
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity() != Severity::Error)
}

/// What a signal is defined as, in the raw statement stream.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DefKind {
    Input,
    Dff,
    Gate(GateKind),
}

/// Lints raw `.bench` text.
///
/// Structural defects become [`Diagnostic`]s; only syntactic junk is an
/// error. Diagnostics are sorted by code, then nets — deterministic for
/// a given source.
///
/// # Errors
///
/// Propagates [`NetlistError::ParseLine`] / [`NetlistError::UnknownGate`]
/// from the raw tokenizer; nothing else.
pub fn lint_source(source: &str) -> Result<Vec<Diagnostic>, NetlistError> {
    let statements = parse_bench_raw(source)?;
    let mut diags: Vec<Diagnostic> = Vec::new();

    // --- definition table (first definition wins for graph analyses) ---
    let mut def_lines: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut first_def: HashMap<&str, &RawStatement> = HashMap::new();
    let mut inputs: Vec<&str> = Vec::new();
    let mut outputs: Vec<(&str, usize)> = Vec::new();
    for raw in &statements {
        match &raw.stmt {
            RawStatement::Output(name) => outputs.push((name, raw.line)),
            stmt => {
                let name = stmt.defined().expect("non-OUTPUT statements define a signal");
                def_lines.entry(name).or_default().push(raw.line);
                first_def.entry(name).or_insert(stmt);
                if matches!(stmt, RawStatement::Input(_)) {
                    inputs.push(name);
                }
            }
        }
    }

    // L003 duplicate driver / L006 input driven. A signal that is both an
    // INPUT and gate-driven is the dedicated L006, not a generic L003.
    for (name, lines) in &def_lines {
        if lines.len() < 2 {
            continue;
        }
        let kinds: Vec<DefKind> = statements
            .iter()
            .filter(|r| r.stmt.defined() == Some(name))
            .map(|r| match &r.stmt {
                RawStatement::Input(_) => DefKind::Input,
                RawStatement::Dff { .. } => DefKind::Dff,
                RawStatement::Gate { kind, .. } => DefKind::Gate(*kind),
                RawStatement::Output(_) => unreachable!("outputs define nothing"),
            })
            .collect();
        let mixed = kinds.contains(&DefKind::Input) && kinds.iter().any(|k| *k != DefKind::Input);
        let lines_str = lines.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
        if mixed {
            diags.push(Diagnostic::new(
                LintCode::InputDriven,
                format!("primary input `{name}` is also driven (lines {lines_str})"),
                vec![(*name).to_string()],
            ));
        } else {
            diags.push(Diagnostic::new(
                LintCode::DuplicateDriver,
                format!("signal `{name}` has {} definitions (lines {lines_str})", lines.len()),
                vec![(*name).to_string()],
            ));
        }
    }

    // L005 self-driving gates, L004 degenerate fanin, L011 duplicate
    // fanin, L002 undriven references — one sweep over the statements.
    let mut undriven: BTreeSet<&str> = BTreeSet::new();
    for raw in &statements {
        match &raw.stmt {
            RawStatement::Input(_) | RawStatement::Output(_) => {}
            RawStatement::Dff { q, d } => {
                if d.len() != 1 {
                    diags.push(Diagnostic::new(
                        LintCode::DegenerateFanin,
                        format!("dff `{q}` has {} d-inputs on line {} (want 1)", d.len(), raw.line),
                        vec![q.clone()],
                    ));
                }
                for src in d {
                    if !def_lines.contains_key(src.as_str()) {
                        undriven.insert(src);
                    }
                }
            }
            RawStatement::Gate { out, kind, fanin } => {
                let want_one = matches!(kind, GateKind::Not | GateKind::Buf);
                let degenerate = fanin.is_empty()
                    || (want_one && fanin.len() != 1)
                    || (!want_one && fanin.len() < 2);
                if degenerate {
                    diags.push(Diagnostic::new(
                        LintCode::DegenerateFanin,
                        format!(
                            "gate `{out}` of kind {kind} has {} fanins on line {}",
                            fanin.len(),
                            raw.line
                        ),
                        vec![out.clone()],
                    ));
                }
                if fanin.iter().any(|f| f == out) {
                    diags.push(Diagnostic::new(
                        LintCode::SelfDrivingNet,
                        format!("gate `{out}` reads its own output on line {}", raw.line),
                        vec![out.clone()],
                    ));
                }
                let mut seen: HashSet<&str> = HashSet::new();
                let mut dup: BTreeSet<&str> = BTreeSet::new();
                for f in fanin {
                    if !seen.insert(f) {
                        dup.insert(f);
                    }
                    if !def_lines.contains_key(f.as_str()) {
                        undriven.insert(f);
                    }
                }
                if !dup.is_empty() {
                    let mut nets = vec![out.clone()];
                    nets.extend(dup.iter().map(|s| (*s).to_string()));
                    diags.push(Diagnostic::new(
                        LintCode::DuplicateFanin,
                        format!("gate `{out}` lists a fanin more than once on line {}", raw.line),
                        nets,
                    ));
                }
            }
        }
    }
    for name in &undriven {
        diags.push(Diagnostic::new(
            LintCode::UndrivenNet,
            format!("signal `{name}` is read but never driven"),
            vec![(*name).to_string()],
        ));
    }

    // L007 unknown outputs.
    for (name, line) in &outputs {
        if !def_lines.contains_key(name) {
            diags.push(Diagnostic::new(
                LintCode::UnknownOutput,
                format!("output `{name}` on line {line} is never defined"),
                vec![(*name).to_string()],
            ));
        }
    }

    // L012 / L013.
    if inputs.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::NoInputs,
            "netlist declares no primary inputs".to_string(),
            Vec::new(),
        ));
    }
    if outputs.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::NoOutputs,
            "netlist declares no primary outputs".to_string(),
            Vec::new(),
        ));
    }

    // L001 combinational cycles: Kahn's algorithm over gate→gate edges
    // (flip-flops break cycles; undefined fanins have no edge). Forward
    // Kahn leaves the gates on or downstream of a cycle; a reverse Kahn
    // over the leftover subgraph then prunes the downstream tail, so the
    // reported nets are exactly the cyclic structure. `O(V + E)`.
    let gates: Vec<(&str, &Vec<String>)> = first_def
        .iter()
        .filter_map(|(n, s)| match s {
            RawStatement::Gate { fanin, .. } => Some((*n, fanin)),
            _ => None,
        })
        .collect();
    let gate_idx: HashMap<&str, usize> =
        gates.iter().enumerate().map(|(i, (n, _))| (*n, i)).collect();
    // consumers[f] = gate indices reading gate f; indeg[g] = gate fanins.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    let mut indeg: Vec<usize> = vec![0; gates.len()];
    for (g, (_, fanin)) in gates.iter().enumerate() {
        for f in *fanin {
            if let Some(&src) = gate_idx.get(f.as_str()) {
                consumers[src].push(g);
                indeg[g] += 1;
            }
        }
    }
    let mut alive = vec![true; gates.len()];
    let mut queue: Vec<usize> = (0..gates.len()).filter(|&g| indeg[g] == 0).collect();
    while let Some(g) = queue.pop() {
        alive[g] = false;
        for &c in &consumers[g] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    // Reverse prune within the leftover subgraph.
    let mut outdeg: Vec<usize> = vec![0; gates.len()];
    for g in (0..gates.len()).filter(|&g| alive[g]) {
        outdeg[g] = consumers[g].iter().filter(|&&c| alive[c]).count();
    }
    let mut queue: Vec<usize> = (0..gates.len()).filter(|&g| alive[g] && outdeg[g] == 0).collect();
    while let Some(g) = queue.pop() {
        alive[g] = false;
        for f in gates[g].1 {
            if let Some(&src) = gate_idx.get(f.as_str()) {
                if alive[src] {
                    outdeg[src] -= 1;
                    if outdeg[src] == 0 {
                        queue.push(src);
                    }
                }
            }
        }
    }
    let cyclic: Vec<String> =
        (0..gates.len()).filter(|&g| alive[g]).map(|g| gates[g].0.to_string()).collect();
    if !cyclic.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::CombinationalCycle,
            format!("combinational cycle through {} gate(s)", cyclic.len()),
            cyclic,
        ));
    }

    // Warning-class liveness (dead logic). Only meaningful when the graph
    // itself is sound — on an error-ridden netlist reachability over a
    // half-defined graph produces noise, so skip it.
    if is_clean(&diags) {
        let live = live_set_raw(&first_def, &outputs);
        push_dead_logic(
            &mut diags,
            first_def.iter().map(|(n, s)| {
                let kind = match s {
                    RawStatement::Input(_) => DefKind::Input,
                    RawStatement::Dff { .. } => DefKind::Dff,
                    RawStatement::Gate { kind, .. } => DefKind::Gate(*kind),
                    RawStatement::Output(_) => unreachable!("outputs define nothing"),
                };
                (*n, kind, live.contains(n))
            }),
        );
        // The compile-analysis warnings (L014/L015) need a validated
        // graph; a clean raw lint is exactly what the strict parser
        // accepts, so parse failure only means there is nothing to add.
        if let Ok(circuit) = parse_bench("lint", source) {
            push_structure_warnings(&mut diags, &circuit);
        }
    }

    diags.sort_by(|a, b| (a.code, &a.nets, &a.message).cmp(&(b.code, &b.nets, &b.message)));
    Ok(diags)
}

/// Backward closure from the primary outputs over the raw graph,
/// traversing flip-flops into their D-sources.
fn live_set_raw<'a>(
    first_def: &HashMap<&'a str, &'a RawStatement>,
    outputs: &[(&'a str, usize)],
) -> HashSet<&'a str> {
    let mut live: HashSet<&str> = HashSet::new();
    let mut work: Vec<&str> = outputs.iter().map(|(n, _)| *n).collect();
    while let Some(name) = work.pop() {
        if !live.insert(name) {
            continue;
        }
        match first_def.get(name) {
            Some(RawStatement::Gate { fanin, .. }) => work.extend(fanin.iter().map(String::as_str)),
            Some(RawStatement::Dff { d, .. }) => work.extend(d.iter().map(String::as_str)),
            _ => {}
        }
    }
    live
}

/// Emits L008/L009/L010 from `(name, kind, live)` triples.
fn push_dead_logic<'a>(
    diags: &mut Vec<Diagnostic>,
    nodes: impl Iterator<Item = (&'a str, DefKind, bool)>,
) {
    let mut dead_gates: Vec<String> = Vec::new();
    let mut dead_dffs: Vec<String> = Vec::new();
    let mut dead_inputs: Vec<String> = Vec::new();
    for (name, kind, live) in nodes {
        if live {
            continue;
        }
        match kind {
            DefKind::Gate(_) => dead_gates.push(name.to_string()),
            DefKind::Dff => dead_dffs.push(name.to_string()),
            DefKind::Input => dead_inputs.push(name.to_string()),
        }
    }
    if !dead_gates.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::DanglingGate,
            format!("{} gate(s) cannot reach any primary output", dead_gates.len()),
            dead_gates,
        ));
    }
    if !dead_dffs.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::UnreachableDff,
            format!("{} flip-flop(s) cannot reach any primary output", dead_dffs.len()),
            dead_dffs,
        ));
    }
    if !dead_inputs.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::UnusedInput,
            format!("{} primary input(s) cannot reach any primary output", dead_inputs.len()),
            dead_inputs,
        ));
    }
}

/// Emits L014/L015 from the staged compiler's structural analyses: the
/// always-X closure (the constant fold's removal set) and duplicate-cone
/// pairs (the hash-cons dedup pass's merge set, without the PO
/// exemption).
fn push_structure_warnings(diags: &mut Vec<Diagnostic>, circuit: &Circuit) {
    let constant = always_x_closure(circuit);
    let nets: Vec<String> = circuit
        .nodes()
        .iter()
        .zip(&constant)
        .filter(|(_, in_closure)| **in_closure)
        .map(|(node, _)| node.name().to_string())
        .collect();
    if !nets.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::ConstantGate,
            format!("{} net(s) can never leave X under 3-valued simulation", nets.len()),
            nets,
        ));
    }
    for (dup, rep) in duplicate_cone_pairs(circuit) {
        let (dup, rep) = (circuit.node(dup).name(), circuit.node(rep).name());
        diags.push(Diagnostic::new(
            LintCode::DuplicateCone,
            format!("gate `{dup}` computes the same function as `{rep}`"),
            vec![dup.to_string(), rep.to_string()],
        ));
    }
}

/// Lints a validated [`Circuit`].
///
/// Construction already excludes every error-class defect, so only the
/// warning-class analyses can fire: dangling gates (L008), unreachable
/// flip-flops (L009), unused inputs (L010), duplicate fanin (L011),
/// constant always-X nets (L014) and duplicate cones (L015).
/// An empty result means the circuit is free of dead logic too.
#[must_use]
pub fn lint_circuit(circuit: &Circuit) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // L011 duplicate fanin.
    for &g in circuit.eval_order() {
        let node = circuit.node(g);
        let mut seen = HashSet::new();
        let dup: BTreeSet<&str> = node
            .fanin()
            .iter()
            .filter(|f| !seen.insert(**f))
            .map(|f| circuit.node(*f).name())
            .collect();
        if !dup.is_empty() {
            let mut nets = vec![node.name().to_string()];
            nets.extend(dup.iter().map(|s| (*s).to_string()));
            diags.push(Diagnostic::new(
                LintCode::DuplicateFanin,
                format!("gate `{}` lists a fanin more than once", node.name()),
                nets,
            ));
        }
    }

    // Liveness: backward from the POs, through DFFs into their D-sources.
    let mut live = vec![false; circuit.num_nodes()];
    let mut work: Vec<bist_netlist::NodeId> = circuit.outputs().to_vec();
    while let Some(id) = work.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        work.extend(circuit.node(id).fanin().iter().copied());
    }
    push_dead_logic(
        &mut diags,
        circuit.nodes().iter().enumerate().map(|(i, node)| {
            let kind = match node.kind() {
                NodeKind::Input => DefKind::Input,
                NodeKind::Dff => DefKind::Dff,
                NodeKind::Gate(k) => DefKind::Gate(*k),
            };
            (node.name(), kind, live[i])
        }),
    );
    push_structure_warnings(&mut diags, circuit);

    diags.sort_by(|a, b| (a.code, &a.nets, &a.message).cmp(&(b.code, &b.nets, &b.message)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::parser::parse_bench;
    use bist_netlist::{benchmarks, fuzz};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    /// A netlist that triggers nothing.
    const CLEAN: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, b)
y = XOR(q, b)
";

    #[test]
    fn clean_source_has_no_diagnostics() {
        assert_eq!(lint_source(CLEAN).unwrap(), Vec::new());
    }

    #[test]
    fn l001_combinational_cycle() {
        let src = "\
INPUT(a)
OUTPUT(y)
u = AND(a, w)
w = OR(u, a)
y = NOT(u)
";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L001"]);
        // `y` is downstream of the cycle, not on it.
        assert_eq!(diags[0].nets, ["u", "w"]);
        assert!(!is_clean(&diags));
        // Counterexample: the same loop broken by a DFF is sequential
        // feedback, not a combinational cycle.
        let src = "\
INPUT(a)
OUTPUT(y)
u = AND(a, w)
w = DFF(u)
y = NOT(u)
";
        assert_eq!(lint_source(src).unwrap(), Vec::new());
    }

    #[test]
    fn l002_undriven_net() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L002"]);
        assert_eq!(diags[0].nets, ["ghost"]);
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(ghost)\ny = AND(a, q)\n";
        assert_eq!(codes(&lint_source(src).unwrap()), ["L002"]);
        assert_eq!(lint_source(CLEAN).unwrap(), Vec::new());
    }

    #[test]
    fn l003_duplicate_driver() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L003"]);
        assert_eq!(diags[0].nets, ["y"]);
        assert!(diags[0].message.contains("lines 4, 5"), "{}", diags[0].message);
    }

    #[test]
    fn l004_degenerate_fanin() {
        // Single-input AND, two-input NOT, two-input DFF.
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
OUTPUT(q)
y = AND(a)
z = NOT(a, b)
q = DFF(a, b)
";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L004", "L004", "L004"]);
        // Counterexample: NOT with one input and AND with two are fine.
        assert_eq!(lint_source(CLEAN).unwrap(), Vec::new());
    }

    #[test]
    fn l005_self_driving_net() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n";
        let diags = lint_source(src).unwrap();
        // The self-loop is both the tightest cycle (L001) and its own
        // dedicated code.
        assert!(codes(&diags).contains(&"L005"), "{diags:?}");
        // Counterexample: a DFF may feed itself.
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n";
        let diags = lint_source(src).unwrap();
        assert!(!codes(&diags).contains(&"L005"), "{diags:?}");
    }

    #[test]
    fn l006_input_driven() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = AND(b, b)\n";
        let diags = lint_source(src).unwrap();
        assert!(codes(&diags).contains(&"L006"), "{diags:?}");
        // Not double-reported as a generic duplicate.
        assert!(!codes(&diags).contains(&"L003"), "{diags:?}");
    }

    #[test]
    fn l007_unknown_output() {
        let src = "INPUT(a)\nOUTPUT(y)\nOUTPUT(nope)\ny = NOT(a)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L007"]);
        assert_eq!(diags[0].nets, ["nope"]);
    }

    #[test]
    fn l008_dangling_gate() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = AND(a, y)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L008"]);
        assert_eq!(diags[0].nets, ["dead"]);
        assert_eq!(diags[0].severity(), Severity::Warning);
        assert!(is_clean(&diags), "warnings do not dirty a netlist");
    }

    #[test]
    fn l009_unreachable_dff() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nq = DFF(a)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L009"]);
        assert_eq!(diags[0].nets, ["q"]);
        // Counterexample: a DFF observed only through another cycle of
        // state is still live.
        let src = "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\nq2 = DFF(q1)\ny = NOT(q2)\n";
        assert_eq!(lint_source(src).unwrap(), Vec::new());
    }

    #[test]
    fn l010_unused_input() {
        let src = "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L010"]);
        assert_eq!(diags[0].nets, ["unused"]);
    }

    #[test]
    fn l011_duplicate_fanin() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, a)\n";
        let diags = lint_source(src).unwrap();
        // `b` is also unused; filter to the duplicate-fanin finding.
        assert!(codes(&diags).contains(&"L011"), "{diags:?}");
        let d = diags.iter().find(|d| d.code == LintCode::DuplicateFanin).unwrap();
        assert_eq!(d.nets, ["a", "y"]);
    }

    #[test]
    fn l014_constant_gate() {
        // q never leaves X (DFF self-loop); g is in the closure with it.
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(q)\ng = NOT(q)\ny = OR(g, a)\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L014"]);
        assert_eq!(diags[0].nets, ["g", "q"]);
        assert_eq!(diags[0].severity(), Severity::Warning);
        assert!(is_clean(&diags));
        // The circuit-level pass agrees.
        let c = parse_bench("t", src).unwrap();
        assert_eq!(codes(&lint_circuit(&c)), ["L014"]);
        // Counterexample: a DFF fed from a PI leaves X after one clock.
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = NOT(q)\n";
        assert_eq!(lint_source(src).unwrap(), Vec::new());
    }

    #[test]
    fn l015_duplicate_cone() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NOR(a, b)
g2 = NOR(a, b)
y = XOR(g1, g2)
";
        let diags = lint_source(src).unwrap();
        assert_eq!(codes(&diags), ["L015"]);
        assert_eq!(diags[0].nets, ["g1", "g2"]);
        assert!(diags[0].message.contains("same function"), "{}", diags[0].message);
        let c = parse_bench("t", src).unwrap();
        assert_eq!(codes(&lint_circuit(&c)), ["L015"]);
        // A duplicate hidden behind a buffer is still found (forwarding).
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
p = BUF(a)
g1 = NAND(p, b)
g2 = NAND(a, b)
y = AND(g1, g2)
";
        assert!(codes(&lint_source(src).unwrap()).contains(&"L015"));
        // Counterexample: same fanins, different opcode — no duplicate.
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng1 = NOR(a, b)\ng2 = NAND(a, b)\ny = XOR(g1, g2)\n";
        assert_eq!(lint_source(src).unwrap(), Vec::new());
    }

    #[test]
    fn l012_l013_missing_interface() {
        let diags = lint_source("y = AND(x, x)\nOUTPUT(y)\n").unwrap();
        assert!(codes(&diags).contains(&"L012"), "{diags:?}");
        let diags = lint_source("INPUT(a)\n").unwrap();
        assert!(codes(&diags).contains(&"L013"), "{diags:?}");
    }

    #[test]
    fn syntax_junk_is_an_error_not_a_diagnostic() {
        assert!(lint_source("INPUT(a)\ny FROB a\n").is_err());
        assert!(lint_source("INPUT(a)\ny = FROB(a)\n").is_err());
    }

    #[test]
    fn suite_circuits_are_lint_clean() {
        for entry in benchmarks::suite() {
            let c = entry.build().unwrap();
            let diags = lint_circuit(&c);
            assert!(is_clean(&diags), "{}: {diags:?}", entry.name);
        }
    }

    #[test]
    fn fuzz_corpus_is_lint_clean_fast_subset() {
        // The full 208-seed sweep lives in the integration suite; keep a
        // fast cross-section here covering every shape class.
        for seed in 0..24 {
            let c = fuzz::fuzz_circuit(seed);
            let diags = lint_circuit(&c);
            assert!(is_clean(&diags), "seed {seed}: {diags:?}");
        }
    }

    #[test]
    fn source_and_circuit_lints_agree_on_warnings() {
        let src = "INPUT(a)\nINPUT(u)\nOUTPUT(y)\ny = NOT(a)\ndead = AND(a, a)\nq = DFF(dead)\n";
        let from_source = lint_source(src).unwrap();
        let c = parse_bench("t", src).unwrap();
        let from_circuit = lint_circuit(&c);
        // Messages differ (the source layer cites lines); codes and nets
        // must agree exactly.
        let key =
            |ds: &[Diagnostic]| ds.iter().map(|d| (d.code, d.nets.clone())).collect::<Vec<_>>();
        assert_eq!(key(&from_source), key(&from_circuit));
        assert_eq!(codes(&from_source), ["L008", "L009", "L010", "L011"], "{from_source:?}");
    }

    #[test]
    fn code_table_is_stable() {
        let strs: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            strs,
            [
                "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
                "L011", "L012", "L013", "L014", "L015"
            ]
        );
        // Codes are unique and each maps to exactly one severity.
        let unique: HashSet<&str> = strs.iter().copied().collect();
        assert_eq!(unique.len(), LintCode::ALL.len());
        assert_eq!(LintCode::DanglingGate.to_string(), "L008");
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn diagnostics_are_deterministic() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, g1)\ng1 = OR(a, g2)\ng2 = NOT(g1)\n";
        assert_eq!(lint_source(src).unwrap(), lint_source(src).unwrap());
    }
}
