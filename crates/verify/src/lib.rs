//! Static analysis for the `subseq-bist` pipeline.
//!
//! Four generations of hot-path machinery (packed-word lanes, compiled
//! gate tapes, patch-point injection, bit-plane tiles) rest on
//! structural invariants that until now were only exercised
//! *dynamically*, by differential tests. This crate checks them
//! statically — without simulating a single vector:
//!
//! * [`lint`] — netlist lint over `.bench` sources and validated
//!   [`Circuit`](bist_netlist::Circuit)s: combinational cycles, undriven
//!   nets, duplicate drivers, degenerate fanin, dangling logic,
//!   unreachable flip-flops, unused inputs. Every diagnostic carries a
//!   stable code (`L001`…), a severity and the offending net names.
//! * [`tape_check`] — audits a compiled
//!   [`GateTape`](bist_netlist::GateTape) against its source circuit:
//!   monotone levelized order, in-bounds CSR windows, run homogeneity,
//!   PI/PO/DFF table bijection, tile bounds. Wired behind
//!   `debug_assertions` at every compile site, so every debug test run
//!   audits every tape for free.
//! * [`equiv`] — a SAT/BDD-free structural equivalence checker
//!   (canonicalize, hash, compare PI/PO/DFF cones) gating the future
//!   netlist optimization pre-pass and today's writer→parser round trip.
//!
//! # Example
//!
//! ```
//! use bist_netlist::{benchmarks, GateTape};
//!
//! let c = benchmarks::s27();
//! // A validated benchmark circuit lints clean...
//! assert!(bist_verify::lint::is_clean(&bist_verify::lint::lint_circuit(&c)));
//! // ...its compiled tape satisfies every engine invariant...
//! let tape = GateTape::compile(&c);
//! assert!(bist_verify::tape_check::verify_tape(&c, &tape).is_ok());
//! // ...and it is structurally equivalent to itself.
//! assert!(bist_verify::equiv::check_equiv(&c, &c).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equiv;
pub mod lint;
pub mod tape_check;

pub use equiv::{check_equiv, structural_hash, Inequivalence};
pub use lint::{lint_circuit, lint_source, Diagnostic, LintCode, Severity};
pub use tape_check::{audit_compiled, audit_tape, verify_compiled, verify_tape, TapeViolation};
