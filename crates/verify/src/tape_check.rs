//! Compiled-tape audit: proves a [`GateTape`] is a faithful, engine-safe
//! encoding of its source [`Circuit`].
//!
//! Every simulation engine walks the tape open-loop — no bounds checks
//! beyond the slice accesses, no re-validation of topological order. The
//! invariants they silently assume are exactly what [`verify_tape`]
//! checks:
//!
//! * **tables** — the PI/PO/DFF/D-source index tables are the circuit's,
//!   in declaration order;
//! * **csr** — `fanin_start` is monotone, sized `gates + 1`, ends at
//!   `fanin.len()`, and every fanin index is a valid node;
//! * **bijection** — tape gates ↔ circuit gates one-to-one, with matching
//!   opcode and pin-ordered fanin, and `gate_pos` as the inverse map;
//! * **order** — the tape is topological *and* level-monotone (the
//!   levelized schedule the run/tile machinery was built around);
//! * **runs** / **tiles** — runs partition the tape homogeneously in
//!   kind and arity class; tiles refine runs and respect
//!   [`GateTape::TILE_GATES`].
//!
//! [`audit_tape`] wraps the check in a panic for use behind
//! `debug_assertions` at the compile sites ([`ArtifactCache`],
//! `FaultSimulator`, `Session`), so every debug test run audits every
//! tape for free while release builds pay nothing.
//!
//! [`ArtifactCache`]: https://docs.rs/bist-batch

use bist_netlist::{Circuit, CompiledCircuit, GateTape, NodeId, NodeKind, RunArity, SiteRoute};
use std::collections::HashSet;
use std::fmt;

/// A violated tape invariant.
///
/// `check` is a stable short name of the violated invariant family
/// (`"tables"`, `"csr"`, `"bijection"`, `"order"`, `"runs"`, `"tiles"`);
/// `detail` is a human-readable account of the specific failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeViolation {
    /// The invariant family that failed.
    pub check: &'static str,
    /// What exactly was wrong.
    pub detail: String,
}

impl TapeViolation {
    fn new(check: &'static str, detail: String) -> Self {
        TapeViolation { check, detail }
    }
}

impl fmt::Display for TapeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape invariant `{}` violated: {}", self.check, self.detail)
    }
}

impl std::error::Error for TapeViolation {}

/// The arity class the run/tile machinery assigns to a fanin count.
fn arity_class(n: usize) -> RunArity {
    match n {
        1 => RunArity::One,
        2 => RunArity::Two,
        _ => RunArity::Many,
    }
}

/// Audits `tape` against the `circuit` it claims to encode.
///
/// `O(nodes + fanin)` — cheap enough to run on every compile in debug
/// builds. Returns the first violation found; a tape produced by
/// [`GateTape::compile`] from the same circuit always passes.
///
/// # Errors
///
/// A [`TapeViolation`] naming the invariant family and the failing
/// gate/node.
pub fn verify_tape(circuit: &Circuit, tape: &GateTape) -> Result<(), TapeViolation> {
    let nodes = circuit.num_nodes();
    let gates = tape.num_gates();

    // --- tables ------------------------------------------------------
    if tape.num_nodes() != nodes {
        return Err(TapeViolation::new(
            "tables",
            format!("tape has {} nodes, circuit has {nodes}", tape.num_nodes()),
        ));
    }
    if gates != circuit.num_gates() {
        return Err(TapeViolation::new(
            "tables",
            format!("tape has {gates} gates, circuit has {}", circuit.num_gates()),
        ));
    }
    let table_eq = |label: &str, got: &[u32], want: &[NodeId]| -> Result<(), TapeViolation> {
        if got.len() != want.len() || got.iter().zip(want).any(|(&g, w)| g as usize != w.index()) {
            return Err(TapeViolation::new(
                "tables",
                format!("{label} table does not match the circuit's declaration order"),
            ));
        }
        Ok(())
    };
    table_eq("input", tape.inputs(), circuit.inputs())?;
    table_eq("output", tape.outputs(), circuit.outputs())?;
    table_eq("dff", tape.dffs(), circuit.dffs())?;
    if tape.dff_src().len() != circuit.num_dffs() {
        return Err(TapeViolation::new(
            "tables",
            format!("dff_src has {} entries for {} dffs", tape.dff_src().len(), circuit.num_dffs()),
        ));
    }
    for (k, &d) in circuit.dffs().iter().enumerate() {
        let want = circuit.node(d).fanin()[0].index();
        if tape.dff_src()[k] as usize != want {
            return Err(TapeViolation::new(
                "tables",
                format!(
                    "dff {k} d-source is node {} on the tape, {want} in the circuit",
                    tape.dff_src()[k]
                ),
            ));
        }
    }

    // --- csr ---------------------------------------------------------
    let starts = tape.fanin_start();
    if starts.len() != gates + 1 {
        return Err(TapeViolation::new(
            "csr",
            format!("fanin_start has {} entries for {gates} gates", starts.len()),
        ));
    }
    if starts.first() != Some(&0) {
        return Err(TapeViolation::new("csr", "fanin_start does not begin at 0".to_string()));
    }
    if let Some(g) = starts.windows(2).position(|w| w[0] > w[1]) {
        return Err(TapeViolation::new("csr", format!("fanin_start decreases at gate {g}")));
    }
    if *starts.last().expect("nonempty") as usize != tape.fanin().len() {
        return Err(TapeViolation::new(
            "csr",
            format!(
                "fanin_start ends at {} but fanin holds {} entries",
                starts.last().expect("nonempty"),
                tape.fanin().len()
            ),
        ));
    }
    if let Some(&f) = tape.fanin().iter().find(|&&f| f as usize >= nodes) {
        return Err(TapeViolation::new(
            "csr",
            format!("fanin references node {f}, but the circuit has {nodes} nodes"),
        ));
    }
    if tape.ops().len() != gates || tape.gate_out().len() != gates {
        return Err(TapeViolation::new(
            "csr",
            "ops / gate_out length disagrees with the gate count".to_string(),
        ));
    }

    // --- bijection ---------------------------------------------------
    let mut seen = vec![false; nodes];
    for g in 0..gates {
        let out = tape.gate_out()[g] as usize;
        if out >= nodes {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} writes node {out}, out of range"),
            ));
        }
        let id = NodeId::from_index(out);
        let node = circuit.node(id);
        let NodeKind::Gate(kind) = node.kind() else {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} writes `{}`, which is not a gate node", node.name()),
            ));
        };
        if seen[out] {
            return Err(TapeViolation::new(
                "bijection",
                format!("node `{}` is driven by two tape positions", node.name()),
            ));
        }
        seen[out] = true;
        if tape.ops()[g] != *kind {
            return Err(TapeViolation::new(
                "bijection",
                format!(
                    "gate {g} (`{}`) has opcode {:?} on the tape, {kind:?} in the circuit",
                    node.name(),
                    tape.ops()[g]
                ),
            ));
        }
        let fanin = tape.fanin_of(g);
        if fanin.len() != node.fanin().len()
            || fanin.iter().zip(node.fanin()).any(|(&f, w)| f as usize != w.index())
        {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} (`{}`) fanin window disagrees with the circuit", node.name()),
            ));
        }
        if tape.gate_pos(out) != Some(g) {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate_pos(`{}`) does not invert gate_out", node.name()),
            ));
        }
    }
    for &g in circuit.eval_order() {
        if !seen[g.index()] {
            return Err(TapeViolation::new(
                "bijection",
                format!("circuit gate `{}` is missing from the tape", circuit.node(g).name()),
            ));
        }
    }
    for &id in circuit.inputs().iter().chain(circuit.dffs()) {
        if tape.gate_pos(id.index()).is_some() {
            return Err(TapeViolation::new(
                "bijection",
                format!("non-gate node `{}` has a tape position", circuit.node(id).name()),
            ));
        }
    }

    // --- order -------------------------------------------------------
    // Topological: every gate fanin that is itself a gate was evaluated
    // at an earlier position. Level-monotone: positions never decrease
    // in circuit level (the levelized schedule runs/tiles assume).
    let mut prev_level = 0u32;
    for g in 0..gates {
        for &f in tape.fanin_of(g) {
            if let Some(src) = tape.gate_pos(f as usize) {
                if src >= g {
                    return Err(TapeViolation::new(
                        "order",
                        format!("gate {g} reads gate {src} before it is evaluated"),
                    ));
                }
            }
        }
        let level = circuit.level(NodeId::from_index(tape.gate_out()[g] as usize));
        if level < prev_level {
            return Err(TapeViolation::new(
                "order",
                format!("tape level decreases at gate {g} ({prev_level} -> {level})"),
            ));
        }
        prev_level = level;
    }

    // --- runs --------------------------------------------------------
    let mut next = 0u32;
    for (i, run) in tape.runs().iter().enumerate() {
        if run.start != next || run.end <= run.start {
            return Err(TapeViolation::new(
                "runs",
                format!("run {i} [{}, {}) does not tile the tape at {next}", run.start, run.end),
            ));
        }
        for g in run.start as usize..run.end as usize {
            if tape.ops()[g] != run.kind || arity_class(tape.fanin_of(g).len()) != run.arity {
                return Err(TapeViolation::new(
                    "runs",
                    format!("gate {g} breaks the homogeneity of run {i}"),
                ));
            }
        }
        next = run.end;
    }
    if next as usize != gates {
        return Err(TapeViolation::new("runs", format!("runs cover {next} of {gates} gates")));
    }

    // --- tiles -------------------------------------------------------
    let mut next = 0u32;
    let mut run_iter = tape.runs().iter();
    let mut run = run_iter.next();
    for (i, tile) in tape.tiles().iter().enumerate() {
        if tile.start != next || tile.end <= tile.start {
            return Err(TapeViolation::new(
                "tiles",
                format!("tile {i} [{}, {}) does not tile the tape at {next}", tile.start, tile.end),
            ));
        }
        if (tile.end - tile.start) as usize > GateTape::TILE_GATES {
            return Err(TapeViolation::new(
                "tiles",
                format!(
                    "tile {i} holds {} gates (max {})",
                    tile.end - tile.start,
                    GateTape::TILE_GATES
                ),
            ));
        }
        while let Some(r) = run {
            if tile.start >= r.end {
                run = run_iter.next();
            } else {
                if tile.start < r.start
                    || tile.end > r.end
                    || tile.kind != r.kind
                    || tile.arity != r.arity
                {
                    return Err(TapeViolation::new(
                        "tiles",
                        format!("tile {i} crosses or contradicts its run"),
                    ));
                }
                break;
            }
        }
        next = tile.end;
    }
    if next as usize != gates {
        return Err(TapeViolation::new("tiles", format!("tiles cover {next} of {gates} gates")));
    }

    Ok(())
}

/// Panics if `tape` is not a faithful encoding of `circuit`.
///
/// The `debug_assertions` hook for compile sites:
///
/// ```ignore
/// let tape = GateTape::compile(&circuit);
/// #[cfg(debug_assertions)]
/// bist_verify::audit_tape(&circuit, &tape);
/// ```
///
/// # Panics
///
/// On the first [`TapeViolation`], with its message.
pub fn audit_tape(circuit: &Circuit, tape: &GateTape) {
    if let Err(v) = verify_tape(circuit, tape) {
        panic!("{} (circuit `{}`)", v, circuit.name());
    }
}

/// Audits a staged compile: the baseline tape is a faithful identity
/// encoding ([`verify_tape`]), the optimized tape is a sound *subset*
/// encoding (every tape gate is an original gate with its opcode, fanins
/// either original or substituted for removed gates, CSR/order/runs/tiles
/// well-formed), and the [`SiteMap`](bist_netlist::SiteMap) is total and
/// injective (`Direct` sites are on the tape, `Redirect` targets are
/// distinct `Direct` pins that originally read the redirected node,
/// `Untestable` sites cannot reach a primary output in the original
/// graph).
///
/// # Errors
///
/// A [`TapeViolation`]; the new invariant family is `"sitemap"`.
pub fn verify_compiled(circuit: &Circuit, compiled: &CompiledCircuit) -> Result<(), TapeViolation> {
    verify_tape(circuit, compiled.baseline())?;
    let map = compiled.site_map();
    if map.num_nodes() != circuit.num_nodes() {
        return Err(TapeViolation::new(
            "sitemap",
            format!(
                "site map covers {} nodes, circuit has {}",
                map.num_nodes(),
                circuit.num_nodes()
            ),
        ));
    }
    if map.is_identity() {
        verify_tape(circuit, compiled.tape())?;
        for i in 0..circuit.num_nodes() {
            let id = NodeId::from_index(i);
            if map.output_route(id) != SiteRoute::Direct || map.input_route(id) != SiteRoute::Direct
            {
                return Err(TapeViolation::new(
                    "sitemap",
                    format!("identity map routes node {i} away from Direct"),
                ));
            }
        }
        if map.needs_baseline() {
            return Err(TapeViolation::new(
                "sitemap",
                "identity map claims to need the baseline tape".to_string(),
            ));
        }
        return Ok(());
    }

    let tape = compiled.tape();
    let nodes = circuit.num_nodes();
    let gates = tape.num_gates();
    let on_tape = |i: usize| tape.gate_pos(i).is_some();
    let removed_gate =
        |i: usize| circuit.node(NodeId::from_index(i)).kind().is_gate() && !on_tape(i);

    // --- tables ------------------------------------------------------
    if tape.num_nodes() != nodes {
        return Err(TapeViolation::new(
            "tables",
            format!("optimized tape has {} nodes, circuit has {nodes}", tape.num_nodes()),
        ));
    }
    if gates > circuit.num_gates() {
        return Err(TapeViolation::new(
            "tables",
            format!("optimized tape has {gates} gates, circuit only {}", circuit.num_gates()),
        ));
    }
    let table_eq = |label: &str, got: &[u32], want: &[NodeId]| -> Result<(), TapeViolation> {
        if got.len() != want.len() || got.iter().zip(want).any(|(&g, w)| g as usize != w.index()) {
            return Err(TapeViolation::new(
                "tables",
                format!("{label} table does not match the circuit's declaration order"),
            ));
        }
        Ok(())
    };
    table_eq("input", tape.inputs(), circuit.inputs())?;
    table_eq("output", tape.outputs(), circuit.outputs())?;
    table_eq("dff", tape.dffs(), circuit.dffs())?;
    for (k, &d) in circuit.dffs().iter().enumerate() {
        let got = tape.dff_src()[k] as usize;
        let want = circuit.node(d).fanin()[0].index();
        // A rewritten D-source is legal only when the original was removed.
        if got != want && !removed_gate(want) {
            return Err(TapeViolation::new(
                "tables",
                format!("dff {k} d-source rewritten to {got} but original {want} survives"),
            ));
        }
        if got >= nodes {
            return Err(TapeViolation::new("tables", format!("dff {k} d-source out of range")));
        }
    }

    // --- csr ---------------------------------------------------------
    let starts = tape.fanin_start();
    if starts.len() != gates + 1
        || starts.first() != Some(&0)
        || starts.windows(2).any(|w| w[0] > w[1])
        || *starts.last().expect("nonempty") as usize != tape.fanin().len()
        || tape.fanin().iter().any(|&f| f as usize >= nodes)
        || tape.ops().len() != gates
        || tape.gate_out().len() != gates
    {
        return Err(TapeViolation::new(
            "csr",
            "optimized tape CSR tables are malformed".to_string(),
        ));
    }

    // --- bijection (subset) ------------------------------------------
    let mut seen = vec![false; nodes];
    for g in 0..gates {
        let out = tape.gate_out()[g] as usize;
        if out >= nodes {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} writes node {out}, out of range"),
            ));
        }
        let id = NodeId::from_index(out);
        let node = circuit.node(id);
        let NodeKind::Gate(kind) = node.kind() else {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} writes `{}`, which is not a gate node", node.name()),
            ));
        };
        if seen[out] || tape.gate_pos(out) != Some(g) {
            return Err(TapeViolation::new(
                "bijection",
                format!("node `{}` does not map one-to-one onto the tape", node.name()),
            ));
        }
        seen[out] = true;
        if tape.ops()[g] != *kind {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} (`{}`) opcode differs from the circuit", node.name()),
            ));
        }
        let fanin = tape.fanin_of(g);
        if fanin.len() != node.fanin().len() {
            return Err(TapeViolation::new(
                "bijection",
                format!("gate {g} (`{}`) arity differs from the circuit", node.name()),
            ));
        }
        // Pins keep their original source unless that source was removed
        // and substituted by an equal-valued survivor.
        for (p, (&f, w)) in fanin.iter().zip(node.fanin()).enumerate() {
            if f as usize != w.index() && !removed_gate(w.index()) {
                return Err(TapeViolation::new(
                    "bijection",
                    format!(
                        "gate {g} (`{}`) pin {p} rewritten while its original source survives",
                        node.name()
                    ),
                ));
            }
        }
    }
    for &id in circuit.inputs().iter().chain(circuit.dffs()) {
        if tape.gate_pos(id.index()).is_some() {
            return Err(TapeViolation::new(
                "bijection",
                format!("non-gate node `{}` has a tape position", circuit.node(id).name()),
            ));
        }
    }

    // --- order -------------------------------------------------------
    // Topological over the tape's own gates. (Level monotonicity is
    // against the *rewritten* graph's levels, which the tape does not
    // expose — the run/tile checks below still pin the schedule shape.)
    for g in 0..gates {
        for &f in tape.fanin_of(g) {
            if let Some(src) = tape.gate_pos(f as usize) {
                if src >= g {
                    return Err(TapeViolation::new(
                        "order",
                        format!("gate {g} reads gate {src} before it is evaluated"),
                    ));
                }
            }
        }
    }

    // --- runs / tiles ------------------------------------------------
    let mut next = 0u32;
    for (i, run) in tape.runs().iter().enumerate() {
        if run.start != next || run.end <= run.start {
            return Err(TapeViolation::new(
                "runs",
                format!("run {i} [{}, {}) does not tile the tape at {next}", run.start, run.end),
            ));
        }
        for g in run.start as usize..run.end as usize {
            if tape.ops()[g] != run.kind || arity_class(tape.fanin_of(g).len()) != run.arity {
                return Err(TapeViolation::new(
                    "runs",
                    format!("gate {g} breaks the homogeneity of run {i}"),
                ));
            }
        }
        next = run.end;
    }
    if next as usize != gates {
        return Err(TapeViolation::new("runs", format!("runs cover {next} of {gates} gates")));
    }
    let mut next = 0u32;
    let mut run_iter = tape.runs().iter();
    let mut run = run_iter.next();
    for (i, tile) in tape.tiles().iter().enumerate() {
        if tile.start != next
            || tile.end <= tile.start
            || (tile.end - tile.start) as usize > GateTape::TILE_GATES
        {
            return Err(TapeViolation::new("tiles", format!("tile {i} is malformed")));
        }
        while let Some(r) = run {
            if tile.start >= r.end {
                run = run_iter.next();
            } else {
                if tile.start < r.start
                    || tile.end > r.end
                    || tile.kind != r.kind
                    || tile.arity != r.arity
                {
                    return Err(TapeViolation::new(
                        "tiles",
                        format!("tile {i} crosses or contradicts its run"),
                    ));
                }
                break;
            }
        }
        next = tile.end;
    }
    if next as usize != gates {
        return Err(TapeViolation::new("tiles", format!("tiles cover {next} of {gates} gates")));
    }

    // --- sitemap -----------------------------------------------------
    // Original-graph PO liveness: `Untestable` must be exact.
    let orig_live = {
        let mut live = vec![false; nodes];
        let mut stack: Vec<usize> = circuit.outputs().iter().map(|o| o.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            stack.extend(circuit.node(NodeId::from_index(i)).fanin().iter().map(|f| f.index()));
        }
        live
    };
    let mut redirect_targets: HashSet<(usize, u32)> = HashSet::new();
    let mut any_pinned = false;
    for (i, &live_in_original) in orig_live.iter().enumerate() {
        let id = NodeId::from_index(i);
        let is_gate = circuit.node(id).kind().is_gate();
        for (which, route) in [("output", map.output_route(id)), ("input", map.input_route(id))] {
            match route {
                SiteRoute::Direct => {
                    if is_gate && !on_tape(i) {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} {which} route is Direct but its gate was removed"),
                        ));
                    }
                }
                SiteRoute::Redirect { node, pin } => {
                    if which == "input" {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} input route is a Redirect"),
                        ));
                    }
                    if !removed_gate(i) {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} redirects but was not a removed gate"),
                        ));
                    }
                    let target = circuit.node(node);
                    let Some(&src) = target.fanin().get(pin as usize) else {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} redirects to out-of-range pin {pin} of {node}"),
                        ));
                    };
                    if src.index() != i {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} redirects to a pin that read {src}, not itself"),
                        ));
                    }
                    if map.input_route(node) != SiteRoute::Direct {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} redirects into a non-Direct consumer {node}"),
                        ));
                    }
                    if !redirect_targets.insert((node.index(), pin)) {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("two sites redirect to pin {pin} of {node}"),
                        ));
                    }
                }
                SiteRoute::Pinned => any_pinned = true,
                SiteRoute::Untestable => {
                    if live_in_original {
                        return Err(TapeViolation::new(
                            "sitemap",
                            format!("node {i} is PO-reachable but routed Untestable"),
                        ));
                    }
                }
            }
        }
    }
    if any_pinned && !map.needs_baseline() {
        return Err(TapeViolation::new(
            "sitemap",
            "map has pinned sites but claims not to need the baseline".to_string(),
        ));
    }
    Ok(())
}

/// Panics if the staged compile fails [`verify_compiled`] — the
/// `debug_assertions` hook for staged-compile sites, mirroring
/// [`audit_tape`].
///
/// # Panics
///
/// On the first [`TapeViolation`], with its message.
pub fn audit_compiled(circuit: &Circuit, compiled: &CompiledCircuit) {
    if let Err(v) = verify_compiled(circuit, compiled) {
        panic!("{} (circuit `{}`, passes `{}`)", v, circuit.name(), compiled.options().key());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::{benchmarks, fuzz, CircuitBuilder};

    #[test]
    fn compiled_tapes_verify_on_the_suite() {
        for entry in benchmarks::suite() {
            let c = entry.build().unwrap();
            let tape = GateTape::compile(&c);
            assert_eq!(verify_tape(&c, &tape), Ok(()), "{}", entry.name);
            audit_tape(&c, &tape);
        }
    }

    #[test]
    fn compiled_tapes_verify_on_fuzz_shapes() {
        // One representative of each generator shape class, including the
        // zero-gate tape.
        for seed in 0..16 {
            let c = fuzz::fuzz_circuit(seed);
            let tape = GateTape::compile(&c);
            assert_eq!(verify_tape(&c, &tape), Ok(()), "seed {seed}");
        }
    }

    /// Two same-shape circuits (identical node counts and tables) whose
    /// gates differ — the O(1) shape fingerprint used by the simulator
    /// cannot tell them apart, the auditor must.
    fn xor_pair() -> (Circuit, Circuit) {
        let build = |kind: &str| {
            let mut b = CircuitBuilder::new("pair");
            b.add_input("a");
            b.add_input("b");
            b.add_gate("y", kind.parse().unwrap(), ["a", "b"]);
            b.add_output("y");
            b.finish().unwrap()
        };
        (build("XOR"), build("NAND"))
    }

    #[test]
    fn opcode_mismatch_is_caught() {
        let (xor, nand) = xor_pair();
        let tape = GateTape::compile(&nand);
        let v = verify_tape(&xor, &tape).unwrap_err();
        assert_eq!(v.check, "bijection", "{v}");
        assert!(v.to_string().contains("opcode"), "{v}");
    }

    #[test]
    fn fanin_mismatch_is_caught() {
        let build = |pins: [&str; 2]| {
            let mut b = CircuitBuilder::new("pair");
            b.add_input("a");
            b.add_input("b");
            b.add_gate("y", "NAND".parse().unwrap(), pins);
            b.add_output("y");
            b.finish().unwrap()
        };
        let ab = build(["a", "b"]);
        let ba = build(["b", "a"]);
        let tape = GateTape::compile(&ba);
        let v = verify_tape(&ab, &tape).unwrap_err();
        assert_eq!(v.check, "bijection", "{v}");
        assert!(v.detail.contains("fanin"), "{v}");
    }

    #[test]
    fn table_mismatch_is_caught() {
        // Same node count, outputs table points elsewhere.
        let build = |out: &str| {
            let mut b = CircuitBuilder::new("pair");
            b.add_input("a");
            b.add_input("b");
            b.add_gate("y", "AND".parse().unwrap(), ["a", "b"]);
            b.add_output(out);
            b.add_output("y");
            b.finish().unwrap()
        };
        let c1 = build("a");
        let c2 = build("b");
        let tape = GateTape::compile(&c2);
        let v = verify_tape(&c1, &tape).unwrap_err();
        assert_eq!(v.check, "tables", "{v}");
    }

    #[test]
    fn gate_count_mismatch_is_caught() {
        let s27 = benchmarks::s27();
        let (xor, _) = xor_pair();
        let v = verify_tape(&s27, &GateTape::compile(&xor)).unwrap_err();
        assert_eq!(v.check, "tables");
        // And the panicking wrapper actually panics.
        let err = std::panic::catch_unwind(|| audit_tape(&s27, &GateTape::compile(&xor)));
        assert!(err.is_err());
    }

    #[test]
    fn dff_source_mismatch_is_caught() {
        let build = |src: &str| {
            let mut b = CircuitBuilder::new("pair");
            b.add_input("a");
            b.add_input("b");
            b.add_gate("g", "OR".parse().unwrap(), ["a", "b"]);
            b.add_dff("q", src);
            b.add_output("q");
            b.add_output("g");
            b.finish().unwrap()
        };
        let from_a = build("a");
        let from_b = build("b");
        let v = verify_tape(&from_a, &GateTape::compile(&from_b)).unwrap_err();
        assert_eq!(v.check, "tables", "{v}");
        assert!(v.detail.contains("d-source"), "{v}");
    }

    #[test]
    fn violation_display_names_the_check() {
        let v = TapeViolation::new("order", "gate 3 reads gate 7".to_string());
        let s = v.to_string();
        assert!(s.contains("order") && s.contains("gate 3"), "{s}");
    }

    #[test]
    fn staged_compiles_verify_on_the_suite() {
        use bist_netlist::{compile_staged, CompileOptions};
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            for options in [CompileOptions::none(), CompileOptions::all()] {
                let compiled = compile_staged(&c, options);
                assert_eq!(verify_compiled(&c, &compiled), Ok(()), "{}", entry.name);
                audit_compiled(&c, &compiled);
            }
        }
    }

    #[test]
    fn compile_of_another_circuit_is_rejected() {
        use bist_netlist::{compile_staged, CompileOptions};
        let s27 = benchmarks::s27();
        let (xor, _) = xor_pair();
        let alien = compile_staged(&xor, CompileOptions::all());
        let v = verify_compiled(&s27, &alien).unwrap_err();
        assert_eq!(v.check, "tables", "{v}");
        let err = std::panic::catch_unwind(|| audit_compiled(&s27, &alien));
        assert!(err.is_err());
    }

    #[test]
    fn partial_pass_sets_verify() {
        use bist_netlist::{compile_staged, CompileOptions};
        let c = benchmarks::s27();
        for options in [
            CompileOptions { forward: true, ..CompileOptions::none() },
            CompileOptions { dedup: true, ..CompileOptions::none() },
            CompileOptions { fold_x: true, ..CompileOptions::none() },
            CompileOptions { dead_sweep: true, ..CompileOptions::none() },
        ] {
            let compiled = compile_staged(&c, options);
            assert_eq!(verify_compiled(&c, &compiled), Ok(()), "passes {}", options.key());
        }
    }
}
