//! Whole-corpus static analysis acceptance suite.
//!
//! The unit tests in `bist_verify` pin each lint code and tape invariant
//! on minimal circuits; this suite runs all three passes over everything
//! the workspace can produce — the 13-circuit benchmark suite and the
//! full 208-seed fuzz corpus (the same seeds as the sim crate's
//! differential sweep). No pass simulates anything, so unlike the
//! differential sweep the full corpus runs ungated in debug builds.

use bist_netlist::fuzz::{dirty_circuit, fuzz_circuit};
use bist_netlist::parser::parse_bench;
use bist_netlist::{benchmarks, compile_staged, writer, CompileOptions, GateTape};
use bist_verify::{
    check_equiv, lint_circuit, lint_source, structural_hash, verify_compiled, verify_tape,
};

/// Same corpus size as `randomized_differential_full_sweep`: 26 of each
/// degenerate shape class, 104 general circuits.
const CORPUS_SEEDS: u64 = 208;

#[test]
fn suite_is_lint_clean() {
    for entry in benchmarks::suite() {
        let c = entry.build().unwrap();
        let diags = lint_circuit(&c);
        assert!(
            bist_verify::lint::is_clean(&diags),
            "{}: error-severity lint on a benchmark circuit: {diags:?}",
            entry.name
        );
    }
}

#[test]
fn full_fuzz_corpus_is_lint_clean() {
    for seed in 0..CORPUS_SEEDS {
        let c = fuzz_circuit(seed);
        let diags = lint_circuit(&c);
        assert!(
            bist_verify::lint::is_clean(&diags),
            "seed {seed} ({}): error-severity lint on a generated circuit: {diags:?}",
            c.name()
        );
    }
}

#[test]
fn source_level_lint_agrees_on_the_suite() {
    // The `.bench` text of every suite circuit lints clean through the
    // raw-statement path too — the path `subseq-bist lint FILE` takes.
    for entry in benchmarks::suite_up_to(2000) {
        let c = entry.build().unwrap();
        let diags = lint_source(&writer::to_bench(&c)).unwrap();
        assert!(bist_verify::lint::is_clean(&diags), "{}: {diags:?}", entry.name);
    }
}

#[test]
fn every_compiled_tape_verifies() {
    for entry in benchmarks::suite() {
        let c = entry.build().unwrap();
        assert_eq!(verify_tape(&c, &GateTape::compile(&c)), Ok(()), "{}", entry.name);
    }
    for seed in 0..CORPUS_SEEDS {
        let c = fuzz_circuit(seed);
        assert_eq!(verify_tape(&c, &GateTape::compile(&c)), Ok(()), "seed {seed}");
    }
}

#[test]
fn every_staged_compile_verifies() {
    // The optimized-compile auditor accepts every pass selection over
    // the whole corpus: subset tape, topological order, fanin
    // substitution soundness and the site-map routing invariants.
    let selections = [
        CompileOptions::all(),
        CompileOptions { fold_x: true, ..CompileOptions::none() },
        CompileOptions { forward: true, dedup: true, ..CompileOptions::none() },
        CompileOptions { dead_sweep: true, ..CompileOptions::none() },
    ];
    for entry in benchmarks::suite() {
        let c = entry.build().unwrap();
        for options in selections {
            let compiled = compile_staged(&c, options);
            assert_eq!(
                verify_compiled(&c, &compiled),
                Ok(()),
                "{} [{}]",
                entry.name,
                options.key()
            );
        }
    }
    for seed in 0..CORPUS_SEEDS {
        let c = fuzz_circuit(seed);
        let compiled = compile_staged(&c, CompileOptions::all());
        assert_eq!(verify_compiled(&c, &compiled), Ok(()), "seed {seed}");
    }
}

#[test]
fn suite_round_trips_are_structurally_equivalent() {
    for entry in benchmarks::suite() {
        let c = entry.build().unwrap();
        let back = parse_bench(entry.name, &writer::to_bench(&c)).unwrap();
        assert_eq!(check_equiv(&c, &back), Ok(()), "{}", entry.name);
        assert_eq!(structural_hash(&c), structural_hash(&back), "{}", entry.name);
    }
}

#[test]
fn corpus_round_trips_are_structurally_equivalent() {
    for seed in 0..CORPUS_SEEDS {
        let c = fuzz_circuit(seed);
        let back = parse_bench("rt", &writer::to_bench(&c)).unwrap();
        assert_eq!(check_equiv(&c, &back), Ok(()), "seed {seed}");
    }
}

#[test]
fn linter_recall_on_the_dirty_corpus_is_total() {
    // Every planted defect class must be reported with its planted code
    // — 100% recall, measured, not assumed. Extra codes are legitimate
    // (a self-driving gate is also a one-gate cycle), missing ones are a
    // linter hole. 90 seeds = 10 full passes over the 9 seed classes.
    for seed in 0..90u64 {
        let dirty = dirty_circuit(seed);
        let diags = lint_source(&dirty.source)
            .unwrap_or_else(|e| panic!("seed {seed}: dirty source failed to tokenize: {e}"));
        let reported: std::collections::HashSet<&str> =
            diags.iter().map(|d| d.code.code()).collect();
        for code in &dirty.planted {
            assert!(
                reported.contains(code),
                "seed {seed}: planted {code} not reported (planted {:?}, reported {reported:?})",
                dirty.planted
            );
        }
    }
}

#[test]
fn single_gate_mutations_are_rejected() {
    // Flip one gate's opcode in the `.bench` text of each small suite
    // circuit; the checker must refuse every mutant. (Textual mutation
    // keeps the mutant a valid circuit — only its structure changes.)
    let mut mutants = 0usize;
    for entry in benchmarks::suite_up_to(600) {
        let c = entry.build().unwrap();
        let text = writer::to_bench(&c);
        let mutated: Vec<String> = text
            .lines()
            .map(|l| {
                if mutants == 0 && l.contains("= AND(") {
                    mutants += 1;
                    l.replace("= AND(", "= NAND(")
                } else if mutants == 0 && l.contains("= OR(") {
                    mutants += 1;
                    l.replace("= OR(", "= NOR(")
                } else {
                    l.to_string()
                }
            })
            .collect();
        if mutants == 0 {
            continue;
        }
        mutants = 0;
        let mutant = parse_bench(entry.name, &mutated.join("\n")).unwrap();
        assert!(
            check_equiv(&c, &mutant).is_err(),
            "{}: opcode-flipped mutant accepted",
            entry.name
        );
        assert_ne!(structural_hash(&c), structural_hash(&mutant), "{}", entry.name);
    }
}
