//! The end-to-end scheme: Procedure 1 + static compaction, swept over the
//! repetition counts the paper evaluates (`n ∈ {2, 4, 8, 16}`), with the
//! paper's best-`n` selection rule.

use crate::postprocess::compact_set;
use crate::procedure1::{select_subsequences, SelectionResult};
use crate::procedure2::SelectedSequence;
use bist_expand::expansion::ExpansionConfig;
use bist_expand::TestSequence;
use bist_sim::{Fault, FaultCoverage, FaultSimulator, SimError};
use std::time::{Duration, Instant};

/// Configuration of a scheme run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Repetition counts to sweep (default `[2, 4, 8, 16]`, the paper's).
    pub ns: Vec<usize>,
    /// Seed for Procedure 2's random omission order.
    pub seed: u64,
    /// Whether to run the §3.2 static compaction of `S`.
    pub postprocess: bool,
}

impl SchemeConfig {
    /// The paper's configuration: `n ∈ {2, 4, 8, 16}`, postprocessing on.
    #[must_use]
    pub fn new() -> Self {
        SchemeConfig { ns: vec![2, 4, 8, 16], seed: 0, postprocess: true }
    }

    /// Sets the repetition counts to sweep.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is empty or contains 0.
    #[must_use]
    pub fn ns(mut self, ns: Vec<usize>) -> Self {
        assert!(!ns.is_empty() && ns.iter().all(|&n| n > 0), "ns must be nonempty, all > 0");
        self.ns = ns;
        self
    }

    /// Sets the omission-order seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables the §3.2 postprocessing.
    #[must_use]
    pub fn postprocess(mut self, on: bool) -> Self {
        self.postprocess = on;
        self
    }
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig::new()
    }
}

/// Size statistics of a sequence set (the `|S| / tot len / max len`
/// triple reported throughout the paper's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetStats {
    /// Number of sequences.
    pub count: usize,
    /// Total loaded length.
    pub total_len: usize,
    /// Maximum loaded length.
    pub max_len: usize,
}

impl SetStats {
    fn of(sequences: &[SelectedSequence]) -> Self {
        SetStats {
            count: sequences.len(),
            total_len: sequences.iter().map(SelectedSequence::len).sum(),
            max_len: sequences.iter().map(SelectedSequence::len).max().unwrap_or(0),
        }
    }
}

/// The outcome of the scheme for one repetition count `n`.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// The repetition count.
    pub n: usize,
    /// Stats before static compaction of `S`.
    pub before: SetStats,
    /// Stats after static compaction (equal to `before` when
    /// postprocessing is disabled).
    pub after: SetStats,
    /// The final sequence set.
    pub sequences: Vec<SelectedSequence>,
    /// Wall-clock time of Procedure 1.
    pub proc1_time: Duration,
    /// Wall-clock time of the compaction.
    pub compact_time: Duration,
    /// Selection-phase statistics.
    pub selection: SelectionResult,
}

impl SchemeRun {
    /// Applied at-speed test length: `8·n·total_len` (after compaction).
    #[must_use]
    pub fn applied_test_len(&self) -> usize {
        8 * self.n * self.after.total_len
    }
}

/// The outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// One run per `n`, in sweep order.
    pub runs: Vec<SchemeRun>,
    /// Index into [`runs`](Self::runs) of the best run per the paper's
    /// rule: smallest max len, then smallest total len, then lowest run
    /// time.
    pub best: usize,
    /// Wall-clock time of one fault simulation of `T0` over the full
    /// fault list — the normalization baseline of Table 4.
    pub t0_sim_time: Duration,
}

impl SchemeResult {
    /// The best run.
    #[must_use]
    pub fn best_run(&self) -> &SchemeRun {
        &self.runs[self.best]
    }

    /// Table 4 normalization: Procedure 1 time of the best run divided by
    /// the `T0` simulation time.
    #[must_use]
    pub fn normalized_proc1_time(&self) -> f64 {
        ratio(self.best_run().proc1_time, self.t0_sim_time)
    }

    /// Table 4 normalization for the compaction phase.
    #[must_use]
    pub fn normalized_compact_time(&self) -> f64 {
        ratio(self.best_run().compact_time, self.t0_sim_time)
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    let denom = b.as_secs_f64();
    if denom == 0.0 {
        f64::INFINITY
    } else {
        a.as_secs_f64() / denom
    }
}

/// Runs the scheme for a single `n`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_for_n(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    coverage: &FaultCoverage,
    n: usize,
    seed: u64,
    postprocess: bool,
) -> Result<SchemeRun, SimError> {
    let expansion = ExpansionConfig::new(n).expect("n validated by SchemeConfig");
    let span = sim.obs().span("core.procedure1_us", format!("n={n}"));
    let start = Instant::now();
    let selection = select_subsequences(sim, t0, coverage, &expansion, seed)?;
    let proc1_time = start.elapsed();
    drop(span);
    let before = SetStats::of(&selection.sequences);

    let detected: Vec<Fault> = coverage.detected().map(|(f, _)| f).collect();
    let span = sim.obs().span("core.postprocess_us", format!("n={n}"));
    let start = Instant::now();
    let sequences = if postprocess {
        compact_set(sim, selection.sequences.clone(), &detected, &expansion)?.0
    } else {
        selection.sequences.clone()
    };
    let compact_time = start.elapsed();
    drop(span);
    let after = SetStats::of(&sequences);

    Ok(SchemeRun { n, before, after, sequences, proc1_time, compact_time, selection })
}

/// Runs the full sweep over `config.ns` and picks the best `n`.
///
/// `coverage` must be the simulation of `t0` over the fault list of
/// interest (see [`FaultCoverage::simulate`]).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_scheme(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    coverage: &FaultCoverage,
    config: &SchemeConfig,
) -> Result<SchemeResult, SimError> {
    // Table 4 baseline: time to fault simulate T0.
    let span = sim.obs().span("core.t0_sim_us", String::new());
    let start = Instant::now();
    let _ = sim.detection_times(t0, coverage.faults())?;
    let t0_sim_time = start.elapsed();
    drop(span);

    let mut runs = Vec::with_capacity(config.ns.len());
    for &n in &config.ns {
        runs.push(run_for_n(sim, t0, coverage, n, config.seed, config.postprocess)?);
    }

    // Best n: lexicographic (max len, tot len, proc1 time).
    let best = (0..runs.len())
        .min_by(|&a, &b| {
            let ka = (runs[a].after.max_len, runs[a].after.total_len, runs[a].proc1_time);
            let kb = (runs[b].after.max_len, runs[b].after.total_len, runs[b].proc1_time);
            ka.cmp(&kb)
        })
        .expect("ns nonempty");

    Ok(SchemeResult { runs, best, t0_sim_time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure1::verify_full_coverage;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe};

    fn s27_setup() -> (bist_netlist::Circuit, TestSequence, Vec<Fault>) {
        let c = benchmarks::s27();
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        (c, t0, faults)
    }

    #[test]
    fn sweep_keeps_coverage_for_every_n() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).unwrap();
        let result = run_scheme(&sim, &t0, &cov, &SchemeConfig::new().ns(vec![1, 2, 4])).unwrap();
        assert_eq!(result.runs.len(), 3);
        for run in &result.runs {
            assert!(
                verify_full_coverage(
                    &sim,
                    &run.sequences,
                    &ExpansionConfig::new(run.n).unwrap(),
                    &faults
                )
                .unwrap(),
                "n = {}",
                run.n
            );
            assert!(run.after.count <= run.before.count);
            assert!(run.after.total_len <= run.before.total_len);
            assert!(run.after.max_len <= run.before.max_len);
        }
    }

    #[test]
    fn best_run_minimizes_max_len_first() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let result = run_scheme(&sim, &t0, &cov, &SchemeConfig::new().ns(vec![1, 2, 4])).unwrap();
        let best = result.best_run();
        for run in &result.runs {
            assert!(best.after.max_len <= run.after.max_len);
        }
    }

    #[test]
    fn postprocess_flag_respected() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let cfg = SchemeConfig::new().ns(vec![2]).postprocess(false);
        let result = run_scheme(&sim, &t0, &cov, &cfg).unwrap();
        let run = &result.runs[0];
        assert_eq!(run.before, run.after);
    }

    #[test]
    fn applied_test_len_formula() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let result = run_scheme(&sim, &t0, &cov, &SchemeConfig::new().ns(vec![2])).unwrap();
        let run = &result.runs[0];
        assert_eq!(run.applied_test_len(), 8 * 2 * run.after.total_len);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_ns_rejected() {
        let _ = SchemeConfig::new().ns(vec![]);
    }
}
