//! On-chip hardware cost model.
//!
//! The paper's headline hardware saving is the test memory: storing the
//! whole `T0` needs `|T0| × m` bits (for `m` primary inputs), while the
//! proposed scheme only needs `max_len × m` — plus a handful of
//! circuit-independent control: the up/down address counter, the
//! repetition counter, the 3-bit phase register, and one 2:1 mux plus
//! inverter-mux per input for complement/shift.

/// Cost breakdown of one on-chip test-application configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryCost {
    /// Test memory bits (`depth × width`).
    pub data_bits: usize,
    /// Address counter flip-flops (`ceil(log2(depth))`, ≥ 1).
    pub addr_counter_bits: usize,
    /// Repetition counter flip-flops (`ceil(log2(n))`, 0 when `n = 1`).
    pub rep_counter_bits: usize,
    /// Phase-FSM flip-flops (3 for the eight phases; 0 without expansion).
    pub phase_bits: usize,
    /// 2:1 multiplexers on the memory outputs (two per input bit for the
    /// complement and shift stages; 0 without expansion).
    pub mux_count: usize,
}

impl MemoryCost {
    /// Total sequential cost in flip-flop-equivalents (memory bits +
    /// counters + phase register).
    #[must_use]
    pub fn total_storage_bits(&self) -> usize {
        self.data_bits + self.addr_counter_bits + self.rep_counter_bits + self.phase_bits
    }
}

fn clog2(x: usize) -> usize {
    if x <= 1 {
        1
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

/// Cost of the proposed scheme: a memory deep enough for the longest
/// loaded subsequence plus the expansion control.
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn scheme_cost(max_len: usize, width: usize, n: usize) -> MemoryCost {
    assert!(max_len > 0 && width > 0 && n > 0, "arguments must be positive");
    MemoryCost {
        data_bits: max_len * width,
        addr_counter_bits: clog2(max_len),
        rep_counter_bits: if n == 1 { 0 } else { clog2(n) },
        phase_bits: 3,
        mux_count: 2 * width,
    }
}

/// Cost of storing and replaying the whole `T0` (no expansion hardware).
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn monolithic_cost(t0_len: usize, width: usize) -> MemoryCost {
    assert!(t0_len > 0 && width > 0, "arguments must be positive");
    MemoryCost {
        data_bits: t0_len * width,
        addr_counter_bits: clog2(t0_len),
        rep_counter_bits: 0,
        phase_bits: 0,
        mux_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(1), 1);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(1024), 10);
        assert_eq!(clog2(1025), 11);
    }

    #[test]
    fn scheme_vs_monolithic_on_paper_numbers() {
        // s298 (Table 5): |T0| = 117, max len = 17, 3 PIs, n = 16.
        let scheme = scheme_cost(17, 3, 16);
        let mono = monolithic_cost(117, 3);
        assert_eq!(scheme.data_bits, 51);
        assert_eq!(mono.data_bits, 351);
        assert!(scheme.total_storage_bits() < mono.total_storage_bits());
        assert_eq!(scheme.rep_counter_bits, 4);
        assert_eq!(scheme.mux_count, 6);
    }

    #[test]
    fn n_one_needs_no_rep_counter() {
        assert_eq!(scheme_cost(4, 3, 1).rep_counter_bits, 0);
        assert_eq!(scheme_cost(4, 3, 2).rep_counter_bits, 1);
    }

    #[test]
    fn totals_add_up() {
        let c = scheme_cost(10, 5, 8);
        assert_eq!(
            c.total_storage_bits(),
            c.data_bits + c.addr_counter_bits + c.rep_counter_bits + c.phase_bits
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_args_panic() {
        let _ = scheme_cost(0, 3, 1);
    }
}
