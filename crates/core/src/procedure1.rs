//! Procedure 1: the overall sequence-selection loop.
//!
//! Starting from the detected-fault set `F` of `T0` (with detection times
//! `udet`), Procedure 1 repeatedly:
//!
//! 1. picks the not-yet-covered fault with the **highest** detection time
//!    (hard faults first — their subsequences tend to be longer and to
//!    detect many other faults),
//! 2. runs [Procedure 2](crate::find_subsequence) to build a subsequence
//!    whose expansion detects it,
//! 3. fault simulates the expansion and drops everything it detects.
//!
//! Each iteration covers at least its target fault, so the loop
//! terminates with a set `S` whose expansions jointly detect all of `F` —
//! the paper's central guarantee.

use crate::procedure2::{find_subsequence, Procedure2Stats, SelectedSequence};
use bist_expand::expansion::Expand;
use bist_expand::TestSequence;
use bist_sim::{Fault, FaultCoverage, FaultSimulator, SimError};

/// Aggregate statistics of one Procedure 1 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Procedure1Stats {
    /// Number of target faults processed (= number of sequences before
    /// postprocessing).
    pub targets: usize,
    /// Total Procedure 2 window-growth simulations.
    pub grow_simulations: usize,
    /// Total Procedure 2 omission simulations.
    pub omit_simulations: usize,
    /// Total drop-simulation passes (step 4 of Procedure 1).
    pub drop_simulations: usize,
}

impl Procedure1Stats {
    fn absorb(&mut self, p2: Procedure2Stats) {
        self.targets += 1;
        self.grow_simulations += p2.grow_simulations;
        self.omit_simulations += p2.omit_simulations;
    }
}

/// The set `S` produced by Procedure 1 (optionally postprocessed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionResult {
    /// The selected subsequences, in generation order.
    pub sequences: Vec<SelectedSequence>,
    /// The length factor of the expander used throughout
    /// (`8·n` for the paper's recipe).
    pub length_factor: usize,
    /// Run statistics.
    pub stats: Procedure1Stats,
}

impl SelectionResult {
    /// Number of sequences `|S|`.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sequences.len()
    }

    /// Total length of all sequences in `S` (the paper's *tot len* — the
    /// number of vectors that must be loaded over the test session).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.sequences.iter().map(SelectedSequence::len).sum()
    }

    /// Maximum length of any sequence in `S` (the paper's *max len* — the
    /// required on-chip memory depth).
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.sequences.iter().map(SelectedSequence::len).max().unwrap_or(0)
    }

    /// Total length of all expanded sequences: `length_factor ·
    /// total_len` (the paper's *test len* — vectors applied at speed).
    #[must_use]
    pub fn applied_test_len(&self) -> usize {
        self.length_factor * self.total_len()
    }
}

/// Runs Procedure 1.
///
/// `coverage` must be the fault simulation result of `t0` over the fault
/// list of interest (detected faults and their `udet` drive the
/// selection). `seed` makes Procedure 2's omission order deterministic.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn select_subsequences(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    coverage: &FaultCoverage,
    expansion: &dyn Expand,
    seed: u64,
) -> Result<SelectionResult, SimError> {
    // Ftarg = F, ordered for deterministic max-udet tie-breaking.
    let mut targets: Vec<(Fault, usize)> = coverage.detected().collect();
    targets.sort_by_key(|&(f, _)| f);

    let mut sequences = Vec::new();
    let mut stats = Procedure1Stats::default();

    while !targets.is_empty() {
        // Step 2: fault with the highest udet.
        let (&(fault, udet), _) = targets
            .iter()
            .zip(0usize..)
            .max_by_key(|((_, u), i)| (*u, usize::MAX - i))
            .expect("targets nonempty");

        // Step 3: Procedure 2.
        let (selected, p2) = find_subsequence(sim, t0, fault, udet, expansion, seed)?;
        stats.absorb(p2);

        // Step 4: drop everything the expansion detects (streamed — the
        // expansion is replayed lazily, never materialized).
        let fault_list: Vec<Fault> = targets.iter().map(|&(f, _)| f).collect();
        let times =
            sim.detection_times_stream(&expansion.stream(&selected.sequence), &fault_list)?;
        stats.drop_simulations += 1;
        debug_assert!(
            times[targets.iter().position(|&(f, _)| f == fault).expect("target present")].is_some(),
            "Procedure 2 guarantees the target is detected"
        );
        targets = targets
            .into_iter()
            .zip(times)
            .filter_map(|(pair, t)| if t.is_none() { Some(pair) } else { None })
            .collect();

        sequences.push(selected);
    }

    Ok(SelectionResult { sequences, length_factor: expansion.length_factor(), stats })
}

/// Checks the paper's guarantee: the expansions of `sequences` jointly
/// detect every fault in `faults`.
///
/// Each expansion is *streamed* through the simulator — no `Sexp` is ever
/// materialized, exactly as the on-chip hardware applies it.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn verify_full_coverage(
    sim: &FaultSimulator<'_>,
    sequences: &[SelectedSequence],
    expansion: &dyn Expand,
    faults: &[Fault],
) -> Result<bool, SimError> {
    let mut remaining: Vec<Fault> = faults.to_vec();
    for sel in sequences {
        if remaining.is_empty() {
            break;
        }
        let times = sim.detection_times_stream(&expansion.stream(&sel.sequence), &remaining)?;
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    Ok(remaining.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_expand::expansion::ExpansionConfig;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe};

    fn s27_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    fn run_s27(n: usize) -> (bist_netlist::Circuit, Vec<Fault>, SelectionResult) {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).unwrap();
        let expansion = ExpansionConfig::new(n).unwrap();
        let result = select_subsequences(&sim, &t0, &cov, &expansion, 0).unwrap();
        (c, faults, result)
    }

    #[test]
    fn s27_selection_covers_all_faults() {
        let (c, faults, result) = run_s27(1);
        let sim = FaultSimulator::new(&c);
        assert!(verify_full_coverage(
            &sim,
            &result.sequences,
            &ExpansionConfig::new(1).unwrap(),
            &faults
        )
        .unwrap());
        assert!(result.count() >= 1);
        assert!(result.total_len() <= s27_t0().len() * result.count());
    }

    #[test]
    fn s27_needs_few_sequences_like_the_paper() {
        // §3.1 walks through s27 with n = 1 and ends with 3 sequences.
        // Exact counts depend on fault representatives and omission
        // order; the structure (a handful of short sequences) must hold.
        let (_, _, result) = run_s27(1);
        assert!(result.count() <= 6, "too many sequences: {}", result.count());
        assert!(result.max_len() <= s27_t0().len());
        assert_eq!(result.stats.targets, result.count());
    }

    #[test]
    fn first_target_is_max_udet() {
        let (_, _, result) = run_s27(1);
        // The first selected sequence targets a fault with udet = 9, so
        // its window ends at time 9.
        assert_eq!(result.sequences[0].window.1, 9);
    }

    #[test]
    fn applied_test_len_is_8n_total() {
        for n in [1, 2, 4] {
            let (_, _, result) = run_s27(n);
            assert_eq!(result.applied_test_len(), 8 * n * result.total_len());
        }
    }

    #[test]
    fn empty_coverage_yields_empty_set() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::new(vec![], vec![]);
        let result =
            select_subsequences(&sim, &t0, &cov, &ExpansionConfig::new(2).unwrap(), 0).unwrap();
        assert_eq!(result.count(), 0);
        assert_eq!(result.total_len(), 0);
        assert_eq!(result.max_len(), 0);
    }

    #[test]
    fn deterministic() {
        let (_, _, a) = run_s27(2);
        let (_, _, b) = run_s27(2);
        assert_eq!(a, b);
    }
}
