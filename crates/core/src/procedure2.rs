//! Procedure 2: finding the subsequence `T'` for a target fault.
//!
//! Given a fault `f` detected by `T0` at time `udet(f)`, Procedure 2 finds
//! a short sequence `T'` whose *expansion* detects `f`:
//!
//! 1. Start with the window `T' = T0[udet, udet]` and grow it backwards
//!    (`ustart -= 1`) until `T'exp` detects `f`. The window
//!    `T0[0, udet]` always works: `T'exp` begins with `T'` itself, which
//!    detects `f` by the definition of `udet`.
//! 2. Then shrink `T'` by *vector omission*: visit the remaining time
//!    units in random order; drop a vector if `T'exp` still detects `f`
//!    after the omission, restarting the scan after every success, until
//!    no single omission is possible.

use bist_expand::expansion::Expand;
use bist_expand::TestSequence;
use bist_sim::{Fault, FaultSimulator, SimError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A subsequence selected for one target fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedSequence {
    /// The (compacted) loaded sequence `S`.
    pub sequence: TestSequence,
    /// The window `[ustart, udet]` of `T0` the sequence was carved from
    /// (before omission).
    pub window: (usize, usize),
    /// The fault this sequence was generated for.
    pub target: Fault,
}

impl SelectedSequence {
    /// Length of the loaded sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True if the sequence is empty (never produced by Procedure 2).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Statistics of one Procedure 2 invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Procedure2Stats {
    /// Expanded-sequence fault simulations performed while growing the
    /// window (step 1).
    pub grow_simulations: usize,
    /// Expanded-sequence fault simulations performed during omission
    /// (step 2).
    pub omit_simulations: usize,
    /// Vectors removed by omission.
    pub omitted: usize,
}

/// How Procedure 2 grows the window `[ustart, udet]` (step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowGrowth {
    /// The paper's strategy: decrement `ustart` one time unit at a time.
    /// Finds the *maximal* `ustart` whose window expansion detects the
    /// fault, at the cost of one simulation per probe.
    #[default]
    Linear,
    /// Exponential doubling of the window length followed by a binary
    /// search for the shortest detecting length. `O(log udet)` probes
    /// instead of `O(udet)`, but assumes detection is monotone in window
    /// length — usually true, not guaranteed — so the window found may
    /// not be the paper's maximal-`ustart` one. The returned window is
    /// always verified to detect the fault.
    Exponential,
}

/// Runs Procedure 2 for `fault` with detection time `udet` under `t0`.
///
/// Returns the selected sequence and simulation-count statistics. Uses
/// the paper's linear window growth; see
/// [`find_subsequence_with_growth`] for the ablation knob.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `udet >= t0.len()` (an inconsistent detection time) or if
/// even the full prefix `T0[0, udet]` fails to expand into a detecting
/// sequence — impossible when `udet` really is the first detection time
/// of `fault` under `t0`.
pub fn find_subsequence(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    fault: Fault,
    udet: usize,
    expansion: &dyn Expand,
    seed: u64,
) -> Result<(SelectedSequence, Procedure2Stats), SimError> {
    find_subsequence_with_growth(sim, t0, fault, udet, expansion, seed, WindowGrowth::Linear)
}

/// [`find_subsequence`] with an explicit window-growth strategy.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// As for [`find_subsequence`].
pub fn find_subsequence_with_growth(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    fault: Fault,
    udet: usize,
    expansion: &dyn Expand,
    seed: u64,
    growth: WindowGrowth,
) -> Result<(SelectedSequence, Procedure2Stats), SimError> {
    assert!(udet < t0.len(), "udet {udet} out of range for |T0| = {}", t0.len());
    let mut stats = Procedure2Stats::default();

    // Step 1: grow the window backwards until the expansion detects f.
    // The expansion is streamed (never materialized): each probe replays
    // the window through the phase schedule exactly as the hardware would.
    let probe = |ustart: usize, stats: &mut Procedure2Stats| -> Result<bool, SimError> {
        stats.grow_simulations += 1;
        let window = t0.subsequence(ustart, udet);
        sim.detects_stream(&expansion.stream(&window), fault)
    };
    let ustart = match growth {
        WindowGrowth::Linear => {
            let mut ustart = udet;
            loop {
                if probe(ustart, &mut stats)? {
                    break ustart;
                }
                assert!(
                    ustart > 0,
                    "T0[0, udet] must detect the fault; inconsistent udet or fault list"
                );
                ustart -= 1;
            }
        }
        WindowGrowth::Exponential => {
            // Double the window length until the expansion detects...
            let mut len = 1usize;
            let detecting_len = loop {
                if probe(udet + 1 - len, &mut stats)? {
                    break len;
                }
                assert!(
                    len <= udet,
                    "T0[0, udet] must detect the fault; inconsistent udet or fault list"
                );
                len = (len * 2).min(udet + 1);
            };
            // ...then binary search the shortest detecting length in
            // (detecting_len/2, detecting_len]. Invariant: `hi` detects.
            let mut lo = detecting_len / 2 + 1;
            let mut hi = detecting_len;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if probe(udet + 1 - mid, &mut stats)? {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            udet + 1 - hi
        }
    };
    let mut current = t0.subsequence(ustart, udet);
    let window = (ustart, udet);

    // Step 2: omission of test vectors in random order; restart the scan
    // after every accepted omission.
    let mut rng = StdRng::seed_from_u64(seed ^ mix(fault));
    'scan: loop {
        if current.len() <= 1 {
            break;
        }
        let mut order: Vec<usize> = (0..current.len()).collect();
        order.shuffle(&mut rng);
        for &u in &order {
            let candidate = current.without(u);
            stats.omit_simulations += 1;
            if sim.detects_stream(&expansion.stream(&candidate), fault)? {
                current = candidate;
                stats.omitted += 1;
                continue 'scan;
            }
        }
        break;
    }

    Ok((SelectedSequence { sequence: current, window, target: fault }, stats))
}

/// Mixes a fault into the omission-order seed so different targets explore
/// different orders deterministically.
fn mix(fault: Fault) -> u64 {
    use bist_sim::FaultSite;
    let (a, b, c) = match fault.site {
        FaultSite::Output(n) => (n.index() as u64, 0u64, 0u64),
        FaultSite::Input { node, pin } => (node.index() as u64, u64::from(pin), 1u64),
    };
    let mut h = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c)
        .wrapping_add(u64::from(fault.stuck));
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_expand::expansion::ExpansionConfig;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe, FaultCoverage, FaultSimulator};

    fn s27_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    fn s27_setup() -> (bist_netlist::Circuit, Vec<Fault>) {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        (c, faults)
    }

    #[test]
    fn finds_sequence_for_the_hardest_s27_fault() {
        // Recreate the paper's worked example: the fault with udet = 9
        // (called f10 in Table 2) under n = 1.
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        assert_eq!(cov.max_detection_time(), Some(9));
        let (f, udet) = cov.detected().find(|&(_, u)| u == 9).unwrap();
        let expansion = ExpansionConfig::new(1).unwrap();
        let (sel, stats) = find_subsequence(&sim, &t0, f, udet, &expansion, 0).unwrap();
        // The paper finds ustart = 6 and compacts T' down to 2 vectors;
        // the exact result depends on the fault representative and the
        // random omission order, but the structure must hold:
        assert!(sel.window.1 == 9);
        assert!(sel.window.0 <= 9);
        assert!(!sel.sequence.is_empty());
        assert!(sel.len() <= sel.window.1 - sel.window.0 + 1);
        assert!(stats.grow_simulations >= 1);
        // And the defining property: the expansion detects the fault.
        assert!(sim.detects(&expansion.expand(&sel.sequence), f).unwrap());
    }

    #[test]
    fn expansion_detects_target_for_every_s27_fault() {
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let expansion = ExpansionConfig::new(1).unwrap();
        for (f, udet) in cov.detected() {
            let (sel, _) = find_subsequence(&sim, &t0, f, udet, &expansion, 42).unwrap();
            assert!(
                sim.detects(&expansion.expand(&sel.sequence), f).unwrap(),
                "expansion must detect {}",
                f.describe(&c)
            );
            assert!(sel.len() <= udet + 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let (f, udet) = cov.detected().max_by_key(|&(_, u)| u).unwrap();
        let expansion = ExpansionConfig::new(2).unwrap();
        let (a, _) = find_subsequence(&sim, &t0, f, udet, &expansion, 7).unwrap();
        let (b, _) = find_subsequence(&sim, &t0, f, udet, &expansion, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn window_grows_only_when_needed() {
        // A fault detected at time 0 must give the single-vector window.
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        if let Some((f, udet)) = cov.detected().min_by_key(|&(_, u)| u) {
            let expansion = ExpansionConfig::new(1).unwrap();
            let (sel, _) = find_subsequence(&sim, &t0, f, udet, &expansion, 1).unwrap();
            assert!(sel.window.0 <= udet);
            assert!(!sel.sequence.is_empty());
        }
    }

    #[test]
    fn exponential_growth_finds_valid_windows_with_fewer_probes() {
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let expansion = ExpansionConfig::new(1).unwrap();
        let mut linear_probes = 0usize;
        let mut exp_probes = 0usize;
        for (f, udet) in cov.detected() {
            let (lin, lin_stats) = find_subsequence_with_growth(
                &sim,
                &t0,
                f,
                udet,
                &expansion,
                9,
                WindowGrowth::Linear,
            )
            .unwrap();
            let (exp, exp_stats) = find_subsequence_with_growth(
                &sim,
                &t0,
                f,
                udet,
                &expansion,
                9,
                WindowGrowth::Exponential,
            )
            .unwrap();
            // Both must produce detecting sequences.
            assert!(sim.detects(&expansion.expand(&lin.sequence), f).unwrap());
            assert!(sim.detects(&expansion.expand(&exp.sequence), f).unwrap());
            linear_probes += lin_stats.grow_simulations;
            exp_probes += exp_stats.grow_simulations;
        }
        // On aggregate the heuristic should not probe more than linear
        // growth on these short windows (and asymptotically far less).
        assert!(
            exp_probes <= linear_probes + 8,
            "exponential {exp_probes} vs linear {linear_probes}"
        );
    }

    #[test]
    fn exponential_growth_window_detects_even_when_not_maximal() {
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults).unwrap();
        let (f, udet) = cov.detected().max_by_key(|&(_, u)| u).unwrap();
        let expansion = ExpansionConfig::new(2).unwrap();
        let (sel, _) = find_subsequence_with_growth(
            &sim,
            &t0,
            f,
            udet,
            &expansion,
            0,
            WindowGrowth::Exponential,
        )
        .unwrap();
        assert_eq!(sel.window.1, udet);
        assert!(sim.detects(&expansion.expand(&sel.sequence), f).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_udet_panics() {
        let (c, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let expansion = ExpansionConfig::new(1).unwrap();
        let _ = find_subsequence(&sim, &t0, faults[0], 99, &expansion, 0);
    }
}
