//! Formatting of the paper's tables and Figure 1.
//!
//! The benchmark harness (`bist-bench`) prints rows in the same column
//! order as the paper so that paper-vs-measured comparisons can be read
//! side by side. The row types here hold the measured values; the paper's
//! published numbers live in the harness.

use crate::procedure2::SelectedSequence;
use std::fmt;

/// One row of Table 3: per-circuit selection results before/after
/// compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// Total faults (collapsed universe).
    pub faults_total: usize,
    /// Faults detected by `T0`.
    pub faults_detected: usize,
    /// Length of `T0`.
    pub t0_len: usize,
    /// Best repetition count `n`.
    pub n: usize,
    /// `|S|` before compaction.
    pub count_before: usize,
    /// Total length before compaction.
    pub total_before: usize,
    /// Max length before compaction.
    pub max_before: usize,
    /// `|S|` after compaction.
    pub count_after: usize,
    /// Total length after compaction.
    pub total_after: usize,
    /// Max length after compaction.
    pub max_after: usize,
}

impl Table3Row {
    /// The table header, matching the paper's column order.
    #[must_use]
    pub fn header() -> String {
        format!(
            "{:<8} {:>6} {:>6} {:>5} {:>3} | {:>4} {:>7} {:>7} | {:>4} {:>7} {:>7}",
            "circuit",
            "tot",
            "det",
            "len",
            "n",
            "|S|",
            "tot len",
            "max len",
            "|S|",
            "tot len",
            "max len"
        )
    }
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:>6} {:>6} {:>5} {:>3} | {:>4} {:>7} {:>7} | {:>4} {:>7} {:>7}",
            self.circuit,
            self.faults_total,
            self.faults_detected,
            self.t0_len,
            self.n,
            self.count_before,
            self.total_before,
            self.max_before,
            self.count_after,
            self.total_after,
            self.max_after
        )
    }
}

/// One row of Table 4: run times normalized by the `T0` simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Circuit name.
    pub circuit: String,
    /// Procedure 1 time / T0 simulation time.
    pub proc1_normalized: f64,
    /// Compaction time / T0 simulation time.
    pub compact_normalized: f64,
}

impl Table4Row {
    /// The table header.
    #[must_use]
    pub fn header() -> String {
        format!("{:<8} {:>10} {:>10}", "circuit", "Proc.1", "comp.")
    }
}

impl fmt::Display for Table4Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:>10.2} {:>10.2}",
            self.circuit, self.proc1_normalized, self.compact_normalized
        )
    }
}

/// One row of Table 5: comparison with `T0` (ratios and applied length).
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Circuit name.
    pub circuit: String,
    /// Length of `T0`.
    pub t0_len: usize,
    /// Best repetition count.
    pub n: usize,
    /// `|S|` after compaction.
    pub count: usize,
    /// Total loaded length after compaction.
    pub total_len: usize,
    /// Max loaded length after compaction.
    pub max_len: usize,
    /// Applied at-speed test length (`8·n·total_len`).
    pub test_len: usize,
}

impl Table5Row {
    /// `total_len / t0_len` — the paper's average is 0.46.
    #[must_use]
    pub fn total_ratio(&self) -> f64 {
        self.total_len as f64 / self.t0_len as f64
    }

    /// `max_len / t0_len` — the paper's average is 0.10.
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        self.max_len as f64 / self.t0_len as f64
    }

    /// The table header.
    #[must_use]
    pub fn header() -> String {
        format!(
            "{:<8} {:>5} {:>3} {:>4} {:>8} {:>6} {:>8} {:>6} {:>9}",
            "circuit", "len", "n", "|S|", "tot len", "ratio", "max len", "ratio", "test len"
        )
    }
}

impl fmt::Display for Table5Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:>5} {:>3} {:>4} {:>8} {:>6.2} {:>8} {:>6.2} {:>9}",
            self.circuit,
            self.t0_len,
            self.n,
            self.count,
            self.total_len,
            self.total_ratio(),
            self.max_len,
            self.max_ratio(),
            self.test_len
        )
    }
}

/// Renders Figure 1: the selected subsequence windows drawn over `T0`.
///
/// Each selected sequence came from a window `[ustart, udet]` of `T0`;
/// the figure marks which time units of `T0` fall inside at least one
/// window, illustrating that `S` covers only part of `T0`.
#[must_use]
pub fn figure1(t0_len: usize, sequences: &[SelectedSequence]) -> String {
    let mut out = String::new();
    let scale = |u: usize, width: usize| -> usize {
        if t0_len <= width {
            u
        } else {
            u * width / t0_len
        }
    };
    let width = t0_len.min(80);
    out.push_str(&format!("T0  |{}|  ({} vectors)\n", "=".repeat(width), t0_len));
    for (i, sel) in sequences.iter().enumerate() {
        let (a, b) = sel.window;
        let (sa, sb) = (scale(a, width), scale(b, width).min(width.saturating_sub(1)));
        let mut line = vec![' '; width];
        for c in line.iter_mut().take(sb + 1).skip(sa) {
            *c = '-';
        }
        out.push_str(&format!(
            "S{:<3}|{}|  T0[{},{}] -> {} vectors loaded\n",
            i + 1,
            line.iter().collect::<String>(),
            a,
            b,
            sel.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::NodeId;
    use bist_sim::Fault;

    fn sel(window: (usize, usize), len: usize) -> SelectedSequence {
        let vectors = "01 ".repeat(len);
        SelectedSequence {
            sequence: vectors.trim().parse().unwrap(),
            window,
            target: Fault::output(NodeId::from_index(0), false),
        }
    }

    #[test]
    fn table3_row_renders_all_fields() {
        let row = Table3Row {
            circuit: "s298".into(),
            faults_total: 308,
            faults_detected: 265,
            t0_len: 117,
            n: 16,
            count_before: 7,
            total_before: 42,
            max_before: 17,
            count_after: 4,
            total_after: 27,
            max_after: 17,
        };
        let s = row.to_string();
        for needle in ["s298", "308", "265", "117", "16", "42", "27"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        assert!(Table3Row::header().contains("tot len"));
    }

    #[test]
    fn table5_ratios_match_paper_example() {
        // s298 row of Table 5: 27/117 = 0.23, 17/117 = 0.15.
        let row = Table5Row {
            circuit: "s298".into(),
            t0_len: 117,
            n: 16,
            count: 4,
            total_len: 27,
            max_len: 17,
            test_len: 3456,
        };
        assert!((row.total_ratio() - 0.23).abs() < 0.005);
        assert!((row.max_ratio() - 0.15).abs() < 0.005);
        assert!(row.to_string().contains("3456"));
    }

    #[test]
    fn table4_row_formats() {
        let row =
            Table4Row { circuit: "s27".into(), proc1_normalized: 30.62, compact_normalized: 64.59 };
        assert!(row.to_string().contains("30.62"));
    }

    #[test]
    fn figure1_marks_windows() {
        let fig = figure1(10, &[sel((6, 9), 2), sel((3, 5), 1), sel((4, 4), 3)]);
        assert!(fig.contains("T0"));
        assert!(fig.contains("S1"));
        assert!(fig.contains("T0[6,9]"));
        assert!(fig.lines().count() == 4);
    }

    #[test]
    fn figure1_scales_long_sequences() {
        let fig = figure1(1000, &[sel((900, 999), 5)]);
        // Must not render 1000 columns.
        assert!(fig.lines().next().unwrap().len() < 120);
    }
}
