//! Static compaction of the sequence set `S` (§3.2).
//!
//! A sequence added early may become redundant once later sequences cover
//! all its faults. The paper identifies such sequences by re-simulating
//! the whole set in four different orders, dropping any sequence whose
//! expansion detects no new fault when its turn comes:
//!
//! 1. by increasing length (drops long sequences if possible),
//! 2. by decreasing length (long sequences detect most faults, exposing
//!    redundant short ones),
//! 3. in reverse generation order (later sequences subsume earlier ones),
//! 4. by decreasing number of faults detected in the previous pass
//!    (sequences that detected few faults go last and tend to be dropped).

use crate::procedure2::SelectedSequence;
use bist_expand::expansion::Expand;
use bist_sim::{Fault, FaultSimulator, SimError};

/// The order in which a compaction pass simulates the sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassOrder {
    /// Increasing loaded-sequence length.
    IncreasingLength,
    /// Decreasing loaded-sequence length.
    DecreasingLength,
    /// Reverse of generation order.
    ReverseGeneration,
    /// Decreasing detection count from the previous pass.
    DecreasingPreviousDetections,
}

/// The paper's four-pass schedule.
pub const PAPER_SCHEDULE: [PassOrder; 4] = [
    PassOrder::IncreasingLength,
    PassOrder::DecreasingLength,
    PassOrder::ReverseGeneration,
    PassOrder::DecreasingPreviousDetections,
];

/// Statistics of a compaction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Sequences dropped across all passes.
    pub dropped: usize,
    /// Expanded-sequence fault simulations performed.
    pub simulations: usize,
}

/// One pass: simulate the sequences against the full fault set in the
/// given order, dropping sequences that detect nothing new. Returns the
/// per-sequence detection counts (aligned with the *surviving* set).
fn run_pass(
    sim: &FaultSimulator<'_>,
    sequences: &mut Vec<(SelectedSequence, usize)>,
    order: &[usize],
    faults: &[Fault],
    expansion: &dyn Expand,
    stats: &mut CompactionStats,
) -> Result<(), SimError> {
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut keep = vec![true; sequences.len()];
    for &idx in order {
        if remaining.is_empty() {
            // Whatever has not been simulated yet detects nothing new.
            keep[idx] = false;
            sequences[idx].1 = 0;
            stats.dropped += 1;
            continue;
        }
        let times =
            sim.detection_times_stream(&expansion.stream(&sequences[idx].0.sequence), &remaining)?;
        stats.simulations += 1;
        let detected = times.iter().filter(|t| t.is_some()).count();
        sequences[idx].1 = detected;
        if detected == 0 {
            keep[idx] = false;
            stats.dropped += 1;
        } else {
            remaining = remaining
                .into_iter()
                .zip(times)
                .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
                .collect();
        }
    }
    let mut it = keep.iter();
    sequences.retain(|_| *it.next().expect("keep aligned"));
    Ok(())
}

/// Runs the four-pass static compaction of `S`, preserving joint coverage
/// of `faults`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn compact_set(
    sim: &FaultSimulator<'_>,
    sequences: Vec<SelectedSequence>,
    faults: &[Fault],
    expansion: &dyn Expand,
) -> Result<(Vec<SelectedSequence>, CompactionStats), SimError> {
    let mut stats = CompactionStats::default();
    // Track (sequence, previous-pass detection count); generation order is
    // the original index, preserved as we only ever retain in order.
    let mut seqs: Vec<(SelectedSequence, usize)> = sequences.into_iter().map(|s| (s, 0)).collect();

    for pass in PAPER_SCHEDULE {
        if seqs.is_empty() {
            break;
        }
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        match pass {
            PassOrder::IncreasingLength => {
                order.sort_by_key(|&i| (seqs[i].0.len(), i));
            }
            PassOrder::DecreasingLength => {
                order.sort_by_key(|&i| (usize::MAX - seqs[i].0.len(), i));
            }
            PassOrder::ReverseGeneration => order.reverse(),
            PassOrder::DecreasingPreviousDetections => {
                order.sort_by_key(|&i| (usize::MAX - seqs[i].1, i));
            }
        }
        run_pass(sim, &mut seqs, &order, faults, expansion, &mut stats)?;
    }

    Ok((seqs.into_iter().map(|(s, _)| s).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure1::{select_subsequences, verify_full_coverage};
    use bist_expand::expansion::ExpansionConfig;
    use bist_expand::TestSequence;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe, FaultCoverage};

    fn s27_t0() -> TestSequence {
        "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap()
    }

    fn setup(
        n: usize,
    ) -> (bist_netlist::Circuit, Vec<Fault>, Vec<SelectedSequence>, ExpansionConfig) {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let sim = FaultSimulator::new(&c);
        let t0 = s27_t0();
        let cov = FaultCoverage::simulate(&sim, &t0, faults.clone()).unwrap();
        let expansion = ExpansionConfig::new(n).unwrap();
        let sel = select_subsequences(&sim, &t0, &cov, &expansion, 0).unwrap();
        (c, faults, sel.sequences, expansion)
    }

    #[test]
    fn compaction_preserves_coverage() {
        let (c, faults, sequences, expansion) = setup(1);
        let sim = FaultSimulator::new(&c);
        let before = sequences.len();
        let (after, stats) = compact_set(&sim, sequences, &faults, &expansion).unwrap();
        assert!(after.len() <= before);
        assert_eq!(stats.dropped, before - after.len());
        assert!(verify_full_coverage(&sim, &after, &expansion, &faults).unwrap());
    }

    #[test]
    fn redundant_duplicate_is_dropped() {
        let (c, faults, mut sequences, expansion) = setup(1);
        let sim = FaultSimulator::new(&c);
        // Duplicate the first sequence: one of the copies must go.
        sequences.push(sequences[0].clone());
        let n = sequences.len();
        let (after, _) = compact_set(&sim, sequences, &faults, &expansion).unwrap();
        assert!(after.len() < n);
        assert!(verify_full_coverage(&sim, &after, &expansion, &faults).unwrap());
    }

    #[test]
    fn empty_set_is_fine() {
        let c = benchmarks::s27();
        let sim = FaultSimulator::new(&c);
        let (after, stats) =
            compact_set(&sim, vec![], &[], &ExpansionConfig::new(2).unwrap()).unwrap();
        assert!(after.is_empty());
        assert_eq!(stats.simulations, 0);
    }

    #[test]
    fn single_sequence_survives() {
        let (c, faults, sequences, expansion) = setup(1);
        let sim = FaultSimulator::new(&c);
        // Keep only the first sequence and only the faults it detects.
        let first = sequences[0].clone();
        let times = sim.detection_times(&expansion.expand(&first.sequence), &faults).unwrap();
        let covered: Vec<Fault> =
            faults.iter().zip(&times).filter_map(|(&f, t)| t.map(|_| f)).collect();
        let (after, _) = compact_set(&sim, vec![first], &covered, &expansion).unwrap();
        assert_eq!(after.len(), 1);
    }
}
