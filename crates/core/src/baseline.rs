//! Baselines the paper compares against (§1).
//!
//! 1. **Partition-and-load** — split `T0` into consecutive subsequences,
//!    load each into the on-chip memory and apply it directly (no
//!    expansion). Every vector of `T0` must be loaded (total load =
//!    `|T0|`), and blocks must stay long enough that applying each block
//!    from the unknown state still detects all of `F`.
//! 2. **LFSR with hold** — the fully on-chip generator of Nachman et al.
//!    \[3\]: a free-running LFSR whose vectors are held for several
//!    cycles. No loading at all, but coverage of `F` is not guaranteed.

use bist_expand::TestSequence;
use bist_sim::{Fault, FaultSimulator, SimError};
use bist_tgen::Lfsr;

/// Result of the partition-and-load baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionBaseline {
    /// Number of blocks in the best partition found.
    pub blocks: usize,
    /// Total loaded vectors — always `|T0|` for partitioning.
    pub total_len: usize,
    /// Maximum block length — the on-chip memory requirement.
    pub max_len: usize,
}

/// Splits `t0` into `k` nearly equal consecutive blocks.
fn split_blocks(t0: &TestSequence, k: usize) -> Vec<TestSequence> {
    let len = t0.len();
    let base = len / k;
    let extra = len % k;
    let mut blocks = Vec::with_capacity(k);
    let mut at = 0;
    for i in 0..k {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        blocks.push(t0.subsequence(at, at + sz - 1));
        at += sz;
    }
    blocks
}

/// Checks whether the blocks, each applied from the unknown state,
/// jointly detect every fault in `faults`.
fn blocks_cover(
    sim: &FaultSimulator<'_>,
    blocks: &[TestSequence],
    faults: &[Fault],
) -> Result<bool, SimError> {
    let mut remaining: Vec<Fault> = faults.to_vec();
    for b in blocks {
        if remaining.is_empty() {
            break;
        }
        let times = sim.detection_times(b, &remaining)?;
        remaining = remaining
            .into_iter()
            .zip(times)
            .filter_map(|(f, t)| if t.is_none() { Some(f) } else { None })
            .collect();
    }
    Ok(remaining.is_empty())
}

/// Runs the partition-and-load baseline: finds the largest block count
/// `k ≤ max_blocks` whose blocks still jointly detect `faults`, i.e. the
/// smallest achievable per-load memory for this strategy.
///
/// `faults` must be detected by `t0` itself (`k = 1` is then always
/// feasible).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if even `k = 1` (the whole `T0`) fails to cover `faults`.
pub fn partition_baseline(
    sim: &FaultSimulator<'_>,
    t0: &TestSequence,
    faults: &[Fault],
    max_blocks: usize,
) -> Result<PartitionBaseline, SimError> {
    assert!(
        blocks_cover(sim, std::slice::from_ref(t0), faults)?,
        "partition baseline requires T0 to detect the fault set"
    );
    let mut best_k = 1;
    let cap = max_blocks.clamp(1, t0.len());
    for k in 2..=cap {
        if blocks_cover(sim, &split_blocks(t0, k), faults)? {
            best_k = k;
        }
        // Coverage is not monotone in k, so keep scanning: a larger k can
        // succeed after a smaller one fails (block boundaries move).
    }
    let blocks = split_blocks(t0, best_k);
    Ok(PartitionBaseline {
        blocks: blocks.len(),
        total_len: t0.len(),
        max_len: blocks.iter().map(TestSequence::len).max().unwrap_or(0),
    })
}

/// Result of the LFSR-with-hold baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrBaseline {
    /// Applied sequence length.
    pub applied_len: usize,
    /// Number of target faults detected.
    pub detected: usize,
    /// Number of target faults.
    pub total: usize,
}

impl LfsrBaseline {
    /// Fraction of the target fault set detected.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Runs the LFSR-with-hold baseline: applies `applied_len` LFSR vectors
/// (each held for `hold` cycles) and reports how much of `faults` gets
/// detected. No on-chip storage is needed, but full coverage is not
/// guaranteed — the motivation for the paper's scheme.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `applied_len` or `hold` is 0.
pub fn lfsr_hold_baseline(
    sim: &FaultSimulator<'_>,
    faults: &[Fault],
    applied_len: usize,
    hold: usize,
    seed: u64,
) -> Result<LfsrBaseline, SimError> {
    assert!(applied_len > 0, "applied_len must be positive");
    assert!(hold > 0, "hold must be positive");
    let width = sim.circuit().num_inputs();
    let mut lfsr = Lfsr::new(seed);
    let mut seq = TestSequence::new(width);
    'outer: loop {
        let v = lfsr.next_vector(width);
        for _ in 0..hold {
            if seq.len() == applied_len {
                break 'outer;
            }
            seq.push(v.clone()).expect("fixed width");
        }
    }
    let times = sim.detection_times(&seq, faults)?;
    Ok(LfsrBaseline {
        applied_len,
        detected: times.iter().filter(|t| t.is_some()).count(),
        total: faults.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe, FaultSimulator};

    fn s27_setup() -> (bist_netlist::Circuit, TestSequence, Vec<Fault>) {
        let c = benchmarks::s27();
        let t0: TestSequence = "0111 1001 0111 1001 0100 1011 1001 0000 0000 1011".parse().unwrap();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        (c, t0, faults)
    }

    #[test]
    fn split_blocks_partitions_exactly() {
        let t0: TestSequence = "00 01 10 11 00 01 10".parse().unwrap();
        for k in 1..=7 {
            let blocks = split_blocks(&t0, k);
            let total: usize = blocks.iter().map(TestSequence::len).sum();
            assert_eq!(total, 7, "k={k}");
            assert_eq!(blocks.len(), k.min(7));
            // Concatenation equals the original.
            let mut joined = blocks[0].clone();
            for b in &blocks[1..] {
                joined = joined.concat(b).unwrap();
            }
            assert_eq!(joined, t0);
        }
    }

    #[test]
    fn partition_baseline_on_s27() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let base = partition_baseline(&sim, &t0, &faults, 10).unwrap();
        // Total load is always |T0| — the paper's key criticism.
        assert_eq!(base.total_len, 10);
        assert!(base.blocks >= 1);
        assert!(base.max_len >= t0.len() / base.blocks);
        // The blocks must jointly cover.
        let blocks = split_blocks(&t0, base.blocks);
        assert!(blocks_cover(&sim, &blocks, &faults).unwrap());
    }

    #[test]
    fn partitioning_cannot_beat_total_length() {
        let (c, t0, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let base = partition_baseline(&sim, &t0, &faults, 5).unwrap();
        assert_eq!(base.total_len, t0.len());
    }

    #[test]
    fn lfsr_baseline_detects_some_but_not_all_quickly() {
        let (c, _, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let short = lfsr_hold_baseline(&sim, &faults, 8, 2, 1).unwrap();
        assert!(short.detected < faults.len(), "8 vectors should not cover everything");
        let long = lfsr_hold_baseline(&sim, &faults, 512, 2, 1).unwrap();
        assert!(long.detected >= short.detected);
        assert!(long.fraction() > 0.5);
    }

    #[test]
    fn lfsr_baseline_is_deterministic() {
        let (c, _, faults) = s27_setup();
        let sim = FaultSimulator::new(&c);
        let a = lfsr_hold_baseline(&sim, &faults, 64, 3, 9).unwrap();
        let b = lfsr_hold_baseline(&sim, &faults, 64, 3, 9).unwrap();
        assert_eq!(a, b);
    }
}
