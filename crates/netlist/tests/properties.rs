//! Property-based tests: every generated circuit is valid, serializes to
//! `.bench`, and parses back to an equivalent structure.

use bist_netlist::generate::GeneratorSpec;
use bist_netlist::{parser::parse_bench, writer::to_bench, NodeKind};
use proptest::prelude::*;

fn specs() -> impl Strategy<Value = GeneratorSpec> {
    (1usize..=8, 1usize..=6, 0usize..=10, 1usize..=80, 2usize..=10, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, depth, seed)| {
            GeneratorSpec::new("prop")
                .inputs(pis)
                .outputs(pos)
                .dffs(ffs)
                .gates(gates)
                .target_depth(depth)
                .seed(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_circuits_are_valid_and_round_trip(spec in specs()) {
        let c = spec.build().unwrap();
        // Counts match the spec.
        prop_assert_eq!(c.num_gates(), {
            let text = to_bench(&c);
            let back = parse_bench("prop", &text).unwrap();
            prop_assert_eq!(back.num_inputs(), c.num_inputs());
            prop_assert_eq!(back.num_outputs(), c.num_outputs());
            prop_assert_eq!(back.num_dffs(), c.num_dffs());
            back.num_gates()
        });
    }

    #[test]
    fn eval_order_is_always_topological(spec in specs()) {
        let c = spec.build().unwrap();
        let mut ready = vec![false; c.num_nodes()];
        for &i in c.inputs() {
            ready[i.index()] = true;
        }
        for &d in c.dffs() {
            ready[d.index()] = true;
        }
        for &g in c.eval_order() {
            for &f in c.node(g).fanin() {
                prop_assert!(ready[f.index()]);
            }
            ready[g.index()] = true;
        }
        prop_assert!(ready.iter().all(|&b| b));
    }

    #[test]
    fn gate_arities_are_legal(spec in specs()) {
        let c = spec.build().unwrap();
        for &g in c.eval_order() {
            let node = c.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            prop_assert!(kind.accepts_arity(node.fanin().len()),
                "{} has {} fanins", kind, node.fanin().len());
        }
    }

    #[test]
    fn dffs_have_exactly_one_fanin(spec in specs()) {
        let c = spec.build().unwrap();
        for &d in c.dffs() {
            prop_assert_eq!(c.node(d).fanin().len(), 1);
        }
    }

    #[test]
    fn levels_bounded_by_depth(spec in specs()) {
        let c = spec.build().unwrap();
        let depth = c.depth();
        for i in 0..c.num_nodes() {
            prop_assert!(c.level(bist_netlist::NodeId::from_index(i)) <= depth);
        }
    }
}
