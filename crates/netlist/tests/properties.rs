//! Property-based tests over seeded random generator specs: every
//! generated circuit is valid, serializes to `.bench`, and parses back to
//! an equivalent structure.

use bist_netlist::generate::GeneratorSpec;
use bist_netlist::{parser::parse_bench, writer::to_bench, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_spec(rng: &mut StdRng) -> GeneratorSpec {
    GeneratorSpec::new("prop")
        .inputs(rng.gen_range(1usize..=8))
        .outputs(rng.gen_range(1usize..=6))
        .dffs(rng.gen_range(0usize..=10))
        .gates(rng.gen_range(1usize..=80))
        .target_depth(rng.gen_range(2usize..=10))
        .seed(rng.gen::<u64>())
}

fn for_each_spec(mut f: impl FnMut(GeneratorSpec)) {
    let mut rng = StdRng::seed_from_u64(0xbe1c_4a57);
    for _ in 0..CASES {
        f(random_spec(&mut rng));
    }
}

/// Full structural equivalence between a circuit and its reparse:
/// identical interface name lists (in order), and for every node an
/// equally-named node of the same kind with the same fanin names (in
/// order). Node *indices* may differ — the writer reorders declarations
/// — so everything is compared through names.
fn assert_equivalent(original: &bist_netlist::Circuit, reparsed: &bist_netlist::Circuit) {
    let names = |ids: &[bist_netlist::NodeId], c: &bist_netlist::Circuit| -> Vec<String> {
        ids.iter().map(|&i| c.node(i).name().to_string()).collect()
    };
    assert_eq!(reparsed.num_nodes(), original.num_nodes());
    assert_eq!(names(original.inputs(), original), names(reparsed.inputs(), reparsed));
    assert_eq!(names(original.outputs(), original), names(reparsed.outputs(), reparsed));
    assert_eq!(names(original.dffs(), original), names(reparsed.dffs(), reparsed));
    for node in original.nodes() {
        let id = reparsed
            .find(node.name())
            .unwrap_or_else(|| panic!("node `{}` lost in round trip", node.name()));
        let back = reparsed.node(id);
        assert_eq!(back.kind(), node.kind(), "kind of `{}` changed", node.name());
        let original_fanin: Vec<&str> =
            node.fanin().iter().map(|&f| original.node(f).name()).collect();
        let reparsed_fanin: Vec<&str> =
            back.fanin().iter().map(|&f| reparsed.node(f).name()).collect();
        assert_eq!(reparsed_fanin, original_fanin, "fanin of `{}` changed", node.name());
    }
}

#[test]
fn generated_circuits_are_valid_and_round_trip() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let text = to_bench(&c);
        let back = parse_bench("prop", &text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        assert_eq!(back.num_outputs(), c.num_outputs());
        assert_eq!(back.num_dffs(), c.num_dffs());
        assert_eq!(back.num_gates(), c.num_gates());
        assert_equivalent(&c, &back);
    });
}

/// Every entry of the evaluation suite — the real `s27` and all twelve
/// synthetic analogs up to the 16k-gate `a35932` — survives
/// writer → parser round-tripping as a structurally equivalent circuit,
/// and the equivalence is stable under a second round trip. (Byte
/// identity is *not* expected: gate declarations are emitted in
/// evaluation order, whose tie-breaking depends on node-id assignment.)
#[test]
fn suite_circuits_round_trip_to_equivalent_circuits() {
    for entry in bist_netlist::benchmarks::suite() {
        let c = entry.build().unwrap();
        let text = to_bench(&c);
        let back = parse_bench(entry.name, &text).unwrap();
        assert_equivalent(&c, &back);
        let back2 = parse_bench(entry.name, &to_bench(&back)).unwrap();
        assert_equivalent(&back, &back2);
    }
}

#[test]
fn eval_order_is_always_topological() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let mut ready = vec![false; c.num_nodes()];
        for &i in c.inputs() {
            ready[i.index()] = true;
        }
        for &d in c.dffs() {
            ready[d.index()] = true;
        }
        for &g in c.eval_order() {
            for &f in c.node(g).fanin() {
                assert!(ready[f.index()]);
            }
            ready[g.index()] = true;
        }
        assert!(ready.iter().all(|&b| b));
    });
}

#[test]
fn gate_arities_are_legal() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        for &g in c.eval_order() {
            let node = c.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            assert!(
                kind.accepts_arity(node.fanin().len()),
                "{} has {} fanins",
                kind,
                node.fanin().len()
            );
        }
    });
}

#[test]
fn dffs_have_exactly_one_fanin() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        for &d in c.dffs() {
            assert_eq!(c.node(d).fanin().len(), 1);
        }
    });
}

#[test]
fn levels_bounded_by_depth() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let depth = c.depth();
        for i in 0..c.num_nodes() {
            assert!(c.level(bist_netlist::NodeId::from_index(i)) <= depth);
        }
    });
}
