//! Property-based tests over seeded random generator specs: every
//! generated circuit is valid, serializes to `.bench`, and parses back to
//! an equivalent structure.

use bist_netlist::generate::GeneratorSpec;
use bist_netlist::{parser::parse_bench, writer::to_bench, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_spec(rng: &mut StdRng) -> GeneratorSpec {
    GeneratorSpec::new("prop")
        .inputs(rng.gen_range(1usize..=8))
        .outputs(rng.gen_range(1usize..=6))
        .dffs(rng.gen_range(0usize..=10))
        .gates(rng.gen_range(1usize..=80))
        .target_depth(rng.gen_range(2usize..=10))
        .seed(rng.gen::<u64>())
}

fn for_each_spec(mut f: impl FnMut(GeneratorSpec)) {
    let mut rng = StdRng::seed_from_u64(0xbe1c_4a57);
    for _ in 0..CASES {
        f(random_spec(&mut rng));
    }
}

#[test]
fn generated_circuits_are_valid_and_round_trip() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let text = to_bench(&c);
        let back = parse_bench("prop", &text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        assert_eq!(back.num_outputs(), c.num_outputs());
        assert_eq!(back.num_dffs(), c.num_dffs());
        assert_eq!(back.num_gates(), c.num_gates());
    });
}

#[test]
fn eval_order_is_always_topological() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let mut ready = vec![false; c.num_nodes()];
        for &i in c.inputs() {
            ready[i.index()] = true;
        }
        for &d in c.dffs() {
            ready[d.index()] = true;
        }
        for &g in c.eval_order() {
            for &f in c.node(g).fanin() {
                assert!(ready[f.index()]);
            }
            ready[g.index()] = true;
        }
        assert!(ready.iter().all(|&b| b));
    });
}

#[test]
fn gate_arities_are_legal() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        for &g in c.eval_order() {
            let node = c.node(g);
            let NodeKind::Gate(kind) = node.kind() else { unreachable!() };
            assert!(
                kind.accepts_arity(node.fanin().len()),
                "{} has {} fanins",
                kind,
                node.fanin().len()
            );
        }
    });
}

#[test]
fn dffs_have_exactly_one_fanin() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        for &d in c.dffs() {
            assert_eq!(c.node(d).fanin().len(), 1);
        }
    });
}

#[test]
fn levels_bounded_by_depth() {
    for_each_spec(|spec| {
        let c = spec.build().unwrap();
        let depth = c.depth();
        for i in 0..c.num_nodes() {
            assert!(c.level(bist_netlist::NodeId::from_index(i)) <= depth);
        }
    });
}
