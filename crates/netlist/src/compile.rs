//! Staged `Circuit` → [`GateTape`] compiler with optional
//! netlist-optimization passes and a fault-site remapping table.
//!
//! [`GateTape::compile`] is the identity pipeline: every gate of the
//! circuit lands on the tape. [`compile_staged`] runs an ordered list of
//! semantics-preserving passes first, selected by [`CompileOptions`]:
//!
//! 1. **Always-X fold** (`fold_x`) — the greatest fixpoint of nets that
//!    can never leave `X` under the pessimistic 3-valued semantics (all
//!    state starts `X`; a DFF is always-X iff its D-source is, an
//!    AND/NAND/OR/NOR/BUF/NOT iff *all* fanins are, an XOR/XNOR iff *any*
//!    fanin is). Folded gates are simply not emitted: every engine
//!    initializes value tables to all-X per chunk and never writes
//!    off-tape slots, so consumers of a folded gate read a permanently-X
//!    slot — exactly the folded gate's value. Note that Boolean constant
//!    folding (`OR(a, NOT a) → 1`) is *invalid* here: under pessimistic
//!    3-valued evaluation `X OR X = X`, so the always-X closure is the
//!    only sound "constant" domain.
//! 2. **Value forwarding** (`forward`) — `BUF(a) → a` and
//!    `AND(a,…,a) → a` / `OR(a,…,a) → a` when every (already-substituted)
//!    fanin is the same node; these identities are exact in 3-valued
//!    logic. Consumers are rewritten to read the forwarded node directly.
//! 3. **Identical-gate dedup** (`dedup`) — hash-consing on
//!    `(opcode, substituted fanin list)`: the second and later copies of
//!    a gate are removed and their consumers rewritten to the first.
//! 4. **Dead-cone sweep** (`dead_sweep`) — backward liveness from the
//!    primary outputs over the *rewritten* structure (through live
//!    surviving gates and every DFF's substituted D-source); surviving
//!    gates nothing live reads are dropped.
//!
//! PO-driving gates are never forwarded or deduplicated away (the PO node
//! must keep its own value slot), and PIs/DFFs always stay in the tape
//! tables. The emitted tape keeps the *original* circuit's node-index
//! space — removed gates simply have no tape position — so value tables,
//! fault sites and `NodeId`-keyed bookkeeping work unchanged.
//!
//! # The [`SiteMap`]
//!
//! Fault coverage is defined against the original circuit, so every
//! original fault site needs a disposition on the optimized tape. The
//! compiler classifies each node's output (stem) and input (branch)
//! faults into a [`SiteRoute`]:
//!
//! * [`Direct`](SiteRoute::Direct) — the site survives untouched; inject
//!   on the optimized tape as-is.
//! * [`Redirect`](SiteRoute::Redirect) — the gate was removed but its
//!   output line fed exactly one consumer pin in the original circuit and
//!   that consumer routes `Direct`: a stem fault on the removed gate is
//!   exactly an input-pin fault at the surviving consumer.
//! * [`Pinned`](SiteRoute::Pinned) — the site interacts with a rewrite
//!   (folded cone, dedup representative or victim, swept gate): simulate
//!   it on the unoptimized baseline tape. Results merge by original fault
//!   index, so campaigns stay bit-identical by construction.
//! * [`Untestable`](SiteRoute::Untestable) — the site cannot reach any
//!   primary output in the *original* graph (through any combinational
//!   path or DFF chain), so the fault is undetectable in both machines;
//!   no simulation needed.

use crate::tape::{assemble, TapeGate, TapeSpec};
use crate::{Circuit, GateKind, GateTape, NodeId, NodeKind};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// Pass selection for [`compile_staged`]. [`CompileOptions::none`] is the
/// identity pipeline (exactly [`GateTape::compile`]);
/// [`CompileOptions::all`] enables every optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompileOptions {
    /// Fold the always-X closure (gates that can never leave `X`).
    pub fold_x: bool,
    /// Forward `BUF(a)` and same-fanin `AND`/`OR` gates to their source.
    pub forward: bool,
    /// Hash-cons structurally identical gates.
    pub dedup: bool,
    /// Sweep gates that no live node reads (backward from the POs).
    pub dead_sweep: bool,
}

impl CompileOptions {
    /// No optimization: the staged compiler reproduces
    /// [`GateTape::compile`] exactly and the [`SiteMap`] is the identity.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Every optimization pass enabled.
    #[must_use]
    pub fn all() -> Self {
        CompileOptions { fold_x: true, forward: true, dedup: true, dead_sweep: true }
    }

    /// `true` if no pass is enabled (the identity pipeline).
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == Self::none()
    }

    /// A stable short key naming the enabled pass set — cache keys and
    /// artifact labels embed this (`"none"`, `"xfds"`, `"fd"`, …).
    #[must_use]
    pub fn key(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut key = String::new();
        if self.fold_x {
            key.push('x');
        }
        if self.forward {
            key.push('f');
        }
        if self.dedup {
            key.push('d');
        }
        if self.dead_sweep {
            key.push('s');
        }
        key
    }

    /// Parses a pass selection in the [`key`](Self::key) syntax:
    /// `"none"`, or a non-empty subset of the letters `xfds` (`x`
    /// constant-X fold, `f` value forwarding, `d` duplicate-gate dedup,
    /// `s` dead sweep). Letter order and repetition are normalized away
    /// — `"fx"`, `"xf"` and `"fxxf"` all parse to the same options, so
    /// their [`key`](Self::key) (and anything fingerprinted or
    /// cache-keyed from it) is identical. Returns `None` on any other
    /// character and on the empty string: an empty spec is ambiguous
    /// between "no passes" and a submission bug, so callers must spell
    /// the identity pipeline `"none"`.
    #[must_use]
    pub fn parse(spec: &str) -> Option<CompileOptions> {
        if spec == "none" {
            return Some(CompileOptions::none());
        }
        if spec.is_empty() {
            return None;
        }
        let mut options = CompileOptions::none();
        for c in spec.chars() {
            match c {
                'x' => options.fold_x = true,
                'f' => options.forward = true,
                'd' => options.dedup = true,
                's' => options.dead_sweep = true,
                _ => return None,
            }
        }
        Some(options)
    }
}

/// What each pass of a staged compile removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Gates in the source circuit.
    pub gates_in: usize,
    /// Gates on the emitted tape.
    pub gates_out: usize,
    /// Gates folded as members of the always-X closure.
    pub folded_x: usize,
    /// Gates forwarded to an equal-valued source node.
    pub forwarded: usize,
    /// Duplicate gates replaced by their hash-cons representative.
    pub deduped: usize,
    /// Live-at-no-PO gates dropped by the dead-cone sweep.
    pub swept: usize,
}

impl PassStats {
    /// Total gates removed by all passes.
    #[must_use]
    pub fn gates_removed(&self) -> usize {
        self.gates_in - self.gates_out
    }
}

/// Disposition of one original fault site on an optimized tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteRoute {
    /// The site survives on the optimized tape; inject there unchanged.
    Direct,
    /// The site's gate was removed, but its output line fed exactly this
    /// one consumer pin: inject the stem fault as an input-pin fault at
    /// `node`/`pin` on the optimized tape.
    Redirect {
        /// The surviving consumer node.
        node: NodeId,
        /// The fanin position at which it read the removed gate.
        pin: u32,
    },
    /// The site interacts with a rewrite; simulate this fault on the
    /// unoptimized baseline tape.
    Pinned,
    /// The site reaches no primary output in the original graph: the
    /// fault is undetectable, no simulation needed.
    Untestable,
}

/// Per-node fault-site dispositions for one staged compile: where each
/// original stem ([`output_route`](SiteMap::output_route)) and branch
/// ([`input_route`](SiteMap::input_route)) fault must be injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMap {
    route_out: Vec<SiteRoute>,
    route_in: Vec<SiteRoute>,
    needs_baseline: bool,
    identity: bool,
}

impl SiteMap {
    fn identity_map(num_nodes: usize) -> Self {
        SiteMap {
            route_out: vec![SiteRoute::Direct; num_nodes],
            route_in: vec![SiteRoute::Direct; num_nodes],
            needs_baseline: false,
            identity: true,
        }
    }

    /// Number of nodes covered (the original circuit's node count).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.route_out.len()
    }

    /// Disposition of output (stem) faults at `node`.
    #[must_use]
    pub fn output_route(&self, node: NodeId) -> SiteRoute {
        self.route_out[node.index()]
    }

    /// Disposition of input (branch) faults at any pin of `node`. Input
    /// faults are never redirected: a pin force is exact on the optimized
    /// tape whenever the consumer itself survives untainted.
    #[must_use]
    pub fn input_route(&self, node: NodeId) -> SiteRoute {
        self.route_in[node.index()]
    }

    /// `true` if any route is [`SiteRoute::Pinned`] — i.e. a mapped
    /// simulation over the full fault universe needs the baseline tape.
    #[must_use]
    pub fn needs_baseline(&self) -> bool {
        self.needs_baseline
    }

    /// `true` for the identity compile: every route is `Direct` and the
    /// optimized tape *is* the baseline tape.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.identity
    }
}

/// The product of a staged compile: the (possibly optimized) tape, the
/// unoptimized baseline tape, the fault-site map tying them together and
/// the per-pass removal statistics.
///
/// # Example
///
/// ```
/// use bist_netlist::{benchmarks, compile_staged, CompileOptions};
///
/// let c = benchmarks::s27();
/// let identity = compile_staged(&c, CompileOptions::none());
/// assert_eq!(identity.tape().num_gates(), c.num_gates());
/// assert!(identity.site_map().is_identity());
///
/// let optimized = compile_staged(&c, CompileOptions::all());
/// assert!(optimized.tape().num_gates() <= c.num_gates());
/// assert_eq!(optimized.baseline().num_gates(), c.num_gates());
/// assert_eq!(optimized.stats().gates_removed(),
///            c.num_gates() - optimized.tape().num_gates());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    options: CompileOptions,
    tape: Arc<GateTape>,
    baseline: Arc<GateTape>,
    site_map: Arc<SiteMap>,
    stats: PassStats,
}

impl CompiledCircuit {
    /// The pass selection this compile ran with.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The emitted (possibly optimized) tape.
    #[must_use]
    pub fn tape(&self) -> &Arc<GateTape> {
        &self.tape
    }

    /// The unoptimized identity tape of the same circuit. For the
    /// identity compile this is the same allocation as
    /// [`tape`](Self::tape); pinned fault sites simulate here.
    #[must_use]
    pub fn baseline(&self) -> &Arc<GateTape> {
        &self.baseline
    }

    /// The fault-site dispositions.
    #[must_use]
    pub fn site_map(&self) -> &Arc<SiteMap> {
        &self.site_map
    }

    /// Per-pass removal statistics.
    #[must_use]
    pub fn stats(&self) -> &PassStats {
        &self.stats
    }

    /// Total gates the passes removed from the tape.
    #[must_use]
    pub fn gates_removed(&self) -> usize {
        self.stats.gates_removed()
    }
}

/// The always-X closure of `circuit`: index-aligned flags marking every
/// node whose value can never leave `X` under the pessimistic 3-valued
/// semantics (all state starts `X`; a DFF is in the closure iff its
/// D-source is, an AND/NAND/OR/NOR/BUF/NOT iff *all* fanins are, an
/// XOR/XNOR iff *any* fanin is). This is the greatest fixpoint the
/// `fold_x` pass removes; the linter reports its members as
/// constant-valued nets (L014).
#[must_use]
pub fn always_x_closure(circuit: &Circuit) -> Vec<bool> {
    let n = circuit.num_nodes();
    let fanout = circuit.fanout_table();
    let mut in_closure: Vec<bool> =
        circuit.nodes().iter().map(|node| !matches!(node.kind(), NodeKind::Input)).collect();
    let holds = |i: usize, in_closure: &[bool]| -> bool {
        let node = circuit.node(NodeId::from_index(i));
        match node.kind() {
            NodeKind::Input => false,
            NodeKind::Dff => in_closure[node.fanin()[0].index()],
            NodeKind::Gate(GateKind::Xor | GateKind::Xnor) => {
                node.fanin().iter().any(|f| in_closure[f.index()])
            }
            NodeKind::Gate(_) => node.fanin().iter().all(|f| in_closure[f.index()]),
        }
    };
    // Remove nodes whose membership rule fails until stable; removal
    // re-queues the node's consumers, so the sweep is O(edges · arity).
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(i) = work.pop() {
        if in_closure[i] && !holds(i, &in_closure) {
            in_closure[i] = false;
            for r in &fanout[i] {
                if in_closure[r.node.index()] {
                    work.push(r.node.index());
                }
            }
        }
    }
    in_closure
}

/// `(duplicate, representative)` pairs of gates computing identical
/// functions: hash-consing on `(opcode, fanin list)` after value
/// forwarding (`BUF`, same-fanin `AND`/`OR`) in one topological sweep —
/// the structure the `dedup` pass would merge, without the PO exemption
/// (a redundant cone is worth reporting even when it drives an output).
/// The linter reports each pair as a duplicate cone (L015).
#[must_use]
pub fn duplicate_cone_pairs(circuit: &Circuit) -> Vec<(NodeId, NodeId)> {
    let n = circuit.num_nodes();
    let mut forward: Vec<u32> = (0..n).map(|i| i as u32).collect();
    let mut dedup_map: HashMap<(GateKind, Vec<u32>), u32> = HashMap::new();
    let mut pairs = Vec::new();
    for &g in circuit.eval_order() {
        let node = circuit.node(g);
        let NodeKind::Gate(kind) = node.kind() else {
            unreachable!("eval_order contains only gates")
        };
        let subst: Vec<u32> = node.fanin().iter().map(|f| forward[f.index()]).collect();
        let forwardable = match kind {
            GateKind::Buf => true,
            GateKind::And | GateKind::Or => subst.iter().all(|&f| f == subst[0]),
            _ => false,
        };
        if forwardable {
            forward[g.index()] = subst[0];
            continue;
        }
        match dedup_map.entry((*kind, subst)) {
            Entry::Occupied(e) => {
                let rep = *e.get();
                forward[g.index()] = rep;
                pairs.push((g, NodeId::from_index(rep as usize)));
            }
            Entry::Vacant(e) => {
                e.insert(g.0);
            }
        }
    }
    pairs
}

/// The fate of each gate after the rewrite passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// On the tape (PIs, DFFs and surviving gates).
    Kept,
    /// Member of the always-X closure; slot reads as permanent X.
    FoldedX,
    /// Forwarded to an equal-valued node; all references substituted.
    Forwarded,
    /// Duplicate of a hash-cons representative; references substituted.
    Deduped,
    /// Survived the rewrites but nothing live reads it.
    Swept,
}

/// Compiles `circuit` through the staged pass pipeline, building the
/// baseline tape with [`GateTape::compile`]. Callers that already hold a
/// baseline tape (e.g. an artifact cache) should use
/// [`compile_staged_with_baseline`] to share it.
#[must_use]
pub fn compile_staged(circuit: &Circuit, options: CompileOptions) -> CompiledCircuit {
    compile_staged_with_baseline(circuit, options, Arc::new(GateTape::compile(circuit)))
}

/// [`compile_staged`] with a caller-provided baseline (identity) tape for
/// `circuit`. The baseline must be `GateTape::compile(circuit)`; it is
/// returned as-is for the identity option set and used for pinned fault
/// sites otherwise.
#[must_use]
pub fn compile_staged_with_baseline(
    circuit: &Circuit,
    options: CompileOptions,
    baseline: Arc<GateTape>,
) -> CompiledCircuit {
    let n = circuit.num_nodes();
    let gates_in = circuit.num_gates();
    debug_assert_eq!(baseline.num_gates(), gates_in, "baseline is not the identity tape");
    if options.is_none() {
        return CompiledCircuit {
            options,
            tape: baseline.clone(),
            baseline,
            site_map: Arc::new(SiteMap::identity_map(n)),
            stats: PassStats { gates_in, gates_out: gates_in, ..PassStats::default() },
        };
    }

    let fanout = circuit.fanout_table();
    let mut stats = PassStats { gates_in, ..PassStats::default() };

    // Pass 1: the always-X greatest fixpoint (shared with the linter's
    // constant-net analysis).
    let in_closure = if options.fold_x { always_x_closure(circuit) } else { vec![false; n] };

    // Passes 2+3: one forward topological sweep doing value forwarding
    // and hash-cons dedup on already-substituted fanins. `forward[i]` is
    // the surviving node computing node i's value (i itself if kept or
    // folded — folded slots hold the right value, permanent X).
    let mut is_po = vec![false; n];
    for &o in circuit.outputs() {
        is_po[o.index()] = true;
    }
    let mut fate = vec![Fate::Kept; n];
    let mut forward: Vec<u32> = (0..n).map(|i| i as u32).collect();
    let mut tainted = vec![false; n];
    let mut dedup_map: HashMap<(GateKind, Vec<u32>), u32> = HashMap::new();
    let mut emitted: Vec<TapeGate> = Vec::with_capacity(gates_in);
    for &g in circuit.eval_order() {
        let gi = g.index();
        if in_closure[gi] {
            fate[gi] = Fate::FoldedX;
            stats.folded_x += 1;
            continue;
        }
        let node = circuit.node(g);
        let NodeKind::Gate(kind) = node.kind() else {
            unreachable!("eval_order contains only gates")
        };
        let subst: Vec<u32> = node.fanin().iter().map(|f| forward[f.index()]).collect();
        // PO drivers keep their own slot: the PO is the node itself.
        if options.forward && !is_po[gi] {
            let forwardable = match kind {
                GateKind::Buf => true,
                // AND(a,…,a) = a and OR(a,…,a) = a hold exactly in
                // 3-valued logic (X stays X); NAND/NOR invert and
                // XOR(a,a) is X for a = X, so only these two qualify.
                GateKind::And | GateKind::Or => subst.iter().all(|&f| f == subst[0]),
                _ => false,
            };
            if forwardable {
                forward[gi] = subst[0];
                fate[gi] = Fate::Forwarded;
                stats.forwarded += 1;
                continue;
            }
        }
        if options.dedup && !is_po[gi] {
            match dedup_map.entry((*kind, subst.clone())) {
                Entry::Occupied(e) => {
                    let rep = *e.get();
                    forward[gi] = rep;
                    fate[gi] = Fate::Deduped;
                    tainted[rep as usize] = true;
                    stats.deduped += 1;
                    continue;
                }
                Entry::Vacant(e) => {
                    e.insert(g.0);
                }
            }
        }
        emitted.push((g.0, *kind, subst));
    }

    // Pass 4: dead-cone sweep — backward liveness from the POs over the
    // rewritten structure. DFFs keep their (substituted) D-source cone
    // alive only if the DFF itself is live; folded gates stop traversal
    // (their cone exists only to hold X).
    let final_gates: Vec<TapeGate> = if options.dead_sweep {
        let emit_of: HashMap<u32, usize> =
            emitted.iter().enumerate().map(|(k, (out, _, _))| (*out, k)).collect();
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = circuit.outputs().iter().map(|o| o.index() as u32).collect();
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if live[i] {
                continue;
            }
            live[i] = true;
            let node = circuit.node(NodeId::from_index(i));
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Dff => stack.push(forward[node.fanin()[0].index()]),
                NodeKind::Gate(_) => {
                    if fate[i] == Fate::Kept {
                        let (_, _, subst) = &emitted[emit_of[&(i as u32)]];
                        stack.extend_from_slice(subst);
                    }
                }
            }
        }
        let mut kept = Vec::with_capacity(emitted.len());
        for gate in emitted {
            if live[gate.0 as usize] {
                kept.push(gate);
            } else {
                fate[gate.0 as usize] = Fate::Swept;
                stats.swept += 1;
            }
        }
        kept
    } else {
        emitted
    };
    stats.gates_out = final_gates.len();

    let as_u32 = |ids: &[NodeId]| ids.iter().map(|id| id.0).collect::<Vec<u32>>();
    let tape = Arc::new(assemble(TapeSpec {
        num_nodes: n,
        inputs: as_u32(circuit.inputs()),
        outputs: as_u32(circuit.outputs()),
        dffs: as_u32(circuit.dffs()),
        dff_src: circuit
            .dffs()
            .iter()
            .map(|&d| forward[circuit.node(d).fanin()[0].index()])
            .collect(),
        gates: final_gates,
    }));

    // Original-graph liveness: a site outside the backward PO closure of
    // the *unoptimized* circuit cannot affect any PO in either machine —
    // exactly the undetectable faults, independent of the pass set.
    let orig_live = {
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = circuit.outputs().iter().map(|o| o.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            stack.extend(circuit.node(NodeId::from_index(i)).fanin().iter().map(|f| f.index()));
        }
        live
    };

    // Route every node's stem and branch faults.
    let mut route_out = vec![SiteRoute::Direct; n];
    let mut route_in = vec![SiteRoute::Direct; n];
    for i in 0..n {
        let route = if !orig_live[i] {
            SiteRoute::Untestable
        } else {
            match circuit.node(NodeId::from_index(i)).kind() {
                NodeKind::Input => SiteRoute::Direct,
                // Forcing a closure net binary can leak through the fold
                // (AND(0, X) = 0), so closure-sited faults are pinned.
                NodeKind::Dff => {
                    if in_closure[i] {
                        SiteRoute::Pinned
                    } else {
                        SiteRoute::Direct
                    }
                }
                NodeKind::Gate(_) => match fate[i] {
                    // A dedup representative computes for two original
                    // sites at once; faults *at* it are pinned (upstream
                    // faults corrupt both copies identically and stay
                    // exact, so they don't taint).
                    Fate::Kept => {
                        if tainted[i] {
                            SiteRoute::Pinned
                        } else {
                            SiteRoute::Direct
                        }
                    }
                    _ => SiteRoute::Pinned,
                },
            }
        };
        route_out[i] = route;
        route_in[i] = route;
    }
    // Redirect upgrade: a removed gate whose output line fed exactly one
    // consumer pin in the original circuit, with that consumer routing
    // Direct, has its stem faults injected as input faults at the
    // consumer — identical by construction (the line *is* that pin, and
    // single-fanout stems have no competing branch fault at the pin).
    // Swept-but-original-live gates stay conservatively pinned.
    for (i, f) in fate.iter().enumerate() {
        if !matches!(f, Fate::FoldedX | Fate::Forwarded | Fate::Deduped) {
            continue;
        }
        if !orig_live[i] || is_po[i] || fanout[i].len() != 1 {
            continue;
        }
        let r = fanout[i][0];
        if route_in[r.node.index()] == SiteRoute::Direct {
            route_out[i] = SiteRoute::Redirect { node: r.node, pin: r.pin };
        }
    }
    let needs_baseline =
        route_out.iter().chain(route_in.iter()).any(|r| matches!(r, SiteRoute::Pinned));

    CompiledCircuit {
        options,
        tape,
        baseline,
        site_map: Arc::new(SiteMap { route_out, route_in, needs_baseline, identity: false }),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, CircuitBuilder};

    #[test]
    fn identity_compile_shares_the_baseline() {
        let c = benchmarks::s27();
        let compiled = compile_staged(&c, CompileOptions::none());
        assert!(Arc::ptr_eq(compiled.tape(), compiled.baseline()));
        assert!(compiled.site_map().is_identity());
        assert!(!compiled.site_map().needs_baseline());
        assert_eq!(compiled.gates_removed(), 0);
        assert_eq!(**compiled.tape(), GateTape::compile(&c));
        for i in 0..c.num_nodes() {
            let id = NodeId::from_index(i);
            assert_eq!(compiled.site_map().output_route(id), SiteRoute::Direct);
            assert_eq!(compiled.site_map().input_route(id), SiteRoute::Direct);
        }
    }

    #[test]
    fn options_keys_are_stable() {
        assert_eq!(CompileOptions::none().key(), "none");
        assert_eq!(CompileOptions::all().key(), "xfds");
        let fd = CompileOptions { forward: true, dedup: true, ..CompileOptions::none() };
        assert_eq!(fd.key(), "fd");
        assert!(CompileOptions::none().is_none());
        assert!(!CompileOptions::all().is_none());
        // parse() inverts key() on every subset, and rejects junk.
        for options in [CompileOptions::none(), CompileOptions::all(), fd] {
            assert_eq!(CompileOptions::parse(&options.key()), Some(options));
        }
        assert_eq!(
            CompileOptions::parse("x"),
            Some(CompileOptions { fold_x: true, ..CompileOptions::none() })
        );
        assert_eq!(CompileOptions::parse("q"), None);
        assert_eq!(CompileOptions::parse("xfq"), None);
    }

    #[test]
    fn parse_normalizes_order_and_duplicates() {
        // Every spelling of the same pass set parses to one canonical
        // value whose key() is canonical too — so fingerprints and cache
        // keys derived from user-supplied specs cannot split identical
        // work (`--optimize=xf` vs `--optimize=fx`).
        let canonical = CompileOptions::parse("xf").unwrap();
        for spec in ["fx", "xxf", "fxfx", "xfxf"] {
            assert_eq!(CompileOptions::parse(spec), Some(canonical), "spec {spec:?}");
            assert_eq!(CompileOptions::parse(spec).unwrap().key(), "xf", "spec {spec:?}");
        }
        assert_eq!(CompileOptions::parse("sdfx"), Some(CompileOptions::all()));
        assert_eq!(CompileOptions::parse("sdfx").unwrap().key(), "xfds");
        // The empty spec is rejected, not silently treated as "none":
        // an empty `--optimize=` (or HTTP field) is a submission bug.
        assert_eq!(CompileOptions::parse(""), None);
        assert_eq!(CompileOptions::parse("none"), Some(CompileOptions::none()));
    }

    #[test]
    fn buffers_are_forwarded_and_duplicates_merged() {
        // b = BUF(a); two identical NANDs; one feeds the PO through each.
        let mut b = CircuitBuilder::new("fwd");
        b.add_input("a");
        b.add_input("x");
        b.add_gate("b", GateKind::Buf, ["a"]);
        b.add_gate("n1", GateKind::Nand, ["b", "x"]);
        b.add_gate("n2", GateKind::Nand, ["a", "x"]);
        b.add_gate("o", GateKind::And, ["n1", "n2"]);
        b.add_output("o");
        let c = b.finish().unwrap();
        let compiled = compile_staged(&c, CompileOptions::all());
        // BUF forwarded; n1's fanin substitutes to a, making it n2's
        // duplicate; the AND collapses to AND(n,n) — but AND is the PO
        // driver so it survives.
        assert_eq!(compiled.stats().forwarded, 1);
        assert_eq!(compiled.stats().deduped, 1);
        assert_eq!(compiled.tape().num_gates(), 2);
        assert!(compiled.site_map().needs_baseline());
        // The dedup representative is pinned; upstream PI stays direct.
        let n1 = c.find("n1").unwrap();
        let n2 = c.find("n2").unwrap();
        let reps_pinned = [n1, n2]
            .iter()
            .filter(|&&id| compiled.site_map().output_route(id) == SiteRoute::Pinned)
            .count();
        assert!(reps_pinned >= 1, "dedup survivor must be pinned");
        assert_eq!(compiled.site_map().output_route(c.find("a").unwrap()), SiteRoute::Direct);
    }

    #[test]
    fn forwarded_single_fanout_gate_redirects() {
        // b = BUF(a) feeds exactly one consumer pin: stem faults at b
        // redirect to that pin.
        let mut b = CircuitBuilder::new("redir");
        b.add_input("a");
        b.add_input("x");
        b.add_gate("b", GateKind::Buf, ["a"]);
        b.add_gate("o", GateKind::Nand, ["b", "x"]);
        b.add_output("o");
        let c = b.finish().unwrap();
        let compiled = compile_staged(&c, CompileOptions::all());
        let o = c.find("o").unwrap();
        assert_eq!(
            compiled.site_map().output_route(c.find("b").unwrap()),
            SiteRoute::Redirect { node: o, pin: 0 }
        );
        // Input faults at a removed gate are never redirected.
        assert_eq!(compiled.site_map().input_route(c.find("b").unwrap()), SiteRoute::Pinned);
    }

    #[test]
    fn always_x_cone_folds_and_pins() {
        // q = DFF(q) never leaves X; g = NOT(q) is in the closure too.
        let mut b = CircuitBuilder::new("xfold");
        b.add_input("a");
        b.add_dff("q", "q");
        b.add_gate("g", GateKind::Not, ["q"]);
        b.add_gate("o", GateKind::And, ["g", "a"]);
        b.add_output("o");
        let c = b.finish().unwrap();
        let compiled = compile_staged(&c, CompileOptions::all());
        assert_eq!(compiled.stats().folded_x, 1);
        // g is gone from the tape; o survives reading g's permanent-X slot.
        let g = c.find("g").unwrap();
        assert_eq!(compiled.tape().gate_pos(g.index()), None);
        assert!(compiled.tape().gate_pos(c.find("o").unwrap().index()).is_some());
        // Closure DFF stem faults are pinned; the folded NOT's single
        // consumer pin routes Direct, so its stem faults redirect there.
        assert_eq!(compiled.site_map().output_route(c.find("q").unwrap()), SiteRoute::Pinned);
        assert_eq!(
            compiled.site_map().output_route(g),
            SiteRoute::Redirect { node: c.find("o").unwrap(), pin: 0 }
        );
    }

    #[test]
    fn dead_cone_is_swept_and_untestable() {
        // d1/d2 feed only each other's cone, never a PO.
        let mut b = CircuitBuilder::new("dead");
        b.add_input("a");
        b.add_input("x");
        b.add_gate("d1", GateKind::Nor, ["a", "x"]);
        b.add_gate("d2", GateKind::Not, ["d1"]);
        b.add_gate("o", GateKind::Nand, ["a", "x"]);
        b.add_output("o");
        // d2 drives nothing: builder requires all nets driven, not read.
        b.add_dff("qd", "d2");
        let c = b.finish().unwrap();
        let compiled = compile_staged(&c, CompileOptions::all());
        let d1 = c.find("d1").unwrap();
        let d2 = c.find("d2").unwrap();
        assert_eq!(compiled.site_map().output_route(d1), SiteRoute::Untestable);
        assert_eq!(compiled.site_map().output_route(d2), SiteRoute::Untestable);
        assert_eq!(compiled.site_map().input_route(d2), SiteRoute::Untestable);
        assert_eq!(compiled.site_map().output_route(c.find("qd").unwrap()), SiteRoute::Untestable);
        assert_eq!(compiled.tape().gate_pos(d1.index()), None);
        assert_eq!(compiled.tape().gate_pos(d2.index()), None);
        assert!(compiled.stats().swept >= 2);
        // The live path is untouched.
        assert_eq!(compiled.site_map().output_route(c.find("o").unwrap()), SiteRoute::Direct);
    }

    #[test]
    fn optimized_tape_stays_topological_and_subset() {
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            let compiled = compile_staged(&c, CompileOptions::all());
            let tape = compiled.tape();
            assert!(tape.num_gates() <= c.num_gates(), "{}", entry.name);
            assert_eq!(
                compiled.stats().gates_removed(),
                c.num_gates() - tape.num_gates(),
                "{}",
                entry.name
            );
            // Every tape gate is an original gate of the same kind, and
            // the tape is topological over its own gates.
            for g in 0..tape.num_gates() {
                let id = NodeId::from_index(tape.gate_out()[g] as usize);
                let node = c.node(id);
                assert_eq!(node.kind(), &NodeKind::Gate(tape.ops()[g]), "{}", entry.name);
                for &f in tape.fanin_of(g) {
                    if let Some(src) = tape.gate_pos(f as usize) {
                        assert!(src < g, "{}: gate {g} reads later gate {src}", entry.name);
                    }
                }
            }
        }
    }

    #[test]
    fn suite_compiles_remove_gates() {
        // The optimization must actually bite somewhere in the suite.
        let mut removed = 0usize;
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            removed += compile_staged(&c, CompileOptions::all()).gates_removed();
        }
        assert!(removed > 0, "no suite circuit had a removable gate");
    }
}
