//! Seeded random circuits for differential fuzzing — test support.
//!
//! [`generate`](crate::generate) builds *realistic* synthetic analogs of
//! the ISCAS-89 benchmarks. This module builds *adversarial* ones: a
//! seeded stream of circuits whose shapes deliberately include the
//! degenerate corners a simulation-engine rewrite is most likely to
//! break — zero-gate netlists whose primary outputs are wired straight
//! to primary inputs or flip-flops, single-gate circuits of every
//! opcode, chains much deeper than any benchmark, and stems with extreme
//! fanout next to gates with extreme fanin — interleaved with general
//! random levelized circuits over all opcodes.
//!
//! It is test support: every crate's differential/fuzz tests call
//! [`fuzz_circuit`] with consecutive seeds to get a deterministic,
//! shape-diverse corpus. Every returned circuit is fully validated by
//! [`CircuitBuilder`] — the corpus contains no *invalid* netlists, only
//! structurally extreme valid ones.
//!
//! [`dirty_circuit`] is the deliberate exception: it emits `.bench`
//! *source text* with known defects seeded in (cycles, floating nets,
//! duplicate drivers…) and records which lint codes it planted, so the
//! `bist-verify` linter's recall is testable rather than anecdotal.
//! Dirty sources never become [`Circuit`] values — the builder refuses
//! them, which is the point.
//!
//! # Example
//!
//! ```
//! use bist_netlist::fuzz::{fuzz_circuit, FuzzShape};
//!
//! let c = fuzz_circuit(0);
//! assert_eq!(FuzzShape::of_seed(0), FuzzShape::ZeroGate);
//! assert_eq!(c.num_gates(), 0); // POs wired straight to PIs/DFFs
//! ```

use crate::generate::GeneratorSpec;
use crate::{Circuit, CircuitBuilder, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape class of one fuzz seed. Seeds cycle through the degenerate
/// classes and then a run of general circuits, so any contiguous seed
/// range covers every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzShape {
    /// No gates at all: primary outputs wired directly to primary
    /// inputs and flip-flop outputs; flip-flops fed straight from PIs.
    ZeroGate,
    /// Exactly one gate (opcode cycles through all eight kinds with the
    /// seed), plus a PI observed directly.
    SingleGate,
    /// A chain of single/double-input gates far deeper than any
    /// benchmark, optionally threaded through a flip-flop.
    DeepChain,
    /// One stem feeding dozens of consumers plus one gate with a very
    /// wide fanin window (`RunArity::Many` territory).
    HighFanout,
    /// A general random levelized sequential circuit over all opcodes
    /// (via [`GeneratorSpec`]) with randomized shape parameters.
    General,
}

impl FuzzShape {
    /// The shape class a given seed produces.
    #[must_use]
    pub fn of_seed(seed: u64) -> FuzzShape {
        match seed % 8 {
            0 => FuzzShape::ZeroGate,
            1 => FuzzShape::SingleGate,
            2 => FuzzShape::DeepChain,
            3 => FuzzShape::HighFanout,
            _ => FuzzShape::General,
        }
    }
}

/// Deterministically builds the fuzz circuit of `seed`. Same seed, same
/// circuit — a corpus is just a seed range.
#[must_use]
pub fn fuzz_circuit(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xf0f2);
    match FuzzShape::of_seed(seed) {
        FuzzShape::ZeroGate => zero_gate(seed, &mut rng),
        FuzzShape::SingleGate => single_gate(seed, &mut rng),
        FuzzShape::DeepChain => deep_chain(seed, &mut rng),
        FuzzShape::HighFanout => high_fanout(seed, &mut rng),
        FuzzShape::General => general(seed, &mut rng),
    }
}

/// POs wired straight to PIs/DFFs; DFFs fed straight from PIs (and from
/// each other, forming gate-free shift paths).
fn zero_gate(seed: u64, rng: &mut StdRng) -> Circuit {
    let mut b = CircuitBuilder::new(format!("fuzz{seed}_zerogate"));
    let inputs = rng.gen_range(1..=4usize);
    let dffs = rng.gen_range(0..=3usize);
    for i in 0..inputs {
        b.add_input(format!("I{i}"));
    }
    for k in 0..dffs {
        // First DFF reads a PI; later ones may chain off earlier DFFs.
        let d = if k > 0 && rng.gen_bool(0.5) {
            format!("Q{}", rng.gen_range(0..k))
        } else {
            format!("I{}", rng.gen_range(0..inputs))
        };
        b.add_dff(format!("Q{k}"), d);
    }
    // Every PI and every DFF is observable; at least one PO is a PI.
    b.add_output("I0");
    for i in 1..inputs {
        if rng.gen_bool(0.7) {
            b.add_output(format!("I{i}"));
        }
    }
    for k in 0..dffs {
        b.add_output(format!("Q{k}"));
    }
    b.finish().expect("zero-gate fuzz circuit is valid")
}

/// One gate; the opcode cycles through all eight kinds with the seed.
fn single_gate(seed: u64, rng: &mut StdRng) -> Circuit {
    let kind = GateKind::ALL[(seed / 8) as usize % GateKind::ALL.len()];
    let arity = match kind.arity() {
        (1, 1) => 1,
        _ => rng.gen_range(2..=4usize),
    };
    let mut b = CircuitBuilder::new(format!("fuzz{seed}_single"));
    for i in 0..arity.max(2) {
        b.add_input(format!("I{i}"));
    }
    b.add_gate("G0", kind, (0..arity).map(|i| format!("I{i}")));
    b.add_output("G0");
    // A PI observed directly next to the gate (PO wired to PI).
    b.add_output("I0");
    b.finish().expect("single-gate fuzz circuit is valid")
}

/// A deep chain of gates, optionally threaded through a flip-flop so the
/// chain also exercises sequential feedback.
fn deep_chain(seed: u64, rng: &mut StdRng) -> Circuit {
    let depth = rng.gen_range(24..=160usize);
    let with_dff = rng.gen_bool(0.5);
    let mut b = CircuitBuilder::new(format!("fuzz{seed}_chain"));
    b.add_input("I0");
    b.add_input("I1");
    if with_dff {
        // The DFF closes a long sequential loop over the whole chain.
        b.add_dff("Q0", format!("G{}", depth - 1));
        b.add_output("Q0");
    }
    let mut prev = "I0".to_string();
    for g in 0..depth {
        let kind = GateKind::ALL[rng.gen_range(0..GateKind::ALL.len())];
        let name = format!("G{g}");
        if kind.arity() == (1, 1) {
            b.add_gate(name.clone(), kind, [prev.clone()]);
        } else {
            let other = if g == 0 && with_dff {
                "Q0".to_string()
            } else if rng.gen_bool(0.3) {
                format!("I{}", rng.gen_range(0..2usize))
            } else {
                prev.clone()
            };
            if other == prev {
                b.add_gate(name.clone(), kind, [prev.clone(), "I1".to_string()]);
            } else {
                b.add_gate(name.clone(), kind, [prev.clone(), other]);
            }
        }
        prev = name;
    }
    b.add_output(prev);
    b.finish().expect("deep-chain fuzz circuit is valid")
}

/// One stem with dozens of consumers (maximal fanout branching) plus one
/// gate with a very wide fanin window.
fn high_fanout(seed: u64, rng: &mut StdRng) -> Circuit {
    let consumers = rng.gen_range(16..=48usize);
    let inputs = rng.gen_range(2..=5usize);
    let mut b = CircuitBuilder::new(format!("fuzz{seed}_fanout"));
    for i in 0..inputs {
        b.add_input(format!("I{i}"));
    }
    // The stem: a gate so its output faults are gate faults too.
    b.add_gate("stem", GateKind::And, ["I0".to_string(), "I1".to_string()]);
    for g in 0..consumers {
        let kind = GateKind::ALL[rng.gen_range(0..GateKind::ALL.len())];
        let name = format!("G{g}");
        if kind.arity() == (1, 1) {
            b.add_gate(name, kind, ["stem".to_string()]);
        } else {
            let other = format!("I{}", rng.gen_range(0..inputs));
            b.add_gate(name, kind, ["stem".to_string(), other]);
        }
    }
    // One wide gate over many distinct consumer outputs: RunArity::Many.
    let wide = rng.gen_range(5..=12usize).min(consumers);
    let wide_kind = if rng.gen_bool(0.5) { GateKind::Nand } else { GateKind::Xor };
    b.add_gate("wide", wide_kind, (0..wide).map(|g| format!("G{g}")));
    b.add_output("wide");
    b.add_output("stem");
    for g in wide..consumers {
        if rng.gen_bool(0.25) {
            b.add_output(format!("G{g}"));
        }
    }
    b.finish().expect("high-fanout fuzz circuit is valid")
}

/// A general random levelized sequential circuit with randomized shape.
fn general(seed: u64, rng: &mut StdRng) -> Circuit {
    GeneratorSpec::new(format!("fuzz{seed}_general"))
        .inputs(rng.gen_range(1..=8usize))
        .outputs(rng.gen_range(1..=6usize))
        .dffs(rng.gen_range(0..=10usize))
        .gates(rng.gen_range(1..=250usize))
        .target_depth(rng.gen_range(2..=12usize))
        .max_fanin(rng.gen_range(2..=6usize))
        .seed(seed)
        .build()
        .expect("general fuzz circuit is valid")
}

/// A deliberately defective `.bench` source, plus the lint codes its
/// defects must trigger.
///
/// Produced by [`dirty_circuit`]. The source is *text*, not a
/// [`Circuit`]: the planted defects (duplicate drivers, combinational
/// cycles, undriven nets…) are exactly the ones
/// [`CircuitBuilder`]/[`parser`](crate::parser::parse_bench) refuse, so
/// they can only exist at the source level — which is also the level the
/// linter's source pass runs at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyCircuit {
    /// Circuit name (`dirty<seed>`).
    pub name: String,
    /// The `.bench` text with defects seeded in.
    pub source: String,
    /// Stable lint codes (`"L001"`…) of every planted defect, sorted and
    /// deduplicated. A linter with full recall reports **at least** these
    /// codes on `source` (a planted defect may legitimately trip extra
    /// codes — a self-driving gate is also a one-gate cycle).
    pub planted: Vec<&'static str>,
}

/// The defect classes [`dirty_circuit`] can seed, with the lint code
/// each one plants.
const DIRTY_CLASSES: [&str; 7] = ["L001", "L002", "L003", "L004", "L005", "L006", "L007"];

/// Deterministically builds a defective `.bench` source for `seed`.
///
/// A small clean circuit from [`GeneratorSpec`] is rendered to text and
/// then vandalized. Seeds cycle through the defect classes: `seed % 9`
/// selects one of the seven error-class defects ([`DIRTY_CLASSES`]), a
/// warnings-only netlist (dangling gate, unused input, always-X cone,
/// duplicate-cone pair), or a compound
/// netlist with several error defects at once — so any contiguous run of
/// 9+ seeds exercises every class, making linter recall testable rather
/// than anecdotal.
#[must_use]
pub fn dirty_circuit(seed: u64) -> DirtyCircuit {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1d7);
    let name = format!("dirty{seed}");
    let base = GeneratorSpec::new(name.clone())
        .inputs(rng.gen_range(2..=4usize))
        .outputs(rng.gen_range(1..=3usize))
        .dffs(rng.gen_range(0..=3usize))
        .gates(rng.gen_range(3..=20usize))
        .target_depth(rng.gen_range(2..=5usize))
        .max_fanin(3)
        .seed(seed ^ 0xbad)
        .build()
        .expect("dirty base circuit is valid");
    let mut lines: Vec<String> = crate::writer::to_bench(&base).lines().map(String::from).collect();
    // Generator names are I*/Q*/G*; planted nets use a Z prefix, so a
    // mutation never collides with the base netlist.
    let pi = |k: usize| base.node(base.inputs()[k % base.num_inputs()]).name().to_string();
    let mut planted: Vec<&'static str> = Vec::new();

    let plant = |lines: &mut Vec<String>, planted: &mut Vec<&'static str>, code: &'static str| {
        match code {
            // Two fresh gates reading each other: a combinational cycle.
            "L001" => {
                lines.push(format!("ZC0 = AND({}, ZC1)", pi(0)));
                lines.push(format!("ZC1 = OR(ZC0, {})", pi(1)));
            }
            // A gate reading a net nothing drives.
            "L002" => lines.push(format!("ZU0 = NAND(ZGHOST, {})", pi(0))),
            // A second driver for an existing non-input signal.
            "L003" => {
                let victim = base
                    .eval_order()
                    .first()
                    .copied()
                    .or_else(|| base.dffs().first().copied())
                    .expect("base has gates");
                let victim = base.node(victim).name();
                lines.push(format!("{victim} = NOR({}, {})", pi(0), pi(1)));
            }
            // A single-input AND (degenerate arity).
            "L004" => lines.push(format!("ZD0 = AND({})", pi(0))),
            // A gate reading its own output.
            "L005" => lines.push(format!("ZS0 = XOR({}, ZS0)", pi(0))),
            // A driver for a declared primary input.
            "L006" => lines.push(format!("{} = OR({}, {})", pi(0), pi(1), pi(1))),
            // An OUTPUT over a signal that is never defined.
            "L007" => lines.push("OUTPUT(ZNOPE)".to_string()),
            // Warning pack: a dangling gate, an unused input, an always-X
            // cone and a duplicate-cone pair. These plant *warnings*, so
            // they only go into otherwise-clean sources (the warning
            // analyses are skipped on broken graphs).
            "L008" => lines.push(format!("ZW0 = AND({}, {})", pi(0), pi(1))),
            "L010" => lines.push("INPUT(ZIDLE)".to_string()),
            "L014" => {
                // A DFF self-loop never leaves X; the NOT rides in the
                // closure with it and the OUTPUT keeps the cone live.
                lines.push("ZX0 = DFF(ZX0)".to_string());
                lines.push("ZXG = NOT(ZX0)".to_string());
                lines.push("OUTPUT(ZXG)".to_string());
            }
            "L015" => {
                lines.push(format!("ZP0 = NOR({}, {})", pi(0), pi(1)));
                lines.push(format!("ZP1 = NOR({}, {})", pi(0), pi(1)));
            }
            _ => unreachable!("unknown dirty class {code}"),
        }
        planted.push(code);
    };

    match seed % 9 {
        k @ 0..=6 => plant(&mut lines, &mut planted, DIRTY_CLASSES[k as usize]),
        7 => {
            plant(&mut lines, &mut planted, "L008");
            plant(&mut lines, &mut planted, "L010");
            plant(&mut lines, &mut planted, "L014");
            plant(&mut lines, &mut planted, "L015");
        }
        _ => {
            // Compound: several distinct error defects in one netlist.
            let mut classes = DIRTY_CLASSES;
            for i in (1..classes.len()).rev() {
                classes.swap(i, rng.gen_range(0..=i));
            }
            let n = rng.gen_range(2..=3usize);
            for code in classes.into_iter().take(n) {
                plant(&mut lines, &mut planted, code);
            }
        }
    }
    planted.sort_unstable();
    planted.dedup();
    let mut source = lines.join("\n");
    source.push('\n');
    DirtyCircuit { name, source, planted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateTape;

    #[test]
    fn deterministic_per_seed() {
        for seed in 0..16 {
            assert_eq!(fuzz_circuit(seed), fuzz_circuit(seed), "seed {seed}");
        }
    }

    #[test]
    fn shape_classes_hold_their_promises() {
        for base in [0u64, 8, 16, 24] {
            let zero = fuzz_circuit(base);
            assert_eq!(zero.num_gates(), 0);
            // At least one PO is wired straight to a PI.
            assert!(zero.outputs().iter().any(|o| zero.inputs().contains(o)));

            let single = fuzz_circuit(base + 1);
            assert_eq!(single.num_gates(), 1);

            let chain = fuzz_circuit(base + 2);
            assert!(chain.depth() >= 24, "depth {}", chain.depth());

            let fanout = fuzz_circuit(base + 3);
            let stem = fanout.find("stem").unwrap();
            assert!(fanout.fanout_table()[stem.index()].len() >= 16);
            let wide = fanout.find("wide").unwrap();
            assert!(fanout.node(wide).fanin().len() >= 5);
        }
    }

    #[test]
    fn single_gate_cycles_all_opcodes() {
        let mut seen = std::collections::HashSet::new();
        for seed in (0..64).map(|k| 8 * k + 1) {
            let c = fuzz_circuit(seed);
            let g = c.eval_order()[0];
            let crate::NodeKind::Gate(kind) = c.node(g).kind() else { unreachable!() };
            seen.insert(*kind);
        }
        assert_eq!(seen.len(), GateKind::ALL.len(), "all opcodes appear");
    }

    #[test]
    fn dirty_circuits_are_deterministic() {
        for seed in 0..18 {
            assert_eq!(dirty_circuit(seed), dirty_circuit(seed), "seed {seed}");
        }
    }

    #[test]
    fn dirty_seeds_cover_every_class() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..18 {
            for code in dirty_circuit(seed).planted {
                seen.insert(code);
            }
        }
        for code in DIRTY_CLASSES {
            assert!(seen.contains(code), "no seed plants {code}");
        }
        for code in ["L008", "L010", "L014", "L015"] {
            assert!(seen.contains(code), "warning pack missing {code}");
        }
    }

    #[test]
    fn dirty_error_sources_fail_strict_parsing() {
        // Every error-class defect is one the strict parser/builder
        // refuses; the warnings-only netlists must parse fine.
        for seed in 0..27 {
            let dirty = dirty_circuit(seed);
            let errors_planted = dirty.planted.iter().any(|c| *c < "L008");
            let parsed = crate::parser::parse_bench(&*dirty.name, &dirty.source);
            if errors_planted {
                assert!(parsed.is_err(), "seed {seed} planted {:?} yet parsed", dirty.planted);
            } else {
                assert!(parsed.is_ok(), "seed {seed}: {:?}", parsed.err());
            }
        }
    }

    #[test]
    fn corpus_builds_and_compiles_everywhere() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..120 {
            let c = fuzz_circuit(seed);
            assert!(c.num_inputs() >= 1);
            assert!(c.num_outputs() >= 1);
            let tape = GateTape::compile(&c);
            assert_eq!(tape.num_gates(), c.num_gates());
            let tiled: usize = tape.tiles().iter().map(|t| (t.end - t.start) as usize).sum();
            assert_eq!(tiled, c.num_gates(), "tiles partition seed {seed}");
            for &g in c.eval_order() {
                let crate::NodeKind::Gate(kind) = c.node(g).kind() else { unreachable!() };
                kinds.insert(*kind);
            }
        }
        assert_eq!(kinds.len(), GateKind::ALL.len(), "corpus covers all opcodes");
    }
}
