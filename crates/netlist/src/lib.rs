//! Gate-level model of synchronous sequential circuits.
//!
//! This crate provides the circuit substrate used by the whole `subseq-bist`
//! workspace, which reproduces the on-chip test generation scheme of
//! Pomeranz & Reddy, *"Built-In Test Sequence Generation for Synchronous
//! Sequential Circuits Based on Loading and Expansion of Test Subsequences"*,
//! DAC 1999.
//!
//! It contains:
//!
//! * [`Circuit`] — an immutable, validated, levelized netlist of primitive
//!   gates ([`GateKind`]), D flip-flops and primary inputs/outputs.
//! * [`CircuitBuilder`] — the only way to construct a [`Circuit`]; performs
//!   full structural validation (undriven nets, combinational loops,
//!   arity checks, duplicate names).
//! * [`parser`] / [`writer`] — ISCAS-89 `.bench` format I/O, so the real
//!   ISCAS-89 benchmark files can be dropped in unmodified.
//! * [`generate`] — a seeded random sequential circuit generator used to
//!   build synthetic analogs of the ISCAS-89 circuits evaluated in the paper.
//! * [`fuzz`] — seeded random circuits for differential fuzzing,
//!   including the degenerate shapes (zero-gate netlists, extreme
//!   chains/fanout) that the benchmark analogs never produce.
//! * [`benchmarks`] — the embedded `s27` circuit (the paper's worked
//!   example) plus the synthetic benchmark suite mirroring Table 3.
//! * [`GateTape`] — the netlist compiled into flat, cache-linear
//!   evaluation-order arrays (CSR fanin indices, byte opcodes,
//!   pre-resolved PI/PO/DFF tables) — the instruction form every
//!   simulation engine executes.
//!
//! # Example
//!
//! ```
//! use bist_netlist::benchmarks;
//!
//! let s27 = benchmarks::s27();
//! assert_eq!(s27.num_inputs(), 4);
//! assert_eq!(s27.num_dffs(), 3);
//! assert_eq!(s27.num_outputs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod compile;
mod error;
mod gate;
mod stats;
mod tape;

pub mod benchmarks;
pub mod fuzz;
pub mod generate;
pub mod parser;
pub mod writer;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, FanoutRef, Node, NodeId, NodeKind};
pub use compile::{
    always_x_closure, compile_staged, compile_staged_with_baseline, duplicate_cone_pairs,
    CompileOptions, CompiledCircuit, PassStats, SiteMap, SiteRoute,
};
pub use error::NetlistError;
pub use gate::GateKind;
pub use stats::CircuitStats;
pub use tape::{GateRun, GateTape, RunArity};
