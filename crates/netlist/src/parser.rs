//! Parser for the ISCAS-89 `.bench` netlist format.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G8 = AND(G14, G6)
//! ```
//!
//! Gate names are case-insensitive; `INV` and `BUFF` are accepted as
//! aliases of `NOT` and `BUF`. Forward references are allowed.
//!
//! Parsing is layered: [`parse_bench_raw`] tokenizes the source into
//! line-numbered [`RawStatement`]s and only rejects *syntactic* junk
//! (unparseable lines, bad signal names, unknown gate kinds), while
//! [`parse_bench`] layers structural validation on top — duplicate
//! definitions and self-driving gates are rejected there with the
//! offending line, and everything else (undriven nets, cycles, arities)
//! by [`CircuitBuilder::finish`]. Static analyzers that must *diagnose*
//! malformed netlists rather than refuse them (the `bist-verify` linter)
//! consume the raw layer directly.
//!
//! # Example
//!
//! ```
//! use bist_netlist::parser::parse_bench;
//!
//! let src = "\
//! INPUT(a)
//! OUTPUT(y)
//! y = NOT(a)
//! ";
//! let c = parse_bench("inv", src)?;
//! assert_eq!(c.num_gates(), 1);
//! # Ok::<(), bist_netlist::NetlistError>(())
//! ```

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};
use std::collections::HashMap;

/// One parsed `.bench` statement, before any structural validation.
///
/// Arities are *not* checked at this layer: an `AND()` with no fanins or
/// a two-input `DFF` parse into their literal shapes so a linter can
/// report them instead of aborting at the first defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawStatement {
    /// `INPUT(sig)` — a primary-input declaration.
    Input(String),
    /// `OUTPUT(sig)` — a primary-output declaration.
    Output(String),
    /// `q = DFF(d)` (any number of arguments, validated later).
    Dff {
        /// The flip-flop output signal.
        q: String,
        /// The D-input arguments as written (exactly one when valid).
        d: Vec<String>,
    },
    /// `out = KIND(args...)` for a combinational gate kind.
    Gate {
        /// The gate output signal.
        out: String,
        /// The gate kind.
        kind: GateKind,
        /// The fanin signals as written (possibly empty or degenerate).
        fanin: Vec<String>,
    },
}

impl RawStatement {
    /// The signal this statement *defines*, if any (`None` for
    /// `OUTPUT(...)`, which only references).
    #[must_use]
    pub fn defined(&self) -> Option<&str> {
        match self {
            RawStatement::Input(name) => Some(name),
            RawStatement::Dff { q, .. } => Some(q),
            RawStatement::Gate { out, .. } => Some(out),
            RawStatement::Output(_) => None,
        }
    }
}

/// A [`RawStatement`] together with its 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawLine {
    /// 1-based line number in the source.
    pub line: usize,
    /// The parsed statement.
    pub stmt: RawStatement,
}

/// Tokenizes `.bench` text into line-numbered raw statements.
///
/// Only *syntactic* problems are errors here: lines that do not match
/// `INPUT(x)` / `OUTPUT(x)` / `name = KIND(args)`, invalid signal names,
/// and unknown gate kinds. Structural defects — duplicate definitions,
/// undriven nets, bad arities, cycles — all parse successfully so that
/// downstream analyses can see and report them.
///
/// # Errors
///
/// [`NetlistError::ParseLine`] / [`NetlistError::UnknownGate`].
pub fn parse_bench_raw(source: &str) -> Result<Vec<RawLine>, NetlistError> {
    let mut out = Vec::new();
    for (lineno0, raw) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(arg) = parse_directive(line, "INPUT") {
            let sig = validate_name(arg, lineno, raw)?;
            out.push(RawLine { line: lineno, stmt: RawStatement::Input(sig.to_string()) });
            continue;
        }
        if let Some(arg) = parse_directive(line, "OUTPUT") {
            let sig = validate_name(arg, lineno, raw)?;
            out.push(RawLine { line: lineno, stmt: RawStatement::Output(sig.to_string()) });
            continue;
        }

        // `lhs = KIND(arg, arg, ...)`
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| NetlistError::ParseLine {
            line: lineno,
            text: raw.trim().to_string(),
            reason: "expected `name = GATE(args)`".to_string(),
        })?;
        let lhs = validate_name(lhs.trim(), lineno, raw)?;
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::ParseLine {
            line: lineno,
            text: raw.trim().to_string(),
            reason: "missing `(`".to_string(),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::ParseLine {
                line: lineno,
                text: raw.trim().to_string(),
                reason: "missing closing `)`".to_string(),
            });
        }
        let kind_str = rhs[..open].trim();
        let args_str = &rhs[open + 1..rhs.len() - 1];
        let args: Vec<String> = args_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        for arg in &args {
            validate_name(arg, lineno, raw)?;
        }

        let stmt = if kind_str.eq_ignore_ascii_case("DFF") {
            RawStatement::Dff { q: lhs.to_string(), d: args }
        } else {
            let kind: GateKind = kind_str.parse().map_err(|_| NetlistError::UnknownGate {
                line: lineno,
                kind: kind_str.to_string(),
            })?;
            RawStatement::Gate { out: lhs.to_string(), kind, fanin: args }
        };
        out.push(RawLine { line: lineno, stmt });
    }
    Ok(out)
}

/// Parses `.bench`-format text into a validated [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseLine`] / [`NetlistError::UnknownGate`] for
/// syntax problems, [`NetlistError::DuplicateDefinition`] /
/// [`NetlistError::SelfDrivingNet`] / [`NetlistError::InputDriven`] for
/// line-attributable structural problems, and any remaining structural
/// error from [`CircuitBuilder::finish`] (undriven nets, loops, arities...).
pub fn parse_bench(name: impl Into<String>, source: &str) -> Result<Circuit, NetlistError> {
    let statements = parse_bench_raw(source)?;
    let mut builder = CircuitBuilder::new(name);
    // Signal name -> line of its first definition, for duplicate reports.
    let mut defined_at: HashMap<&str, usize> = HashMap::new();
    let mut inputs_seen: Vec<&str> = Vec::new();

    for raw in &statements {
        if let Some(sig) = raw.stmt.defined() {
            // A signal declared INPUT must not also be driven: report the
            // conflict specifically, not as a generic duplicate.
            if !matches!(raw.stmt, RawStatement::Input(_)) && inputs_seen.contains(&sig) {
                return Err(NetlistError::InputDriven { name: sig.to_string() });
            }
            if let Some(&first_line) = defined_at.get(sig) {
                return Err(NetlistError::DuplicateDefinition {
                    name: sig.to_string(),
                    line: raw.line,
                    first_line,
                });
            }
            defined_at.insert(sig, raw.line);
        }
        match &raw.stmt {
            RawStatement::Input(sig) => {
                inputs_seen.push(sig);
                builder.add_input(sig.clone());
            }
            RawStatement::Output(sig) => {
                builder.add_output(sig.clone());
            }
            RawStatement::Dff { q, d } => {
                if d.len() != 1 {
                    return Err(NetlistError::BadArity {
                        name: q.clone(),
                        kind: "DFF".to_string(),
                        got: d.len(),
                    });
                }
                builder.add_dff(q.clone(), d[0].clone());
            }
            RawStatement::Gate { out, kind, fanin } => {
                if fanin.is_empty() {
                    return Err(NetlistError::ParseLine {
                        line: raw.line,
                        text: format!("{out} = {kind}()"),
                        reason: "gate with no fanins".to_string(),
                    });
                }
                // A combinational gate reading its own output is the
                // tightest combinational loop; name the line now instead
                // of surfacing a lineless cycle error at finish time.
                if fanin.iter().any(|f| f == out) {
                    return Err(NetlistError::SelfDrivingNet { name: out.clone(), line: raw.line });
                }
                builder.add_gate(out.clone(), *kind, fanin.clone());
            }
        }
    }

    builder.finish()
}

/// Strips a trailing `#` comment.
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Matches `KEYWORD(arg)` case-insensitively and returns `arg`.
fn parse_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

/// Signal names: nonempty, no whitespace/parens/commas/`=`.
fn validate_name<'a>(name: &'a str, line: usize, raw: &str) -> Result<&'a str, NetlistError> {
    let bad = name.is_empty()
        || name.chars().any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '#'));
    if bad {
        return Err(NetlistError::ParseLine {
            line,
            text: raw.trim().to_string(),
            reason: format!("invalid signal name `{name}`"),
        });
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
# a tiny circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, b)   # feedback-free
y = XOR(q, b)
";

    #[test]
    fn parses_tiny() {
        let c = parse_bench("tiny", TINY).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn raw_layer_reports_lines_and_shapes() {
        let raw = parse_bench_raw(TINY).unwrap();
        assert_eq!(raw.len(), 6);
        assert_eq!(raw[0], RawLine { line: 2, stmt: RawStatement::Input("a".into()) });
        assert_eq!(raw[3].line, 5);
        assert_eq!(raw[3].stmt, RawStatement::Dff { q: "q".into(), d: vec!["d".into()] });
        assert_eq!(raw[4].stmt.defined(), Some("d"));
        assert_eq!(raw[2].stmt.defined(), None, "OUTPUT defines nothing");
    }

    #[test]
    fn raw_layer_keeps_structural_defects() {
        // Duplicate definitions, degenerate arities and self-driving
        // gates all tokenize: the raw layer is for linters.
        let src = "\
INPUT(a)
OUTPUT(y)
y = NOT(a)
y = AND(a, y)
z = DFF(a, y)
w = XOR(w, a)
";
        let raw = parse_bench_raw(src).unwrap();
        assert_eq!(raw.len(), 6);
        assert!(matches!(&raw[3].stmt, RawStatement::Gate { out, .. } if out == "y"));
        assert!(matches!(&raw[4].stmt, RawStatement::Dff { d, .. } if d.len() == 2));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n\n# nothing\nINPUT(a)\nOUTPUT(y)\ny = BUF(a)\n# trailing\n";
        let c = parse_bench("c", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\noutput(y)\ny = not(a)\n";
        let c = parse_bench("c", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn missing_equals_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny NOT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(matches!(err, NetlistError::ParseLine { line: 3, .. }), "{err}");
    }

    #[test]
    fn missing_paren_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT a\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn unterminated_paren_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn unknown_gate_reported_with_line() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::UnknownGate { line: 3, kind: "FROB".into() });
    }

    #[test]
    fn dff_with_two_fanins_rejected() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
    }

    #[test]
    fn duplicate_definition_rejected_with_both_lines() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(
            err,
            NetlistError::DuplicateDefinition { name: "y".into(), line: 5, first_line: 4 }
        );
        assert!(err.to_string().contains("line 5"), "{err}");
        // Redefining an input (either order) is also a duplicate.
        let src = "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDefinition { line: 2, first_line: 1, .. }));
    }

    #[test]
    fn self_driving_gate_rejected_with_line() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::SelfDrivingNet { name: "y".into(), line: 3 });
        // Sequential self-feedback through a DFF stays legal.
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n";
        assert!(parse_bench("c", src).is_ok());
    }

    #[test]
    fn driven_input_rejected() {
        let src = "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::InputDriven { name: "a".into() });
        // The conflict is detected in either declaration order.
        let src = "a = NOT(b)\nINPUT(b)\nINPUT(a)\nOUTPUT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::InputDriven { .. } | NetlistError::DuplicateDefinition { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn undriven_reference_rejected() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::UndrivenNet { name: "ghost".into() });
    }

    #[test]
    fn bad_signal_name_rejected() {
        let src = "INPUT(a b)\nOUTPUT(y)\ny = NOT(a)\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
        // Bad names inside gate argument lists are caught at the raw layer.
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, b=c)\n";
        assert!(matches!(parse_bench_raw(src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn empty_source_has_no_inputs() {
        assert_eq!(parse_bench("c", "").unwrap_err(), NetlistError::NoInputs);
    }
}
