//! Parser for the ISCAS-89 `.bench` netlist format.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G8 = AND(G14, G6)
//! ```
//!
//! Gate names are case-insensitive; `INV` and `BUFF` are accepted as
//! aliases of `NOT` and `BUF`. Forward references are allowed.
//!
//! # Example
//!
//! ```
//! use bist_netlist::parser::parse_bench;
//!
//! let src = "\
//! INPUT(a)
//! OUTPUT(y)
//! y = NOT(a)
//! ";
//! let c = parse_bench("inv", src)?;
//! assert_eq!(c.num_gates(), 1);
//! # Ok::<(), bist_netlist::NetlistError>(())
//! ```

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};

/// Parses `.bench`-format text into a validated [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseLine`] / [`NetlistError::UnknownGate`] for
/// syntax problems, and any structural error from
/// [`CircuitBuilder::finish`] (undriven nets, loops, duplicate drivers...).
pub fn parse_bench(name: impl Into<String>, source: &str) -> Result<Circuit, NetlistError> {
    let mut builder = CircuitBuilder::new(name);
    let mut inputs_seen: Vec<String> = Vec::new();

    for (lineno0, raw) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(arg) = parse_directive(line, "INPUT") {
            let sig = validate_name(arg, lineno, raw)?;
            inputs_seen.push(sig.to_string());
            builder.add_input(sig);
            continue;
        }
        if let Some(arg) = parse_directive(line, "OUTPUT") {
            let sig = validate_name(arg, lineno, raw)?;
            builder.add_output(sig);
            continue;
        }

        // `lhs = KIND(arg, arg, ...)`
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| NetlistError::ParseLine {
            line: lineno,
            text: raw.trim().to_string(),
            reason: "expected `name = GATE(args)`".to_string(),
        })?;
        let lhs = validate_name(lhs.trim(), lineno, raw)?;
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::ParseLine {
            line: lineno,
            text: raw.trim().to_string(),
            reason: "missing `(`".to_string(),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::ParseLine {
                line: lineno,
                text: raw.trim().to_string(),
                reason: "missing closing `)`".to_string(),
            });
        }
        let kind_str = rhs[..open].trim();
        let args_str = &rhs[open + 1..rhs.len() - 1];
        let args: Vec<&str> =
            args_str.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        if args.is_empty() {
            return Err(NetlistError::ParseLine {
                line: lineno,
                text: raw.trim().to_string(),
                reason: "gate with no fanins".to_string(),
            });
        }

        if kind_str.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(NetlistError::BadArity {
                    name: lhs.to_string(),
                    kind: "DFF".to_string(),
                    got: args.len(),
                });
            }
            builder.add_dff(lhs, args[0]);
        } else {
            let kind: GateKind = kind_str.parse().map_err(|_| NetlistError::UnknownGate {
                line: lineno,
                kind: kind_str.to_string(),
            })?;
            builder.add_gate(lhs, kind, args);
        }

        // Guard: a signal declared INPUT must not also be driven.
        if inputs_seen.iter().any(|i| i == lhs) {
            return Err(NetlistError::InputDriven { name: lhs.to_string() });
        }
    }

    builder.finish()
}

/// Strips a trailing `#` comment.
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Matches `KEYWORD(arg)` case-insensitively and returns `arg`.
fn parse_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

/// Signal names: nonempty, no whitespace/parens/commas/`=`.
fn validate_name<'a>(name: &'a str, line: usize, raw: &str) -> Result<&'a str, NetlistError> {
    let bad = name.is_empty()
        || name.chars().any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '#'));
    if bad {
        return Err(NetlistError::ParseLine {
            line,
            text: raw.trim().to_string(),
            reason: format!("invalid signal name `{name}`"),
        });
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
# a tiny circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, b)   # feedback-free
y = XOR(q, b)
";

    #[test]
    fn parses_tiny() {
        let c = parse_bench("tiny", TINY).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n\n# nothing\nINPUT(a)\nOUTPUT(y)\ny = BUF(a)\n# trailing\n";
        let c = parse_bench("c", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\noutput(y)\ny = not(a)\n";
        let c = parse_bench("c", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn missing_equals_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny NOT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(matches!(err, NetlistError::ParseLine { line: 3, .. }), "{err}");
    }

    #[test]
    fn missing_paren_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT a\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn unterminated_paren_is_parse_error() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn unknown_gate_reported_with_line() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::UnknownGate { line: 3, kind: "FROB".into() });
    }

    #[test]
    fn dff_with_two_fanins_rejected() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
    }

    #[test]
    fn driven_input_rejected() {
        let src = "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n";
        let err = parse_bench("c", src).unwrap_err();
        // Reported either as InputDriven (same line) or DuplicateDriver.
        assert!(
            matches!(err, NetlistError::InputDriven { .. } | NetlistError::DuplicateDriver { .. }),
            "{err}"
        );
    }

    #[test]
    fn undriven_reference_rejected() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("c", src).unwrap_err();
        assert_eq!(err, NetlistError::UndrivenNet { name: "ghost".into() });
    }

    #[test]
    fn bad_signal_name_rejected() {
        let src = "INPUT(a b)\nOUTPUT(y)\ny = NOT(a)\n";
        assert!(matches!(parse_bench("c", src).unwrap_err(), NetlistError::ParseLine { .. }));
    }

    #[test]
    fn empty_source_has_no_inputs() {
        assert_eq!(parse_bench("c", "").unwrap_err(), NetlistError::NoInputs);
    }
}
