use crate::circuit::{Circuit, Node, NodeId, NodeKind};
use crate::{GateKind, NetlistError};
use std::collections::HashMap;

/// Pending driver description used during building.
#[derive(Debug, Clone)]
enum PendingKind {
    Input,
    Dff { d: String },
    Gate { kind: GateKind, fanin: Vec<String> },
}

/// Incremental constructor for [`Circuit`].
///
/// Signals are referred to by name while building; forward references are
/// allowed (a gate may use a signal that is defined later). [`finish`]
/// resolves names, validates the structure and produces an immutable,
/// levelized [`Circuit`].
///
/// # Example
///
/// ```
/// use bist_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("toggle");
/// b.add_input("en");
/// b.add_dff("q", "d");
/// b.add_gate("d", GateKind::Xor, ["en", "q"]);
/// b.add_output("q");
/// let c = b.finish()?;
/// assert_eq!(c.num_dffs(), 1);
/// # Ok::<(), bist_netlist::NetlistError>(())
/// ```
///
/// [`finish`]: CircuitBuilder::finish
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    /// Definition order of drivers (signal name -> pending kind).
    defs: Vec<(String, PendingKind)>,
    /// Names already defined, mapping to their index in `defs`.
    defined: HashMap<String, usize>,
    outputs: Vec<String>,
    /// First duplicate-driver error, reported at finish time.
    duplicate: Option<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            defs: Vec::new(),
            defined: HashMap::new(),
            outputs: Vec::new(),
            duplicate: None,
        }
    }

    fn define(&mut self, name: String, kind: PendingKind) {
        if self.defined.contains_key(&name) {
            if self.duplicate.is_none() {
                self.duplicate = Some(name);
            }
            return;
        }
        self.defined.insert(name.clone(), self.defs.len());
        self.defs.push((name, kind));
    }

    /// Declares a primary input signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> &mut Self {
        self.define(name.into(), PendingKind::Input);
        self
    }

    /// Declares a D flip-flop with output `q` and D input `d`.
    pub fn add_dff(&mut self, q: impl Into<String>, d: impl Into<String>) -> &mut Self {
        let d = d.into();
        self.define(q.into(), PendingKind::Dff { d });
        self
    }

    /// Declares a combinational gate driving `out`.
    pub fn add_gate<I, S>(&mut self, out: impl Into<String>, kind: GateKind, fanin: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let fanin: Vec<String> = fanin.into_iter().map(Into::into).collect();
        self.define(out.into(), PendingKind::Gate { kind, fanin });
        self
    }

    /// Marks an already- or later-defined signal as a primary output.
    pub fn add_output(&mut self, name: impl Into<String>) -> &mut Self {
        self.outputs.push(name.into());
        self
    }

    /// Number of signals defined so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` if no signals have been defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Returns `true` if `name` already has a driver.
    #[must_use]
    pub fn is_defined(&self, name: &str) -> bool {
        self.defined.contains_key(name)
    }

    /// Validates the accumulated definitions and produces a [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if any signal has zero or multiple
    /// drivers, a gate arity is invalid, the combinational logic is cyclic,
    /// or the circuit has no inputs/outputs.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        if let Some(name) = self.duplicate {
            return Err(NetlistError::DuplicateDriver { name });
        }

        // Partition into inputs, DFFs, gates — nodes are laid out in that
        // order so simulators can index state and input arrays densely.
        let mut input_names = Vec::new();
        let mut dff_names = Vec::new();
        let mut gate_names = Vec::new();
        for (name, kind) in &self.defs {
            match kind {
                PendingKind::Input => input_names.push(name.clone()),
                PendingKind::Dff { .. } => dff_names.push(name.clone()),
                PendingKind::Gate { .. } => gate_names.push(name.clone()),
            }
        }
        if input_names.is_empty() {
            return Err(NetlistError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }

        // Assign dense ids: inputs, then DFFs, then gates (definition order;
        // the topological order is computed separately below).
        let mut id_of: HashMap<&str, NodeId> = HashMap::new();
        let ordered: Vec<&String> =
            input_names.iter().chain(dff_names.iter()).chain(gate_names.iter()).collect();
        for (i, name) in ordered.iter().enumerate() {
            id_of.insert(name.as_str(), NodeId::from_index(i));
        }

        let resolve = |name: &str| -> Result<NodeId, NetlistError> {
            id_of
                .get(name)
                .copied()
                .ok_or_else(|| NetlistError::UndrivenNet { name: name.to_string() })
        };

        // Build node table.
        let mut nodes: Vec<Node> = Vec::with_capacity(ordered.len());
        for name in &ordered {
            let def_idx = self.defined[*name];
            let (_, kind) = &self.defs[def_idx];
            let node = match kind {
                PendingKind::Input => {
                    Node { name: (*name).clone(), kind: NodeKind::Input, fanin: Vec::new() }
                }
                PendingKind::Dff { d } => {
                    Node { name: (*name).clone(), kind: NodeKind::Dff, fanin: vec![resolve(d)?] }
                }
                PendingKind::Gate { kind, fanin } => {
                    if !kind.accepts_arity(fanin.len()) {
                        return Err(NetlistError::BadArity {
                            name: (*name).clone(),
                            kind: kind.to_string(),
                            got: fanin.len(),
                        });
                    }
                    let fanin = fanin.iter().map(|f| resolve(f)).collect::<Result<Vec<_>, _>>()?;
                    Node { name: (*name).clone(), kind: NodeKind::Gate(*kind), fanin }
                }
            };
            nodes.push(node);
        }

        let num_inputs = input_names.len();
        let num_dffs = dff_names.len();
        let inputs: Vec<NodeId> = (0..num_inputs).map(NodeId::from_index).collect();
        let dffs: Vec<NodeId> =
            (num_inputs..num_inputs + num_dffs).map(NodeId::from_index).collect();

        let outputs = self
            .outputs
            .iter()
            .map(|name| {
                id_of
                    .get(name.as_str())
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownOutput { name: name.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?;

        // Kahn topological sort over gate nodes. Sources (inputs, DFF
        // outputs) are considered already available.
        let n = nodes.len();
        let mut remaining_fanin = vec![0usize; n];
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            if !node.kind.is_gate() {
                continue;
            }
            for &src in &node.fanin {
                if nodes[src.index()].kind.is_gate() {
                    remaining_fanin[i] += 1;
                    consumers[src.index()].push(NodeId::from_index(i));
                }
            }
        }
        let mut ready: Vec<NodeId> = (0..n)
            .filter(|&i| nodes[i].kind.is_gate() && remaining_fanin[i] == 0)
            .map(NodeId::from_index)
            .collect();
        let mut eval_order = Vec::with_capacity(n - num_inputs - num_dffs);
        while let Some(g) = ready.pop() {
            eval_order.push(g);
            for &c in &consumers[g.index()] {
                remaining_fanin[c.index()] -= 1;
                if remaining_fanin[c.index()] == 0 {
                    ready.push(c);
                }
            }
        }
        let num_gates = n - num_inputs - num_dffs;
        if eval_order.len() != num_gates {
            // Some gate never became ready: it participates in a cycle.
            let stuck = (0..n)
                .find(|&i| nodes[i].kind.is_gate() && remaining_fanin[i] > 0)
                .expect("cycle implies a stuck gate");
            return Err(NetlistError::CombinationalLoop { name: nodes[stuck].name.clone() });
        }

        // Levelization (longest path from a source).
        let mut levels = vec![0u32; n];
        for &g in &eval_order {
            let lvl =
                nodes[g.index()].fanin.iter().map(|&s| levels[s.index()]).max().unwrap_or(0) + 1;
            levels[g.index()] = lvl;
        }

        Ok(Circuit { name: self.name, nodes, inputs, outputs, dffs, eval_order, levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> CircuitBuilder {
        let mut b = CircuitBuilder::new("toggle");
        b.add_input("en");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Xor, ["en", "q"]);
        b.add_output("q");
        b
    }

    #[test]
    fn builds_valid_circuit() {
        let c = toggle().finish().unwrap();
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn forward_references_allowed() {
        // Gate defined before the input it uses.
        let mut b = CircuitBuilder::new("fwd");
        b.add_gate("y", GateKind::Not, ["x"]);
        b.add_input("x");
        b.add_output("y");
        let c = b.finish().unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn duplicate_driver_rejected() {
        let mut b = toggle();
        b.add_gate("d", GateKind::And, ["en", "q"]);
        let err = b.finish().unwrap_err();
        assert_eq!(err, NetlistError::DuplicateDriver { name: "d".into() });
    }

    #[test]
    fn undriven_net_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_input("a");
        b.add_gate("y", GateKind::Not, ["ghost"]);
        b.add_output("y");
        let err = b.finish().unwrap_err();
        assert_eq!(err, NetlistError::UndrivenNet { name: "ghost".into() });
    }

    #[test]
    fn combinational_loop_rejected() {
        let mut b = CircuitBuilder::new("loopy");
        b.add_input("a");
        b.add_gate("x", GateKind::And, ["a", "y"]);
        b.add_gate("y", GateKind::Or, ["x", "a"]);
        b.add_output("y");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn loop_through_dff_is_fine() {
        // q -> d -> q is sequential feedback, not a combinational loop.
        let c = toggle().finish().unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("y", GateKind::Not, ["a", "b"]);
        b.add_output("y");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
    }

    #[test]
    fn one_input_and_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_input("a");
        b.add_gate("y", GateKind::And, ["a"]);
        b.add_output("y");
        assert!(matches!(b.finish().unwrap_err(), NetlistError::BadArity { got: 1, .. }));
    }

    #[test]
    fn no_inputs_rejected() {
        let mut b = CircuitBuilder::new("empty");
        b.add_dff("q", "q2");
        b.add_dff("q2", "q");
        b.add_output("q");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoInputs);
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = CircuitBuilder::new("empty");
        b.add_input("a");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn unknown_output_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_input("a");
        b.add_gate("y", GateKind::Not, ["a"]);
        b.add_output("zz");
        assert_eq!(b.finish().unwrap_err(), NetlistError::UnknownOutput { name: "zz".into() });
    }

    #[test]
    fn output_can_be_an_input() {
        let mut b = CircuitBuilder::new("pass");
        b.add_input("a");
        b.add_gate("y", GateKind::Buf, ["a"]);
        b.add_output("a");
        b.add_output("y");
        let c = b.finish().unwrap();
        assert_eq!(c.num_outputs(), 2);
    }

    #[test]
    fn dff_chain_levels() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a");
        b.add_dff("q1", "g1");
        b.add_dff("q2", "g2");
        b.add_gate("g1", GateKind::Buf, ["a"]);
        b.add_gate("g2", GateKind::Buf, ["q1"]);
        b.add_output("q2");
        let c = b.finish().unwrap();
        // Every gate is level 1: DFF outputs are sources.
        for &g in c.eval_order() {
            assert_eq!(c.level(g), 1);
        }
    }
}
