//! The compiled gate tape: a flat, cache-linear instruction form of a
//! [`Circuit`].
//!
//! The simulation engines' inner loop runs per gate, per vector, per
//! fault chunk — walking the [`Circuit`] node graph there means
//! dereferencing a heap-scattered [`Node`](crate::Node) (with its
//! `String` name and per-node fanin `Vec`) for every gate evaluation.
//! [`GateTape::compile`] flattens the netlist once into four contiguous
//! arrays:
//!
//! * `ops` — one byte-sized [`GateKind`] opcode per gate, in tape order;
//! * `gate_out` — the value-table slot (node index) each gate writes;
//! * `fanin_start`/`fanin` — CSR-layout fanin node indices: gate `g`
//!   reads `fanin[fanin_start[g]..fanin_start[g + 1]]`;
//!
//! plus pre-resolved `u32` index tables for the primary inputs, primary
//! outputs, flip-flop outputs and flip-flop D-sources. A simulator walks
//! the tape with zero pointer chasing: the per-gate metadata is ~13
//! contiguous bytes and names and `Vec` headers never enter the cache.
//!
//! **Tape order.** The tape is free to pick *any* topological order of
//! the gates — every such order computes identical values, because each
//! gate is evaluated exactly once from already-final fanins. `compile`
//! exploits that freedom: gates are levelized (level = longest distance
//! from a primary input or flip-flop) and, within each level, sorted by
//! opcode and arity class. Consecutive same-shaped gates form [`GateRun`]s
//! ([`GateTape::runs`]), so an engine dispatches on the opcode **once per
//! run** and then evaluates the whole run in a branch-free loop — instead
//! of taking an 8-way indirect branch per gate, which mispredicts heavily
//! on mixed-kind circuits.
//!
//! A tape is immutable and only meaningful for the circuit that produced
//! it; node indices on the tape are exactly [`NodeId::index`] values of
//! that circuit, so fault sites and value tables keyed by `NodeId` work
//! unchanged. [`GateTape::gate_pos`] maps a node index back to its tape
//! position, which is how fault injectors translate per-node forces into
//! per-tape-position patch points.

use crate::{Circuit, GateKind, NodeKind};

/// One gate awaiting tape layout: `(driven node index, opcode, fanin node
/// indices)`. The staged compiler hands [`assemble`] gates whose fanin
/// lists have already been rewritten by its passes.
pub(crate) type TapeGate = (u32, GateKind, Vec<u32>);

/// The raw material of a tape: the circuit-shape tables plus an explicit
/// gate list in topological order. [`GateTape::compile`] builds one
/// straight from a [`Circuit`]; the staged compiler
/// ([`compile_staged`](crate::compile_staged)) builds one from the
/// survivors of its optimization passes, with substituted fanins and a
/// rewritten D-source table.
pub(crate) struct TapeSpec {
    pub num_nodes: usize,
    pub inputs: Vec<u32>,
    pub outputs: Vec<u32>,
    pub dffs: Vec<u32>,
    pub dff_src: Vec<u32>,
    /// Gates in topological order: every fanin of `gates[k]` is a PI, a
    /// DFF output, an earlier gate in the list, or an off-tape node whose
    /// value slot is never written (the staged compiler's folded gates —
    /// their slots read as permanent X).
    pub gates: Vec<TapeGate>,
}

/// Levelize-sort-emit back end shared by [`GateTape::compile`] and the
/// staged compiler: lays out the given gate list in (level, opcode,
/// arity-class) order and records run/tile boundaries. For the identity
/// gate list this reproduces `compile`'s output byte for byte.
pub(crate) fn assemble(spec: TapeSpec) -> GateTape {
    // Longest distance from a source (PI/DFF/off-tape node = 0). The gate
    // list is topological, so one forward pass settles every gate.
    let mut level = vec![0u32; spec.num_nodes];
    for (out, _, fanins) in &spec.gates {
        level[*out as usize] = 1 + fanins.iter().map(|&f| level[f as usize]).max().unwrap_or(0);
    }
    let arity_class = |n: usize| -> u8 {
        match n {
            1 => 0,
            2 => 1,
            _ => 2,
        }
    };
    let mut order: Vec<usize> = (0..spec.gates.len()).collect();
    // Stable sort: equal keys keep the given topological order, so the
    // tape is deterministic for a given spec.
    order.sort_by_key(|&k| {
        let (out, kind, fanins) = &spec.gates[k];
        (level[*out as usize], *kind as u8, arity_class(fanins.len()))
    });

    let gates = order.len();
    let mut ops = Vec::with_capacity(gates);
    let mut gate_out = Vec::with_capacity(gates);
    let mut fanin_start = Vec::with_capacity(gates + 1);
    let mut fanin = Vec::new();
    let mut runs: Vec<GateRun> = Vec::new();
    let mut pos_of_node = vec![u32::MAX; spec.num_nodes];
    fanin_start.push(0u32);
    for (pos, &k) in order.iter().enumerate() {
        let (out, kind, gate_fanin) = &spec.gates[k];
        let arity = match gate_fanin.len() {
            1 => RunArity::One,
            2 => RunArity::Two,
            _ => RunArity::Many,
        };
        let pos = u32::try_from(pos).expect("gate count exceeds u32");
        match runs.last_mut() {
            Some(run) if run.kind == *kind && run.arity == arity => run.end = pos + 1,
            _ => runs.push(GateRun { kind: *kind, arity, start: pos, end: pos + 1 }),
        }
        pos_of_node[*out as usize] = pos;
        ops.push(*kind);
        gate_out.push(*out);
        fanin.extend_from_slice(gate_fanin);
        fanin_start.push(u32::try_from(fanin.len()).expect("fanin count exceeds u32"));
    }
    // Split each run into cache-sized tiles. Tiles never cross run
    // boundaries, so every tile is still homogeneous in kind/arity
    // and an engine dispatches once per tile.
    let mut tiles = Vec::with_capacity(runs.len());
    for run in &runs {
        let mut start = run.start;
        while start < run.end {
            let end = run.end.min(start + GateTape::TILE_GATES as u32);
            tiles.push(GateRun { kind: run.kind, arity: run.arity, start, end });
            start = end;
        }
    }
    GateTape {
        num_nodes: spec.num_nodes,
        inputs: spec.inputs,
        outputs: spec.outputs,
        dffs: spec.dffs,
        dff_src: spec.dff_src,
        ops,
        gate_out,
        fanin_start,
        fanin,
        runs,
        tiles,
        pos_of_node,
    }
}

/// The fanin-count class of a [`GateRun`]: runs are homogeneous in arity
/// so engines can pick a fixed-stride loop per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunArity {
    /// Every gate in the run has exactly one fanin (BUF/NOT).
    One,
    /// Every gate in the run has exactly two fanins — the overwhelming
    /// majority of `.bench` gates.
    Two,
    /// Gates with three or more fanins; engines fall back to a
    /// per-gate fold over the CSR window.
    Many,
}

/// A maximal range of consecutive tape positions holding gates of the
/// same [`GateKind`] and [`RunArity`] — the unit of engine dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateRun {
    /// The opcode shared by every gate in the run.
    pub kind: GateKind,
    /// The fanin-count class shared by every gate in the run.
    pub arity: RunArity,
    /// First tape position of the run (inclusive).
    pub start: u32,
    /// One past the last tape position of the run.
    pub end: u32,
}

/// A [`Circuit`] compiled into flat tape-order arrays.
///
/// # Example
///
/// ```
/// use bist_netlist::{benchmarks, GateTape};
///
/// let c = benchmarks::s27();
/// let tape = GateTape::compile(&c);
/// assert_eq!(tape.num_gates(), c.num_gates());
/// // Gate g reads its fanins from one contiguous CSR window, and the
/// // node it writes maps back to its tape position:
/// let out = tape.gate_out()[0] as usize;
/// assert_eq!(tape.gate_pos(out), Some(0));
/// assert!(!tape.fanin_of(0).is_empty());
/// // Tiles refine the runs into cache-sized blocks:
/// assert!(tape.tiles().len() >= tape.runs().len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateTape {
    num_nodes: usize,
    /// Primary-input node indices, in declaration order.
    inputs: Vec<u32>,
    /// Primary-output node indices, in declaration order.
    outputs: Vec<u32>,
    /// Flip-flop output node indices, in declaration order.
    dffs: Vec<u32>,
    /// D-source node index of each flip-flop, aligned with `dffs`.
    dff_src: Vec<u32>,
    /// One opcode per gate, in tape order. `GateKind` is a fieldless
    /// enum, so this is a plain byte array.
    ops: Vec<GateKind>,
    /// The node index each gate writes, aligned with `ops`.
    gate_out: Vec<u32>,
    /// CSR offsets into `fanin`: gate `g` reads
    /// `fanin[fanin_start[g]..fanin_start[g + 1]]`. Length `gates + 1`.
    fanin_start: Vec<u32>,
    /// All gate fanin node indices, concatenated in tape order.
    fanin: Vec<u32>,
    /// Maximal same-kind/same-arity ranges of the tape, in order.
    runs: Vec<GateRun>,
    /// The runs re-split into blocks of at most
    /// [`TILE_GATES`](Self::TILE_GATES) positions — the sweep-blocking
    /// unit of the bit-plane engines, precomputed here so every engine
    /// pass walks a ready-made schedule.
    tiles: Vec<GateRun>,
    /// Tape position of each node's driving gate; `u32::MAX` for
    /// non-gate nodes (PIs and flip-flops).
    pos_of_node: Vec<u32>,
}

impl GateTape {
    /// Maximum gates per sweep tile ([`tiles`](Self::tiles)).
    ///
    /// Sized for the L1 data cache: a tile of 1024 two-input gates
    /// touches at most ~3·1024 distinct value slots per bit plane; at
    /// 8 bytes per slot across the ones and zeros rows that is ≈48 KiB
    /// of plane data — so one tile's fanin window stays cache-resident
    /// while a blocked engine revisits the tile once per plane of a
    /// wide word.
    pub const TILE_GATES: usize = 1024;
    /// Compiles `circuit` into its flat tape form: levelize, sort each
    /// level by opcode and arity class, lay the gates out contiguously
    /// and record the [`GateRun`] boundaries. `O(nodes log nodes)` —
    /// vanishingly cheap next to a single simulation pass; callers that
    /// simulate repeatedly should still compile once and share the tape.
    #[must_use]
    pub fn compile(circuit: &Circuit) -> Self {
        let as_u32 = |ids: &[crate::NodeId]| ids.iter().map(|id| id.0).collect::<Vec<u32>>();
        assemble(TapeSpec {
            num_nodes: circuit.num_nodes(),
            inputs: as_u32(circuit.inputs()),
            outputs: as_u32(circuit.outputs()),
            dffs: as_u32(circuit.dffs()),
            dff_src: circuit.dffs().iter().map(|&d| circuit.node(d).fanin()[0].0).collect(),
            gates: circuit
                .eval_order()
                .iter()
                .map(|&g| {
                    let node = circuit.node(g);
                    let NodeKind::Gate(kind) = node.kind() else {
                        unreachable!("eval_order contains only gates")
                    };
                    (g.0, *kind, node.fanin().iter().map(|f| f.0).collect())
                })
                .collect(),
        })
    }

    /// Total number of nodes (inputs + DFFs + gates) — the value-table
    /// size a simulator must allocate.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops.
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.ops.len()
    }

    /// Primary-input node indices, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary-output node indices, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Flip-flop output node indices, in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[u32] {
        &self.dffs
    }

    /// D-source node index of each flip-flop, aligned with
    /// [`dffs`](Self::dffs).
    #[must_use]
    pub fn dff_src(&self) -> &[u32] {
        &self.dff_src
    }

    /// Gate opcodes in evaluation order.
    #[must_use]
    pub fn ops(&self) -> &[GateKind] {
        &self.ops
    }

    /// The node index each gate writes, aligned with [`ops`](Self::ops).
    #[must_use]
    pub fn gate_out(&self) -> &[u32] {
        &self.gate_out
    }

    /// CSR offsets into [`fanin`](Self::fanin); length
    /// [`num_gates`](Self::num_gates)` + 1`.
    #[must_use]
    pub fn fanin_start(&self) -> &[u32] {
        &self.fanin_start
    }

    /// All gate fanin node indices, concatenated in evaluation order.
    #[must_use]
    pub fn fanin(&self) -> &[u32] {
        &self.fanin
    }

    /// The fanin window of gate `g` (tape position, not node index).
    ///
    /// # Panics
    ///
    /// Panics if `g >= num_gates()`.
    #[inline]
    #[must_use]
    pub fn fanin_of(&self, g: usize) -> &[u32] {
        &self.fanin[self.fanin_start[g] as usize..self.fanin_start[g + 1] as usize]
    }

    /// The maximal same-kind/same-arity runs of the tape, in tape order.
    /// Together they partition `0..num_gates()`.
    #[must_use]
    pub fn runs(&self) -> &[GateRun] {
        &self.runs
    }

    /// The runs re-split into blocks of at most
    /// [`TILE_GATES`](Self::TILE_GATES) positions, in tape order — the
    /// precomputed schedule of the blocked bit-plane sweep. Like the
    /// runs, the tiles partition `0..num_gates()` and each tile is
    /// homogeneous in kind and arity (it lies inside exactly one run).
    #[must_use]
    pub fn tiles(&self) -> &[GateRun] {
        &self.tiles
    }

    /// The tape position of the gate driving `node`, or `None` if `node`
    /// is a primary input or flip-flop output (or out of range).
    #[inline]
    #[must_use]
    pub fn gate_pos(&self, node: usize) -> Option<usize> {
        match self.pos_of_node.get(node) {
            Some(&pos) if pos != u32::MAX => Some(pos as usize),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn tape_mirrors_the_node_graph() {
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            let tape = GateTape::compile(&c);
            assert_eq!(tape.num_nodes(), c.num_nodes());
            assert_eq!(tape.num_inputs(), c.num_inputs());
            assert_eq!(tape.num_outputs(), c.num_outputs());
            assert_eq!(tape.num_dffs(), c.num_dffs());
            assert_eq!(tape.num_gates(), c.num_gates());
            // Every gate appears exactly once on the tape, with its
            // circuit opcode and fanin list (tape order is free, so
            // positions need not match `eval_order`).
            let mut seen = vec![false; c.num_nodes()];
            for g in 0..tape.num_gates() {
                let id = crate::NodeId::from_index(tape.gate_out()[g] as usize);
                let node = c.node(id);
                assert!(!seen[id.index()], "{} drives two tape slots", entry.name);
                seen[id.index()] = true;
                assert_eq!(tape.gate_pos(id.index()), Some(g));
                assert_eq!(&NodeKind::Gate(tape.ops()[g]), node.kind());
                let fanin: Vec<usize> = tape.fanin_of(g).iter().map(|&f| f as usize).collect();
                let expect: Vec<usize> = node.fanin().iter().map(|f| f.index()).collect();
                assert_eq!(fanin, expect, "{} gate {g}", entry.name);
            }
            for &id in c.eval_order() {
                assert!(seen[id.index()], "{} missing gate {id:?}", entry.name);
            }
            for (k, &d) in c.dffs().iter().enumerate() {
                assert_eq!(tape.dffs()[k] as usize, d.index());
                assert_eq!(tape.dff_src()[k] as usize, c.node(d).fanin()[0].index());
                assert_eq!(tape.gate_pos(d.index()), None, "DFF is not a gate");
            }
            for &pi in c.inputs() {
                assert_eq!(tape.gate_pos(pi.index()), None, "PI is not a gate");
            }
        }
    }

    #[test]
    fn tape_order_is_topological() {
        // Each gate's fanins are sources or gates at earlier tape
        // positions — the property every single-sweep engine relies on.
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            let tape = GateTape::compile(&c);
            for g in 0..tape.num_gates() {
                for &f in tape.fanin_of(g) {
                    if let Some(src) = tape.gate_pos(f as usize) {
                        assert!(src < g, "{}: gate {g} reads gate {src}", entry.name);
                    }
                }
            }
        }
    }

    #[test]
    fn runs_partition_the_tape_homogeneously() {
        for entry in benchmarks::suite_up_to(600) {
            let c = entry.build().unwrap();
            let tape = GateTape::compile(&c);
            let mut next = 0u32;
            for run in tape.runs() {
                assert_eq!(run.start, next, "{}: runs must tile the tape", entry.name);
                assert!(run.end > run.start);
                for g in run.start as usize..run.end as usize {
                    assert_eq!(tape.ops()[g], run.kind);
                    let arity = match tape.fanin_of(g).len() {
                        1 => RunArity::One,
                        2 => RunArity::Two,
                        _ => RunArity::Many,
                    };
                    assert_eq!(arity, run.arity, "{} gate {g}", entry.name);
                }
                next = run.end;
            }
            assert_eq!(next as usize, tape.num_gates());
        }
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let c = benchmarks::s27();
        let tape = GateTape::compile(&c);
        assert_eq!(tape.fanin_start().len(), tape.num_gates() + 1);
        assert_eq!(*tape.fanin_start().last().unwrap() as usize, tape.fanin().len());
        let total: usize = (0..tape.num_gates()).map(|g| tape.fanin_of(g).len()).sum();
        assert_eq!(total, tape.fanin().len());
        // Every fanin index is a valid node.
        assert!(tape.fanin().iter().all(|&f| (f as usize) < tape.num_nodes()));
    }

    #[test]
    fn tape_is_deterministic() {
        let c = benchmarks::s27();
        assert_eq!(GateTape::compile(&c), GateTape::compile(&c));
    }

    #[test]
    fn zero_gate_circuit_compiles_to_an_empty_program() {
        // POs wired straight to PIs/DFFs, no gates: the tape must be a
        // well-formed empty program, not a panic.
        let mut b = crate::CircuitBuilder::new("degenerate");
        b.add_input("a");
        b.add_dff("q", "a");
        b.add_output("a");
        b.add_output("q");
        let c = b.finish().unwrap();
        let tape = GateTape::compile(&c);
        assert_eq!(tape.num_gates(), 0);
        assert!(tape.runs().is_empty());
        assert!(tape.tiles().is_empty());
        assert_eq!(tape.fanin_start(), &[0]);
        assert!(tape.fanin().is_empty());
        assert_eq!(tape.outputs(), &[0, 1]);
        assert_eq!(tape.dff_src(), &[0]);
        assert_eq!(tape.gate_pos(0), None);
        // The fuzz generator's zero-gate class goes through the same path.
        let fz = crate::fuzz::fuzz_circuit(0);
        assert_eq!(GateTape::compile(&fz).num_gates(), 0);
    }

    #[test]
    fn tiles_refine_the_runs() {
        // Include the 16k-gate analog: its big runs must actually split.
        for entry in benchmarks::suite() {
            let c = entry.build().unwrap();
            let tape = GateTape::compile(&c);
            // Tiles partition the tape in order, each within one run.
            let mut next = 0u32;
            let mut run_iter = tape.runs().iter();
            let mut run = run_iter.next();
            for tile in tape.tiles() {
                assert_eq!(tile.start, next, "{}: tiles must tile the tape", entry.name);
                assert!(tile.end > tile.start);
                assert!(
                    (tile.end - tile.start) as usize <= GateTape::TILE_GATES,
                    "{}: oversized tile",
                    entry.name
                );
                while let Some(r) = run {
                    if tile.start >= r.end {
                        run = run_iter.next();
                    } else {
                        assert!(tile.start >= r.start && tile.end <= r.end);
                        assert_eq!(tile.kind, r.kind, "{}: tile crosses runs", entry.name);
                        assert_eq!(tile.arity, r.arity);
                        break;
                    }
                }
                next = tile.end;
            }
            assert_eq!(next as usize, tape.num_gates());
            assert!(tape.tiles().len() >= tape.runs().len());
            if tape.runs().iter().any(|r| (r.end - r.start) as usize > GateTape::TILE_GATES) {
                assert!(tape.tiles().len() > tape.runs().len(), "{}: no run split", entry.name);
            }
        }
    }
}
