use std::fmt;
use std::str::FromStr;

/// The primitive combinational gate types supported by the netlist model.
///
/// These are exactly the gate types appearing in the ISCAS-89 benchmark
/// suite (`.bench` format): AND, NAND, OR, NOR, XOR, XNOR, NOT and BUF.
///
/// # Example
///
/// ```
/// use bist_netlist::GateKind;
///
/// let g: GateKind = "NAND".parse()?;
/// assert_eq!(g, GateKind::Nand);
/// assert!(g.is_inverting());
/// # Ok::<(), bist_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Logical AND of all fanins.
    And,
    /// Complement of the AND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Complement of the OR of all fanins.
    Nor,
    /// Odd parity of all fanins.
    Xor,
    /// Complement of the odd parity of all fanins.
    Xnor,
    /// Inverter (exactly one fanin).
    Not,
    /// Buffer (exactly one fanin).
    Buf,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for exhaustive tests and
    /// weighted random selection).
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Returns `true` if the gate complements its "base" function
    /// (NAND, NOR, XNOR, NOT).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(self, GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not)
    }

    /// Returns the valid fanin range for this gate kind as `(min, max)`.
    ///
    /// NOT and BUF take exactly one fanin; every other gate takes at
    /// least two (a 1-input AND would be a BUF and is rejected so that
    /// fault equivalence classes stay canonical). There is no upper bound.
    #[must_use]
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Not | GateKind::Buf => (1, 1),
            _ => (2, usize::MAX),
        }
    }

    /// Returns `true` if `n` is an acceptable number of fanins.
    #[must_use]
    pub fn accepts_arity(self, n: usize) -> bool {
        let (lo, hi) = self.arity();
        n >= lo && n <= hi
    }

    /// The controlling value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs: `0` for AND/NAND, `1` for OR/NOR. XOR/XNOR/NOT/BUF
    /// have no controlling value.
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The canonical upper-case `.bench` spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for GateKind {
    type Err = crate::NetlistError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            other => Err(crate::NetlistError::UnknownGate { line: 0, kind: other.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for k in GateKind::ALL {
            let parsed: GateKind = k.as_str().parse().unwrap();
            assert_eq!(parsed, k);
            let lower: GateKind = k.as_str().to_lowercase().parse().unwrap();
            assert_eq!(lower, k);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
    }

    #[test]
    fn parse_unknown_fails() {
        assert!("MAJORITY".parse::<GateKind>().is_err());
        assert!("".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Buf.accepts_arity(1));
        assert!(!GateKind::And.accepts_arity(1));
        assert!(GateKind::And.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(9));
        assert!(GateKind::Xor.accepts_arity(3));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Nor.is_inverting());
        assert!(GateKind::Xnor.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Or.is_inverting());
        assert!(!GateKind::Xor.is_inverting());
        assert!(!GateKind::Buf.is_inverting());
    }
}
