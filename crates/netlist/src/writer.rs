//! Writer emitting circuits back to ISCAS-89 `.bench` text.
//!
//! Together with [`parser`](crate::parser) this gives a lossless
//! round-trip for any valid [`Circuit`], which the property tests rely on.
//!
//! # Example
//!
//! ```
//! use bist_netlist::{benchmarks, parser, writer};
//!
//! let s27 = benchmarks::s27();
//! let text = writer::to_bench(&s27);
//! let back = parser::parse_bench("s27", &text)?;
//! assert_eq!(back.num_gates(), s27.num_gates());
//! # Ok::<(), bist_netlist::NetlistError>(())
//! ```

use crate::{Circuit, NodeKind};
use std::fmt::Write as _;

/// Serializes a circuit to `.bench` text.
#[must_use]
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} D-type flip-flops, {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_dffs(),
        circuit.num_gates()
    );
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(i).name());
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(o).name());
    }
    for &d in circuit.dffs() {
        let node = circuit.node(d);
        let _ = writeln!(out, "{} = DFF({})", node.name(), circuit.node(node.fanin()[0]).name());
    }
    for &g in circuit.eval_order() {
        let node = circuit.node(g);
        let NodeKind::Gate(kind) = node.kind() else {
            unreachable!("eval_order contains only gates");
        };
        let fanin: Vec<&str> = node.fanin().iter().map(|&f| circuit.node(f).name()).collect();
        let _ = writeln!(out, "{} = {}({})", node.name(), kind, fanin.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, parser::parse_bench};

    #[test]
    fn s27_round_trip_preserves_structure() {
        let c = benchmarks::s27();
        let text = to_bench(&c);
        let back = parse_bench("s27", &text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        assert_eq!(back.num_outputs(), c.num_outputs());
        assert_eq!(back.num_dffs(), c.num_dffs());
        assert_eq!(back.num_gates(), c.num_gates());
        // Names survive.
        for n in c.nodes() {
            assert!(back.find(n.name()).is_some(), "lost {}", n.name());
        }
    }

    #[test]
    fn header_comment_present() {
        let text = to_bench(&benchmarks::s27());
        assert!(text.starts_with("# s27\n"));
        assert!(text.contains("INPUT("));
        assert!(text.contains("OUTPUT("));
        assert!(text.contains("= DFF("));
    }
}
