use crate::{CircuitStats, GateKind};
use std::fmt;

/// Identifier of a node (signal) inside a [`Circuit`].
///
/// A `NodeId` is a dense index into the circuit's node table; it is only
/// meaningful for the circuit that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Intended for iteration (`(0..circuit.num_nodes()).map(NodeId::from_index)`);
    /// using an out-of-range index will cause panics when the id is used.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What drives a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input; driven from outside the circuit.
    Input,
    /// The output of a D flip-flop. Its single fanin is the D input net.
    Dff,
    /// The output of a combinational gate.
    Gate(GateKind),
}

impl NodeKind {
    /// Returns `true` for combinational gate nodes.
    #[must_use]
    pub fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Gate(_))
    }
}

/// One node of the circuit: a named signal together with its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) fanin: Vec<NodeId>,
}

impl Node {
    /// The signal name (as written in the `.bench` source).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives this node.
    #[must_use]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The fanin nets, in pin order. Empty for primary inputs; exactly one
    /// entry (the D input) for flip-flops.
    #[must_use]
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }
}

/// A reference to one fanout branch of a node: the consuming node and the
/// pin (fanin position) at which it is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FanoutRef {
    /// The consuming node.
    pub node: NodeId,
    /// The fanin position within `node` (0-based).
    pub pin: u32,
}

/// An immutable, validated, levelized synchronous sequential circuit.
///
/// A circuit is a set of named signals (nodes), each driven by a primary
/// input, a D flip-flop, or a combinational gate. Construction goes through
/// [`CircuitBuilder`](crate::CircuitBuilder) or the
/// [`parser`](crate::parser), both of which guarantee:
///
/// * every referenced signal has exactly one driver,
/// * the combinational logic is acyclic (feedback only through DFFs),
/// * gate arities are legal,
/// * there is at least one primary input and one primary output.
///
/// The node table is stored in a validated topological order: primary
/// inputs first, then DFF outputs, then gates in evaluation order. This lets
/// simulators evaluate the combinational logic with a single forward sweep
/// ([`eval_order`](Circuit::eval_order)).
///
/// # Example
///
/// ```
/// use bist_netlist::benchmarks;
///
/// let c = benchmarks::s27();
/// // Gates can be evaluated in a single forward pass:
/// for &id in c.eval_order() {
///     let node = c.node(id);
///     assert!(node.kind().is_gate());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    /// Gate nodes in topological (evaluation) order.
    pub(crate) eval_order: Vec<NodeId>,
    /// Level (longest path from a source) of every node; sources are level 0.
    pub(crate) levels: Vec<u32>,
}

impl Circuit {
    /// The circuit name (e.g. `"s27"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + DFFs + gates).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops (state bits).
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.eval_order.len()
    }

    /// Accesses a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Primary input nodes, in declaration order. The bit order of test
    /// vectors throughout the workspace follows this order (bit 0 = first
    /// input = most significant position in the paper's notation).
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output nodes, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop output nodes, in declaration order. The state vector of a
    /// simulator follows this order.
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Gate nodes in a valid evaluation (topological) order.
    #[must_use]
    pub fn eval_order(&self) -> &[NodeId] {
        &self.eval_order
    }

    /// The logic level of a node: 0 for primary inputs and DFF outputs,
    /// otherwise 1 + max level of the fanins.
    #[must_use]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// The circuit depth: the maximum node level.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Looks up a node by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId::from_index)
    }

    /// Computes the fanout table: for every node, the list of (consumer,
    /// pin) pairs that read it. `O(total fanin)`.
    #[must_use]
    pub fn fanout_table(&self) -> Vec<Vec<FanoutRef>> {
        let mut table = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for (pin, &src) in node.fanin.iter().enumerate() {
                table[src.index()].push(FanoutRef { node: NodeId::from_index(i), pin: pin as u32 });
            }
        }
        table
    }

    /// Summary statistics for reporting.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        let mut fanin_total = 0usize;
        let mut max_fanin = 0usize;
        for &g in &self.eval_order {
            let n = self.node(g).fanin.len();
            fanin_total += n;
            max_fanin = max_fanin.max(n);
        }
        CircuitStats {
            name: self.name.clone(),
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            dffs: self.num_dffs(),
            gates: self.num_gates(),
            depth: self.depth(),
            total_gate_fanin: fanin_total,
            max_gate_fanin: max_fanin,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} DFFs, {} gates, depth {}",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_dffs(),
            self.num_gates(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn s27_shape() {
        let c = benchmarks::s27();
        assert_eq!(c.name(), "s27");
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
        assert_eq!(c.num_nodes(), 4 + 3 + 10);
    }

    #[test]
    fn eval_order_is_topological() {
        let c = benchmarks::s27();
        // Every fanin of a gate must be an input, a DFF output, or a gate
        // that appears earlier in eval_order.
        let mut seen = vec![false; c.num_nodes()];
        for &i in c.inputs() {
            seen[i.index()] = true;
        }
        for &d in c.dffs() {
            seen[d.index()] = true;
        }
        for &g in c.eval_order() {
            for &src in c.node(g).fanin() {
                assert!(seen[src.index()], "fanin {src} of {g} not yet evaluated");
            }
            seen[g.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn levels_are_consistent() {
        let c = benchmarks::s27();
        for &g in c.eval_order() {
            let max_in = c.node(g).fanin().iter().map(|&s| c.level(s)).max().unwrap();
            assert_eq!(c.level(g), max_in + 1);
        }
        for &i in c.inputs() {
            assert_eq!(c.level(i), 0);
        }
        for &d in c.dffs() {
            assert_eq!(c.level(d), 0);
        }
    }

    #[test]
    fn fanout_table_is_inverse_of_fanin() {
        let c = benchmarks::s27();
        let fo = c.fanout_table();
        let mut total_fanout = 0usize;
        for (src_idx, refs) in fo.iter().enumerate() {
            for r in refs {
                let consumer = c.node(r.node);
                assert_eq!(consumer.fanin()[r.pin as usize].index(), src_idx);
            }
            total_fanout += refs.len();
        }
        let total_fanin: usize = c.nodes().iter().map(|n| n.fanin().len()).sum();
        assert_eq!(total_fanout, total_fanin);
    }

    #[test]
    fn find_by_name() {
        let c = benchmarks::s27();
        let g17 = c.find("G17").expect("G17 exists");
        assert_eq!(c.node(g17).name(), "G17");
        assert!(c.find("NOPE").is_none());
    }

    #[test]
    fn display_mentions_counts() {
        let c = benchmarks::s27();
        let s = c.to_string();
        assert!(s.contains("s27"));
        assert!(s.contains("4 PIs"));
    }
}
