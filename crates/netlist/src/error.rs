use std::fmt;

/// Errors produced while building or parsing a circuit.
///
/// Every variant names the offending signal (or line) so that malformed
/// `.bench` files and buggy generators can be diagnosed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined more than once (two drivers on one net).
    DuplicateDriver {
        /// The multiply-driven signal name.
        name: String,
    },
    /// A signal was defined more than once in a `.bench` source. The
    /// parse-time sibling of [`DuplicateDriver`](Self::DuplicateDriver):
    /// it names both offending lines instead of silently keeping one
    /// definition.
    DuplicateDefinition {
        /// The multiply-defined signal name.
        name: String,
        /// 1-based line of the second definition.
        line: usize,
        /// 1-based line of the first definition.
        first_line: usize,
    },
    /// A combinational gate reads its own output directly — the tightest
    /// possible combinational loop, rejected at parse time with the line.
    SelfDrivingNet {
        /// The self-driving signal name.
        name: String,
        /// 1-based line of the definition.
        line: usize,
    },
    /// A signal was referenced but never driven by an input, gate or DFF.
    UndrivenNet {
        /// The undriven signal name.
        name: String,
    },
    /// The combinational logic contains a cycle that is not broken by a DFF.
    CombinationalLoop {
        /// Name of one signal participating in the cycle.
        name: String,
    },
    /// A gate was declared with an unsupported number of fanins.
    BadArity {
        /// The gate output signal name.
        name: String,
        /// The gate type as written.
        kind: String,
        /// The number of fanins supplied.
        got: usize,
    },
    /// The circuit has no primary inputs.
    NoInputs,
    /// The circuit has no primary outputs.
    NoOutputs,
    /// A `.bench` line could not be parsed.
    ParseLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
        /// What went wrong.
        reason: String,
    },
    /// An unknown gate type appeared in a `.bench` file.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate type as written.
        kind: String,
    },
    /// A primary output references a signal that is never defined.
    UnknownOutput {
        /// The referenced signal name.
        name: String,
    },
    /// A primary input is also driven by a gate or DFF.
    InputDriven {
        /// The conflicting signal name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateDriver { name } => {
                write!(f, "signal `{name}` has more than one driver")
            }
            NetlistError::DuplicateDefinition { name, line, first_line } => {
                write!(
                    f,
                    "signal `{name}` defined again on line {line} (first defined on line \
                     {first_line})"
                )
            }
            NetlistError::SelfDrivingNet { name, line } => {
                write!(f, "signal `{name}` drives itself on line {line}")
            }
            NetlistError::UndrivenNet { name } => {
                write!(f, "signal `{name}` is referenced but never driven")
            }
            NetlistError::CombinationalLoop { name } => {
                write!(f, "combinational loop through signal `{name}`")
            }
            NetlistError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of type {kind} has invalid fanin count {got}")
            }
            NetlistError::NoInputs => write!(f, "circuit has no primary inputs"),
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::ParseLine { line, text, reason } => {
                write!(f, "parse error on line {line}: {reason} (`{text}`)")
            }
            NetlistError::UnknownGate { line, kind } => {
                write!(f, "unknown gate type `{kind}` on line {line}")
            }
            NetlistError::UnknownOutput { name } => {
                write!(f, "primary output `{name}` is never defined")
            }
            NetlistError::InputDriven { name } => {
                write!(f, "primary input `{name}` is also driven by a gate")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::DuplicateDriver { name: "a".into() },
            NetlistError::DuplicateDefinition { name: "a".into(), line: 7, first_line: 2 },
            NetlistError::SelfDrivingNet { name: "a".into(), line: 5 },
            NetlistError::UndrivenNet { name: "b".into() },
            NetlistError::CombinationalLoop { name: "c".into() },
            NetlistError::BadArity { name: "d".into(), kind: "NOT".into(), got: 2 },
            NetlistError::NoInputs,
            NetlistError::NoOutputs,
            NetlistError::ParseLine { line: 3, text: "x".into(), reason: "junk".into() },
            NetlistError::UnknownGate { line: 4, kind: "FOO".into() },
            NetlistError::UnknownOutput { name: "z".into() },
            NetlistError::InputDriven { name: "i".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || !first.is_alphabetic(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
