use std::fmt;

/// Summary statistics of a circuit, for reports and benchmark tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Combinational depth (max logic level).
    pub depth: u32,
    /// Sum of gate fanin counts.
    pub total_gate_fanin: usize,
    /// Maximum gate fanin count.
    pub max_gate_fanin: usize,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: pi={} po={} ff={} gates={} depth={} fanin(total={},max={})",
            self.name,
            self.inputs,
            self.outputs,
            self.dffs,
            self.gates,
            self.depth,
            self.total_gate_fanin,
            self.max_gate_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::benchmarks;

    #[test]
    fn s27_stats() {
        let st = benchmarks::s27().stats();
        assert_eq!(st.inputs, 4);
        assert_eq!(st.gates, 10);
        assert!(st.depth >= 2);
        assert!(st.max_gate_fanin >= 2);
        assert!(st.to_string().contains("pi=4"));
    }
}
