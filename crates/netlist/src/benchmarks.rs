//! Benchmark circuits: the real `s27` plus synthetic ISCAS-89 analogs.
//!
//! The paper's experimental section (Tables 3-5) evaluates twelve ISCAS-89
//! circuits. This repository embeds the real `s27` (it is reproduced in the
//! paper's worked example) and generates deterministic *synthetic analogs*
//! of the remaining eleven: random sequential circuits with the same
//! primary-input / flip-flop / gate counts, named `a298`, `a344`, ... to
//! make the substitution explicit. Real ISCAS-89 `.bench` files can be
//! loaded through [`crate::parser::parse_bench`] instead when available.
//!
//! # Example
//!
//! ```
//! use bist_netlist::benchmarks::{self, suite};
//!
//! let s27 = benchmarks::s27();
//! assert_eq!(s27.num_dffs(), 3);
//!
//! // First suite entry is s27 itself.
//! let entries = suite();
//! assert_eq!(entries[0].name, "s27");
//! let c = entries[0].build()?;
//! assert_eq!(c.num_inputs(), 4);
//! # Ok::<(), bist_netlist::NetlistError>(())
//! ```

use crate::generate::GeneratorSpec;
use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};

/// The ISCAS-89 `s27` benchmark in `.bench` format, exactly as distributed.
pub const S27_BENCH: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Builds the real ISCAS-89 `s27` circuit (4 PIs, 1 PO, 3 DFFs, 10 gates).
///
/// # Panics
///
/// Never: the embedded source is validated by tests.
#[must_use]
pub fn s27() -> Circuit {
    crate::parser::parse_bench("s27", S27_BENCH).expect("embedded s27 is valid")
}

/// A 3-stage shift register with an enable gate — a tiny, fully
/// deterministic sequential circuit used throughout the test suites.
#[must_use]
pub fn shift_register3() -> Circuit {
    let mut b = CircuitBuilder::new("shift3");
    b.add_input("din");
    b.add_input("en");
    b.add_gate("d0", GateKind::And, ["din", "en"]);
    b.add_dff("q0", "d0");
    b.add_dff("q1", "q0");
    b.add_dff("q2", "q1");
    b.add_output("q2");
    b.finish().expect("shift3 is valid")
}

/// A 1-bit toggle cell: `q' = en XOR q`.
#[must_use]
pub fn toggle() -> Circuit {
    let mut b = CircuitBuilder::new("toggle");
    b.add_input("en");
    b.add_gate("d", GateKind::Xor, ["en", "q"]);
    b.add_dff("q", "d");
    b.add_output("q");
    b.finish().expect("toggle is valid")
}

/// A small combinational parity/majority mix with no state, for
/// combinational-path tests.
#[must_use]
pub fn comb_mix() -> Circuit {
    let mut b = CircuitBuilder::new("comb_mix");
    b.add_input("a");
    b.add_input("b");
    b.add_input("c");
    b.add_gate("ab", GateKind::And, ["a", "b"]);
    b.add_gate("bc", GateKind::And, ["b", "c"]);
    b.add_gate("ca", GateKind::And, ["c", "a"]);
    b.add_gate("maj", GateKind::Or, ["ab", "bc", "ca"]);
    b.add_gate("par", GateKind::Xor, ["a", "b", "c"]);
    b.add_gate("out", GateKind::Nand, ["maj", "par"]);
    b.add_output("maj");
    b.add_output("par");
    b.add_output("out");
    b.finish().expect("comb_mix is valid")
}

/// How a suite entry produces its circuit.
#[derive(Debug, Clone)]
enum EntryKind {
    /// Parse embedded `.bench` text.
    Embedded(&'static str),
    /// Generate from a spec.
    Generated(GeneratorSpec),
}

/// One benchmark circuit of the evaluation suite.
///
/// Entries are lightweight descriptions; call [`build`](Self::build) to
/// materialize the circuit (generation of the largest analog takes a
/// moment, so it is done lazily).
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Circuit name (`s27`, or `aNNN` for a synthetic analog of `sNNN`).
    pub name: &'static str,
    /// Name of the ISCAS-89 circuit this entry stands in for.
    pub analog_of: &'static str,
    /// Rough size class used by harnesses to subset the suite.
    pub gates: usize,
    kind: EntryKind,
}

impl SuiteEntry {
    /// Materializes the circuit.
    ///
    /// # Errors
    ///
    /// Generation is validated; errors indicate an impossible spec and are
    /// not expected for the built-in suite.
    pub fn build(&self) -> Result<Circuit, NetlistError> {
        match &self.kind {
            EntryKind::Embedded(text) => crate::parser::parse_bench(self.name, text),
            EntryKind::Generated(spec) => spec.build(),
        }
    }
}

#[allow(clippy::too_many_arguments)] // flat row of a benchmark table
fn analog(
    name: &'static str,
    analog_of: &'static str,
    pis: usize,
    pos: usize,
    ffs: usize,
    gates: usize,
    depth: usize,
    seed: u64,
) -> SuiteEntry {
    SuiteEntry {
        name,
        analog_of,
        gates,
        kind: EntryKind::Generated(
            GeneratorSpec::new(name)
                .inputs(pis)
                .outputs(pos)
                .dffs(ffs)
                .gates(gates)
                .target_depth(depth)
                .seed(seed),
        ),
    }
}

/// The evaluation suite mirroring Table 3 of the paper: the real `s27`
/// followed by synthetic analogs of the twelve evaluated ISCAS-89 circuits,
/// ordered by size. PI/PO/FF/gate counts match the originals.
#[must_use]
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "s27",
            analog_of: "s27",
            gates: 10,
            kind: EntryKind::Embedded(S27_BENCH),
        },
        analog("a298", "s298", 3, 6, 14, 119, 9, 298),
        analog("a344", "s344", 9, 11, 15, 160, 10, 344),
        analog("a382", "s382", 3, 6, 21, 158, 9, 382),
        analog("a400", "s400", 3, 6, 21, 162, 9, 400),
        analog("a526", "s526", 3, 6, 21, 193, 9, 526),
        analog("a641", "s641", 35, 24, 19, 379, 12, 641),
        analog("a820", "s820", 18, 19, 5, 289, 10, 820),
        analog("a1196", "s1196", 14, 14, 18, 529, 12, 1196),
        analog("a1423", "s1423", 17, 5, 74, 657, 13, 1423),
        analog("a1488", "s1488", 8, 19, 6, 653, 12, 1488),
        analog("a5378", "s5378", 35, 49, 179, 2779, 12, 5378),
        analog("a35932", "s35932", 35, 320, 1728, 16065, 12, 35932),
    ]
}

/// The suite restricted to circuits with at most `max_gates` gates —
/// convenient for quick runs and debug-mode tests.
#[must_use]
pub fn suite_up_to(max_gates: usize) -> Vec<SuiteEntry> {
    suite().into_iter().filter(|e| e.gates <= max_gates).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_matches_published_shape() {
        let c = s27();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
        // Spot-check connectivity from the published netlist.
        let g11 = c.find("G11").unwrap();
        let node = c.node(g11);
        assert_eq!(node.fanin().len(), 2);
        let names: Vec<&str> = node.fanin().iter().map(|&f| c.node(f).name()).collect();
        assert_eq!(names, vec!["G5", "G9"]);
    }

    #[test]
    fn helpers_build() {
        assert_eq!(shift_register3().num_dffs(), 3);
        assert_eq!(toggle().num_dffs(), 1);
        assert_eq!(comb_mix().num_dffs(), 0);
    }

    #[test]
    fn suite_entries_have_matching_counts() {
        // Check a couple of analogs cheaply (not the big ones).
        for entry in suite_up_to(300) {
            let c = entry.build().unwrap();
            assert_eq!(c.name(), entry.name);
            assert_eq!(c.num_gates(), entry.gates, "{}", entry.name);
        }
    }

    #[test]
    fn suite_is_ordered_and_complete() {
        let s = suite();
        assert_eq!(s.len(), 13);
        assert_eq!(s[0].name, "s27");
        assert_eq!(s.last().unwrap().analog_of, "s35932");
    }

    #[test]
    fn suite_up_to_filters() {
        let small = suite_up_to(200);
        assert!(small.iter().all(|e| e.gates <= 200));
        assert!(small.len() >= 4);
    }

    #[test]
    fn analogs_are_deterministic() {
        let a = suite()[1].build().unwrap();
        let b = suite()[1].build().unwrap();
        assert_eq!(a, b);
    }
}
