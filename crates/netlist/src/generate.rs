//! Seeded random generation of synchronous sequential circuits.
//!
//! The DAC 1999 paper evaluates on the ISCAS-89 benchmark suite. Those
//! netlists are not distributed with this repository (only `s27` appears in
//! the paper itself), so [`generate`] builds *synthetic analogs*: random
//! sequential circuits with the same primary-input, flip-flop and gate
//! counts as the originals. Generation is layered so circuits have a
//! realistic, bounded combinational depth and sequential feedback through
//! the flip-flops, and it is fully deterministic for a given
//! [`GeneratorSpec`] (including the seed).
//!
//! # Example
//!
//! ```
//! use bist_netlist::generate::GeneratorSpec;
//!
//! let c = GeneratorSpec::new("demo")
//!     .inputs(4)
//!     .outputs(3)
//!     .dffs(5)
//!     .gates(40)
//!     .seed(7)
//!     .build()?;
//! assert_eq!(c.num_gates(), 40);
//! assert_eq!(c.num_dffs(), 5);
//! # Ok::<(), bist_netlist::NetlistError>(())
//! ```

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for the random circuit generator (builder-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorSpec {
    name: String,
    inputs: usize,
    outputs: usize,
    dffs: usize,
    gates: usize,
    target_depth: usize,
    max_fanin: usize,
    seed: u64,
}

impl GeneratorSpec {
    /// Creates a spec with small defaults (4 inputs, 2 outputs, 3 DFFs,
    /// 20 gates, depth 6, max fanin 4, seed 0).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        GeneratorSpec {
            name: name.into(),
            inputs: 4,
            outputs: 2,
            dffs: 3,
            gates: 20,
            target_depth: 6,
            max_fanin: 4,
            seed: 0,
        }
    }

    /// Sets the number of primary inputs (must be ≥ 1).
    #[must_use]
    pub fn inputs(mut self, n: usize) -> Self {
        self.inputs = n;
        self
    }

    /// Sets the number of primary outputs (must be ≥ 1).
    #[must_use]
    pub fn outputs(mut self, n: usize) -> Self {
        self.outputs = n;
        self
    }

    /// Sets the number of D flip-flops (may be 0 for a combinational circuit).
    #[must_use]
    pub fn dffs(mut self, n: usize) -> Self {
        self.dffs = n;
        self
    }

    /// Sets the number of combinational gates (must be ≥ 1).
    #[must_use]
    pub fn gates(mut self, n: usize) -> Self {
        self.gates = n;
        self
    }

    /// Sets the approximate combinational depth (number of layers).
    #[must_use]
    pub fn target_depth(mut self, n: usize) -> Self {
        self.target_depth = n.max(1);
        self
    }

    /// Sets the maximum gate fanin (≥ 2).
    #[must_use]
    pub fn max_fanin(mut self, n: usize) -> Self {
        self.max_fanin = n.max(2);
        self
    }

    /// Sets the RNG seed; the same spec always yields the same circuit.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the requested shape is impossible (no inputs, no
    /// outputs, zero gates) — surfaced through the builder's validation.
    pub fn build(&self) -> Result<Circuit, NetlistError> {
        generate(self)
    }
}

/// Weighted gate-kind distribution roughly matching standard-cell netlists.
fn pick_kind(rng: &mut StdRng) -> GateKind {
    const TABLE: [(GateKind, u32); 8] = [
        (GateKind::And, 20),
        (GateKind::Nand, 20),
        (GateKind::Or, 15),
        (GateKind::Nor, 15),
        (GateKind::Not, 15),
        (GateKind::Buf, 5),
        (GateKind::Xor, 7),
        (GateKind::Xnor, 3),
    ];
    let total: u32 = TABLE.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(kind, w) in &TABLE {
        if roll < w {
            return kind;
        }
        roll -= w;
    }
    unreachable!("weights exhausted")
}

/// Generates a random sequential circuit per `spec`. See module docs.
///
/// # Errors
///
/// Propagates builder validation errors for impossible shapes.
pub fn generate(spec: &GeneratorSpec) -> Result<Circuit, NetlistError> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ name_hash(&spec.name));
    let mut builder = CircuitBuilder::new(spec.name.clone());

    let pi_names: Vec<String> = (0..spec.inputs).map(|i| format!("I{i}")).collect();
    let ff_names: Vec<String> = (0..spec.dffs).map(|i| format!("Q{i}")).collect();
    let gate_names: Vec<String> = (0..spec.gates).map(|i| format!("G{i}")).collect();

    for n in &pi_names {
        builder.add_input(n.clone());
    }

    // Sources available to the combinational logic.
    let sources: Vec<String> = pi_names.iter().chain(ff_names.iter()).cloned().collect();

    // Reserve one gate per flip-flop to gate its D input with a primary
    // input (see below): this keeps the circuit initializable from the
    // all-unknown state, like real synchronous designs with resets/loads.
    // Without it, random FF feedback webs tend to stay at X forever and
    // most faults become undetectable under 3-valued simulation.
    let reserve = if spec.dffs > 0 && spec.gates > 2 * spec.dffs { spec.dffs } else { 0 };
    let layered_gates = spec.gates - reserve;

    // Layered construction: layer 0 reads sources; layer l>0 reads mostly
    // layer l-1 plus occasionally any earlier signal. `unused` tracks
    // signals not yet consumed by anything so (almost) all logic is live.
    let layers = spec.target_depth.min(layered_gates).max(1);
    let per_layer = layered_gates.div_ceil(layers);
    let mut all_signals: Vec<String> = sources.clone();
    let mut prev_layer: Vec<String> = sources.clone();
    let mut unused: Vec<String> = sources.clone();

    let mut gate_idx = 0usize;
    while gate_idx < layered_gates {
        let count = per_layer.min(layered_gates - gate_idx);
        let mut this_layer = Vec::with_capacity(count);
        for _ in 0..count {
            let name = gate_names[gate_idx].clone();
            gate_idx += 1;
            let kind = pick_kind(&mut rng);
            let arity = match kind.arity() {
                (1, 1) => 1,
                _ => {
                    // Favor 2-input gates; taper to max_fanin.
                    let r: f64 = rng.gen();
                    if r < 0.6 {
                        2
                    } else if r < 0.9 {
                        3.min(spec.max_fanin)
                    } else {
                        rng.gen_range(2..=spec.max_fanin)
                    }
                }
            };
            let mut fanin: Vec<String> = Vec::with_capacity(arity);
            // First fanin: prefer an unused signal (keeps logic live).
            let first = if !unused.is_empty() && rng.gen_bool(0.8) {
                let i = rng.gen_range(0..unused.len());
                unused.swap_remove(i)
            } else if rng.gen_bool(0.7) && !prev_layer.is_empty() {
                prev_layer.choose(&mut rng).expect("nonempty").clone()
            } else {
                all_signals.choose(&mut rng).expect("nonempty").clone()
            };
            fanin.push(first);
            while fanin.len() < arity {
                let cand = if rng.gen_bool(0.5) && !prev_layer.is_empty() {
                    prev_layer.choose(&mut rng).expect("nonempty").clone()
                } else {
                    all_signals.choose(&mut rng).expect("nonempty").clone()
                };
                if !fanin.contains(&cand) {
                    unused.retain(|u| u != &cand);
                    fanin.push(cand);
                } else if all_signals.len() <= arity {
                    // Degenerate tiny circuit: allow duplicate fanin only
                    // for non-parity gates where it is harmless.
                    if kind.controlling_value().is_some() {
                        fanin.push(cand);
                    } else {
                        break;
                    }
                }
            }
            // A parity gate may have shrunk below 2 fanins in degenerate
            // cases; pad from sources (guaranteed distinct name pool).
            if fanin.len() < 2 && arity >= 2 {
                for s in &sources {
                    if !fanin.contains(s) {
                        fanin.push(s.clone());
                        break;
                    }
                }
            }
            let kind = if fanin.len() == 1 && arity >= 2 { GateKind::Buf } else { kind };
            builder.add_gate(name.clone(), kind, fanin);
            this_layer.push(name);
        }
        // Only now make this layer's outputs visible, so no gate reads a
        // same-layer gate and the depth stays bounded by the layer count.
        for name in &this_layer {
            unused.push(name.clone());
            all_signals.push(name.clone());
        }
        prev_layer = this_layer;
    }

    // Flip-flop D inputs: drain unused gate outputs first (live feedback),
    // then random gates. With a reserve, each D goes through a gating gate
    // `AND(x, Ik)` or `NOR(x, Ik)` so that driving input `Ik` to a
    // controlling value forces the flip-flop to a known state.
    for (fi, q) in ff_names.iter().enumerate() {
        let d = if !unused.is_empty() {
            let i = rng.gen_range(0..unused.len());
            unused.swap_remove(i)
        } else {
            let pool: &[String] = if gate_idx > 0 { &gate_names[..gate_idx] } else { &sources };
            pool.choose(&mut rng).expect("nonempty").clone()
        };
        if reserve > 0 {
            let gate_name = gate_names[layered_gates + fi].clone();
            let kind = if rng.gen_bool(0.5) { GateKind::And } else { GateKind::Nor };
            let sync_pi = pi_names.choose(&mut rng).expect("inputs nonempty").clone();
            builder.add_gate(gate_name.clone(), kind, [d, sync_pi]);
            builder.add_dff(q.clone(), gate_name);
        } else {
            builder.add_dff(q.clone(), d);
        }
    }

    // Primary outputs: up to half are flip-flop outputs (real sequential
    // benchmarks observe much of their state directly, which is what makes
    // them testable), the rest are leftover unused signals, topped up with
    // random distinct gates.
    let mut outs: Vec<String> = Vec::new();
    unused.shuffle(&mut rng);
    for u in unused {
        if outs.len() >= spec.outputs {
            break;
        }
        if !outs.contains(&u) {
            outs.push(u);
        }
    }
    if spec.dffs > 0 {
        let mut ffs = ff_names.clone();
        ffs.shuffle(&mut rng);
        for q in ffs {
            if outs.len() >= spec.outputs {
                break;
            }
            if !outs.contains(&q) {
                outs.push(q);
            }
        }
    }
    let mut tries = 0;
    while outs.len() < spec.outputs && tries < spec.gates * 4 + 16 {
        tries += 1;
        let cand = gate_names.choose(&mut rng).expect("gates nonempty");
        if !outs.contains(cand) {
            outs.push(cand.clone());
        }
    }
    // Tiny circuits may not have enough distinct gates; fall back to inputs.
    let mut k = 0;
    while outs.len() < spec.outputs && k < pi_names.len() {
        if !outs.contains(&pi_names[k]) {
            outs.push(pi_names[k].clone());
        }
        k += 1;
    }
    for o in &outs {
        builder.add_output(o.clone());
    }

    builder.finish()
}

/// Tiny stable FNV-1a string hash so different circuit names with the same
/// numeric seed do not produce identical structures.
fn name_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = GeneratorSpec::new("det").inputs(5).outputs(4).dffs(6).gates(60).seed(42);
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorSpec::new("d").gates(60).seed(1).build().unwrap();
        let b = GeneratorSpec::new("d").gates(60).seed(2).build().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_counts() {
        let c = GeneratorSpec::new("counts")
            .inputs(7)
            .outputs(5)
            .dffs(9)
            .gates(100)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(c.num_inputs(), 7);
        assert_eq!(c.num_dffs(), 9);
        assert_eq!(c.num_gates(), 100);
        assert_eq!(c.num_outputs(), 5);
    }

    #[test]
    fn depth_is_bounded() {
        let c = GeneratorSpec::new("deep")
            .inputs(4)
            .outputs(4)
            .dffs(8)
            .gates(200)
            .target_depth(8)
            .seed(11)
            .build()
            .unwrap();
        // Layered generation keeps depth close to the target; allow slack
        // for the fact that layers can read any earlier signal.
        assert!(c.depth() <= 8 + 2, "depth {} too large", c.depth());
    }

    #[test]
    fn most_logic_is_live() {
        let c = GeneratorSpec::new("live")
            .inputs(6)
            .outputs(6)
            .dffs(10)
            .gates(150)
            .seed(5)
            .build()
            .unwrap();
        let fanout = c.fanout_table();
        let dead = c
            .eval_order()
            .iter()
            .filter(|&&g| fanout[g.index()].is_empty() && !c.outputs().contains(&g))
            .count();
        // Almost everything should be consumed or observable. A few dead
        // gates are tolerated (they mimic the undetectable-fault population
        // of real circuits).
        assert!(dead <= c.num_gates() / 10, "{dead} dead gates of {}", c.num_gates());
    }

    #[test]
    fn combinational_generation_works() {
        let c = GeneratorSpec::new("comb")
            .inputs(5)
            .outputs(3)
            .dffs(0)
            .gates(30)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(c.num_dffs(), 0);
    }

    #[test]
    fn tiny_circuit_works() {
        let c = GeneratorSpec::new("tiny")
            .inputs(2)
            .outputs(1)
            .dffs(1)
            .gates(3)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(c.num_gates(), 3);
    }

    #[test]
    fn name_affects_structure() {
        let a = GeneratorSpec::new("alpha").gates(50).seed(7).build().unwrap();
        let b = GeneratorSpec::new("beta").gates(50).seed(7).build().unwrap();
        // Same shape, same seed, different names: structure should differ.
        let eq_fanin = a
            .eval_order()
            .iter()
            .zip(b.eval_order())
            .all(|(&x, &y)| a.node(x).fanin() == b.node(y).fanin());
        assert!(!eq_fanin);
    }
}
