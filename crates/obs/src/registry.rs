//! The thread-safe metric [`Registry`], its deterministic
//! [`MetricsSnapshot`] and the RAII [`Span`] timer.

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independently locked name shards. Registration is rare
/// (hot paths hold pre-resolved `Arc`s), so this only has to keep
/// *concurrent first-touch* cheap.
const SHARDS: usize = 8;

#[derive(Debug, Default)]
struct Shard {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A thread-safe registry of named metrics plus an optional trace-event
/// buffer.
///
/// Metric names are sharded across [`SHARDS`] `Mutex<BTreeMap>`s;
/// [`snapshot`](Registry::snapshot) merges the shards into one
/// stable-sorted view, so exports are deterministic regardless of
/// registration order or shard assignment.
///
/// Tracing is off by default (spans then cost one histogram record and
/// never allocate); [`enable_tracing`](Registry::enable_tracing) turns
/// every subsequent [`Span`] into a buffered [`TraceEvent`] as well.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    shards: [Shard; SHARDS],
    tracing: AtomicBool,
    trace: Mutex<Vec<TraceEvent>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            epoch: Instant::now(),
            shards: std::array::from_fn(|_| Shard::default()),
            tracing: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }
}

/// FNV-1a over the name picks the shard.
fn shard_of(name: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl Registry {
    /// A fresh registry; its creation instant is the trace epoch.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The instant trace timestamps (`ts_us`) are relative to.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Starts buffering a [`TraceEvent`] per finished span.
    pub fn enable_tracing(&self) {
        self.tracing.store(true, Ordering::Relaxed);
    }

    /// Whether spans currently emit trace events.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// The counter named `name`, registering it on first touch.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.shards[shard_of(name)].counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, registering it on first touch.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.shards[shard_of(name)].gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, registering it on first touch.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.shards[shard_of(name)].histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Appends a trace event (used by [`Span`]; public so layers with
    /// their own timing can emit events too).
    pub fn push_trace(&self, event: TraceEvent) {
        self.trace.lock().unwrap().push(event);
    }

    /// A copy of the buffered trace events, in emission order.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().unwrap().clone()
    }

    /// Microseconds elapsed since the registry epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Merges every shard into one stable-sorted, point-in-time view.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().unwrap().iter() {
                counters.insert(name.clone(), c.get());
            }
            for (name, g) in shard.gauges.lock().unwrap().iter() {
                gauges.insert(name.clone(), g.get());
            }
            for (name, h) in shard.histograms.lock().unwrap().iter() {
                histograms.insert(name.clone(), h.snapshot());
            }
        }
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }
}

/// A deterministic (name-sorted) point-in-time export of a
/// [`Registry`]. This is the value embedded in campaign summaries and
/// rendered by the exporters in [`crate::export`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// True when nothing was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// One finished span: what ran, when it started (µs since the registry
/// epoch) and how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time, microseconds since the registry epoch.
    pub ts_us: u64,
    /// Span (= histogram) name.
    pub span: String,
    /// Free-form `key=value` context (may be empty).
    pub labels: String,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// An RAII timer: started via [`crate::Obs::span`], it records its
/// elapsed microseconds into the histogram of the same name when
/// dropped (or explicitly [`end`](Span::end)ed), and emits a
/// [`TraceEvent`] when the registry has tracing enabled.
///
/// A span from a no-op [`crate::Obs`] never reads the clock.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    registry: Arc<Registry>,
    name: String,
    labels: String,
    start: Instant,
}

impl Span {
    /// A span that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Span { inner: None }
    }

    pub(crate) fn start(registry: Arc<Registry>, name: String, labels: String) -> Self {
        Span { inner: Some(SpanInner { registry, name, labels, start: Instant::now() }) }
    }

    /// Ends the span now, returning its duration in microseconds (0 for
    /// a no-op span).
    pub fn end(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        let Some(inner) = self.inner.take() else {
            return 0;
        };
        let dur_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        inner.registry.histogram(&inner.name).record(dur_us);
        if inner.registry.tracing_enabled() {
            let since_epoch = inner.start.saturating_duration_since(inner.registry.epoch);
            inner.registry.push_trace(TraceEvent {
                ts_us: u64::try_from(since_epoch.as_micros()).unwrap_or(u64::MAX),
                span: inner.name,
                labels: inner.labels,
                dur_us,
            });
        }
        dur_us
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_stable_sorted_across_shards() {
        let r = Registry::new();
        // Names chosen to hash into different shards.
        for name in ["zebra", "alpha", "m.mid", "cache.tape.hit", "pool.depth"] {
            r.counter(name).inc();
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("cache.tape.hit"), Some(1));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn same_name_same_instance() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.snapshot().counter("x"), Some(5));
        r.gauge("g").set(9);
        r.gauge("g").sub(4);
        assert_eq!(r.snapshot().gauge("g"), Some(5));
    }

    #[test]
    fn spans_record_into_histograms_and_trace() {
        let r = Arc::new(Registry::new());
        r.enable_tracing();
        {
            let _s = Span::start(Arc::clone(&r), "work.us".to_string(), "k=v".to_string());
        }
        let dur = Span::start(Arc::clone(&r), "work.us".to_string(), String::new()).end();
        let snap = r.snapshot();
        let h = snap.histogram("work.us").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= dur);
        let events = r.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, "work.us");
        assert_eq!(events[0].labels, "k=v");
        assert!(events[1].ts_us >= events[0].ts_us);
    }

    #[test]
    fn noop_span_is_inert() {
        assert_eq!(Span::noop().end(), 0);
    }

    #[test]
    fn concurrent_registry_hammer() {
        // Satellite: many threads hitting the same and different names;
        // totals must come out exact.
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per = 1000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let shared = r.counter("hammer.shared");
                    let own = r.counter(&format!("hammer.t{t}"));
                    let h = r.histogram("hammer.lat_us");
                    for i in 0..per {
                        shared.inc();
                        own.inc();
                        h.record(i);
                        r.gauge("hammer.depth").add(1);
                        r.gauge("hammer.depth").sub(1);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("hammer.shared"), Some(threads * per));
        for t in 0..threads {
            assert_eq!(snap.counter(&format!("hammer.t{t}")), Some(per));
        }
        let h = snap.histogram("hammer.lat_us").unwrap();
        assert_eq!(h.count, threads * per);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, per - 1);
        assert_eq!(snap.gauge("hammer.depth"), Some(0));
    }
}
