//! # bist-obs — zero-dependency telemetry for the subseq-bist stack
//!
//! One uniform observability substrate for every layer of the
//! workspace: atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed
//! [`Histogram`]s (count/sum/min/max/p50/p90/p99), an RAII [`Span`]
//! timer feeding named histograms and an optional trace-event buffer,
//! and a thread-safe [`Registry`] whose [`MetricsSnapshot`] is
//! stable-sorted so every export is deterministic.
//!
//! In keeping with the repo's hand-rolled style (`bist_batch::jsonl`,
//! the vendored `rand` shim) there are no dependencies: the exporters
//! in [`export`] render a human-readable text table, a metrics JSON
//! document and a trace JSONL stream, each paired with a strict
//! recursive-descent validator.
//!
//! ## The `Obs` handle
//!
//! Instrumented layers take an [`Obs`] — a cheap clonable handle that
//! is either *active* (backed by a shared [`Registry`]) or a *no-op
//! sink*. The no-op case is a `None` branch, not a trait object: hot
//! paths pre-resolve [`CounterHandle`]/[`HistogramHandle`]s once per
//! sweep and pay a single predictable branch per batch of updates, so
//! uninstrumented benchmarks (`detect/tape/*`) are unaffected.
//!
//! ```
//! use bist_obs::Obs;
//!
//! let obs = Obs::active();
//! obs.counter_add("cache.tape.hit", 1);
//! let span = obs.span("session.fault_sim_us", "circuit=s27");
//! // ... work ...
//! let dur_us = span.end();
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("cache.tape.hit"), Some(1));
//! assert_eq!(snap.histogram("session.fault_sim_us").unwrap().count, 1);
//! assert!(Obs::noop().snapshot().is_empty());
//! # let _ = dur_us;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod metric;
mod registry;

pub use metric::{bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricsSnapshot, Registry, Span, TraceEvent};

use std::sync::Arc;

/// A cheap clonable telemetry handle: either active (sharing a
/// [`Registry`]) or a no-op sink. See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
}

impl Obs {
    /// The no-op sink: every operation is a `None` branch.
    #[must_use]
    pub fn noop() -> Self {
        Obs { registry: None }
    }

    /// An active handle over a fresh registry.
    #[must_use]
    pub fn active() -> Self {
        Obs { registry: Some(Arc::new(Registry::new())) }
    }

    /// An active handle over an existing registry.
    #[must_use]
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Obs { registry: Some(registry) }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, when active.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Adds `n` to the counter named `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Overwrites the gauge named `name`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(r) = &self.registry {
            r.gauge(name).set(v);
        }
    }

    /// Adds `n` (may be negative) to the gauge named `name`.
    #[inline]
    pub fn gauge_add(&self, name: &str, n: i64) {
        if let Some(r) = &self.registry {
            r.gauge(name).add(n);
        }
    }

    /// Records one observation into the histogram named `name`.
    #[inline]
    pub fn record(&self, name: &str, v: u64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(v);
        }
    }

    /// Starts an RAII span recording into the histogram named `name`
    /// (and the trace buffer when tracing is enabled). `labels` is
    /// free-form `key=value` context for the trace row.
    #[must_use]
    pub fn span(&self, name: &str, labels: impl Into<String>) -> Span {
        match &self.registry {
            Some(r) => Span::start(Arc::clone(r), name.to_string(), labels.into()),
            None => Span::noop(),
        }
    }

    /// Pre-resolves the counter named `name` for hot paths (one branch
    /// per [`CounterHandle::add`], no name lookup).
    #[must_use]
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle(self.registry.as_ref().map(|r| r.counter(name)))
    }

    /// Pre-resolves the gauge named `name` for hot paths.
    #[must_use]
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle(self.registry.as_ref().map(|r| r.gauge(name)))
    }

    /// Pre-resolves the histogram named `name` for hot paths.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.registry.as_ref().map(|r| r.histogram(name)))
    }

    /// A deterministic snapshot (empty for the no-op sink).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }
}

/// A pre-resolved counter; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }
}

/// A pre-resolved gauge; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }
}

/// A pre-resolved histogram; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        obs.counter_add("c", 1);
        obs.gauge_set("g", 1);
        obs.record("h", 1);
        obs.counter("c").inc();
        obs.gauge("g").add(1);
        obs.histogram("h").record(1);
        assert_eq!(obs.span("s", "").end(), 0);
        assert!(!obs.is_active());
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::active();
        let other = obs.clone();
        obs.counter_add("shared", 1);
        other.counter_add("shared", 1);
        let h = other.counter("shared");
        h.inc();
        assert_eq!(obs.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn default_is_noop() {
        assert!(!Obs::default().is_active());
    }
}
