//! # bist-obs — zero-dependency telemetry for the subseq-bist stack
//!
//! One uniform observability substrate for every layer of the
//! workspace: atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed
//! [`Histogram`]s (count/sum/min/max/p50/p90/p99), an RAII [`Span`]
//! timer feeding named histograms and an optional trace-event buffer,
//! and a thread-safe [`Registry`] whose [`MetricsSnapshot`] is
//! stable-sorted so every export is deterministic.
//!
//! In keeping with the repo's hand-rolled style (`bist_batch::jsonl`,
//! the vendored `rand` shim) there are no dependencies: the exporters
//! in [`export`] render a human-readable text table, a metrics JSON
//! document and a trace JSONL stream, each paired with a strict
//! recursive-descent validator.
//!
//! ## The `Obs` handle
//!
//! Instrumented layers take an [`Obs`] — a cheap clonable handle that
//! is either *active* (backed by a shared [`Registry`]) or a *no-op
//! sink*. The no-op case is a `None` branch, not a trait object: hot
//! paths pre-resolve [`CounterHandle`]/[`HistogramHandle`]s once per
//! sweep and pay a single predictable branch per batch of updates, so
//! uninstrumented benchmarks (`detect/tape/*`) are unaffected.
//!
//! ```
//! use bist_obs::Obs;
//!
//! let obs = Obs::active();
//! obs.counter_add("cache.tape.hit", 1);
//! let span = obs.span("session.fault_sim_us", "circuit=s27");
//! // ... work ...
//! let dur_us = span.end();
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("cache.tape.hit"), Some(1));
//! assert_eq!(snap.histogram("session.fault_sim_us").unwrap().count, 1);
//! assert!(Obs::noop().snapshot().is_empty());
//! # let _ = dur_us;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod metric;
mod registry;

pub use metric::{bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricsSnapshot, Registry, Span, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a [`CancelToken`] reports itself cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// Someone called [`CancelToken::cancel`].
    Requested,
    /// The token's deadline passed.
    DeadlineExpired,
}

/// A cheap clonable cooperative-cancellation token: an atomic flag plus
/// an optional wall-clock deadline. Long-running computations poll
/// [`is_cancelled`](Self::is_cancelled) at natural boundaries (the fault
/// sweeps check once per chunk) and unwind with a typed error, so a
/// timed-out or abandoned job releases its worker instead of running to
/// completion. Clones share one flag; riding the [`Obs`] handle keeps
/// the token out of every intermediate API signature.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`cancel`](Self::cancel).
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `deadline`
    /// passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation (idempotent; visible to every clone).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token is cancelled — explicitly, or by its deadline
    /// having passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.kind().is_some()
    }

    /// Why the token is cancelled, or `None` if it is not. An explicit
    /// [`cancel`](Self::cancel) wins over a simultaneously expired
    /// deadline.
    #[must_use]
    pub fn kind(&self) -> Option<CancelKind> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(CancelKind::Requested);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelKind::DeadlineExpired),
            _ => None,
        }
    }

    /// The deadline, if the token has one.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// A cheap clonable telemetry handle: either active (sharing a
/// [`Registry`]) or a no-op sink. See the crate docs. The handle can
/// also carry a [`CancelToken`], giving instrumented layers a
/// cooperative-cancellation channel without any new plumbing.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
    cancel: Option<CancelToken>,
}

impl Obs {
    /// The no-op sink: every operation is a `None` branch.
    #[must_use]
    pub fn noop() -> Self {
        Obs { registry: None, cancel: None }
    }

    /// An active handle over a fresh registry.
    #[must_use]
    pub fn active() -> Self {
        Obs { registry: Some(Arc::new(Registry::new())), cancel: None }
    }

    /// An active handle over an existing registry.
    #[must_use]
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Obs { registry: Some(registry), cancel: None }
    }

    /// This handle with `token` attached: clones passed down the stack
    /// all observe the same cancellation state. The registry (if any) is
    /// shared unchanged.
    #[must_use]
    pub fn with_cancel(&self, token: CancelToken) -> Self {
        Obs { registry: self.registry.clone(), cancel: Some(token) }
    }

    /// The attached cancel token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Whether an attached token reports cancelled (`false` without a
    /// token).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, when active.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Adds `n` to the counter named `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Overwrites the gauge named `name`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(r) = &self.registry {
            r.gauge(name).set(v);
        }
    }

    /// Adds `n` (may be negative) to the gauge named `name`.
    #[inline]
    pub fn gauge_add(&self, name: &str, n: i64) {
        if let Some(r) = &self.registry {
            r.gauge(name).add(n);
        }
    }

    /// Records one observation into the histogram named `name`.
    #[inline]
    pub fn record(&self, name: &str, v: u64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(v);
        }
    }

    /// Starts an RAII span recording into the histogram named `name`
    /// (and the trace buffer when tracing is enabled). `labels` is
    /// free-form `key=value` context for the trace row.
    #[must_use]
    pub fn span(&self, name: &str, labels: impl Into<String>) -> Span {
        match &self.registry {
            Some(r) => Span::start(Arc::clone(r), name.to_string(), labels.into()),
            None => Span::noop(),
        }
    }

    /// Pre-resolves the counter named `name` for hot paths (one branch
    /// per [`CounterHandle::add`], no name lookup).
    #[must_use]
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle(self.registry.as_ref().map(|r| r.counter(name)))
    }

    /// Pre-resolves the gauge named `name` for hot paths.
    #[must_use]
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle(self.registry.as_ref().map(|r| r.gauge(name)))
    }

    /// Pre-resolves the histogram named `name` for hot paths.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.registry.as_ref().map(|r| r.histogram(name)))
    }

    /// A deterministic snapshot (empty for the no-op sink).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }
}

/// A pre-resolved counter; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }
}

/// A pre-resolved gauge; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }
}

/// A pre-resolved histogram; no-op when built from a no-op [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        obs.counter_add("c", 1);
        obs.gauge_set("g", 1);
        obs.record("h", 1);
        obs.counter("c").inc();
        obs.gauge("g").add(1);
        obs.histogram("h").record(1);
        assert_eq!(obs.span("s", "").end(), 0);
        assert!(!obs.is_active());
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::active();
        let other = obs.clone();
        obs.counter_add("shared", 1);
        other.counter_add("shared", 1);
        let h = other.counter("shared");
        h.inc();
        assert_eq!(obs.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn default_is_noop() {
        assert!(!Obs::default().is_active());
    }

    /// Pre-resolving a handle registers the metric immediately at its
    /// zero value — so a long-lived service (`subseq-bist serve`) that
    /// resolves its counters and gauges at startup exports them from
    /// its very first `/metrics` render, before anything increments,
    /// and that cold render is schema-valid.
    #[test]
    fn pre_resolved_handles_export_at_zero() {
        let obs = Obs::active();
        let _requests = obs.counter("serve.requests");
        let _pending = obs.gauge("serve.queue.pending");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(0));
        assert_eq!(snap.gauge("serve.queue.pending"), Some(0));
        let rendered = export::render_json(&snap);
        assert_eq!(export::validate_metrics_json(&rendered), Ok(2));
    }

    #[test]
    fn cancel_tokens_share_state_across_clones() {
        let token = CancelToken::new();
        let other = token.clone();
        assert!(!token.is_cancelled());
        assert_eq!(token.kind(), None);
        other.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.kind(), Some(CancelKind::Requested));
        assert_eq!(token.deadline(), None);
    }

    #[test]
    fn deadline_tokens_expire() {
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        assert!(expired.is_cancelled());
        assert_eq!(expired.kind(), Some(CancelKind::DeadlineExpired));
        let future = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_secs(3600),
        );
        assert!(!future.is_cancelled());
        assert!(future.deadline().is_some());
        // An explicit cancel wins over the (unexpired) deadline.
        future.cancel();
        assert_eq!(future.kind(), Some(CancelKind::Requested));
    }

    #[test]
    fn obs_carries_a_cancel_token() {
        let obs = Obs::active();
        assert!(obs.cancel_token().is_none());
        assert!(!obs.is_cancelled());
        let token = CancelToken::new();
        let scoped = obs.with_cancel(token.clone());
        // The registry is shared; the token rides only the new handle.
        scoped.counter_add("shared", 1);
        assert_eq!(obs.snapshot().counter("shared"), Some(1));
        assert!(!scoped.is_cancelled());
        token.cancel();
        assert!(scoped.is_cancelled());
        assert!(scoped.cancel_token().is_some());
        assert!(!obs.is_cancelled());
    }
}
