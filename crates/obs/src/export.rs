//! Exporters for [`MetricsSnapshot`] and trace events — a
//! human-readable text table, a metrics JSON document and a trace
//! JSONL stream — plus strict schema validators in the
//! `bist_batch::jsonl` style (hand-rolled recursive descent, exact key
//! sets, no dependencies).

use crate::registry::{MetricsSnapshot, TraceEvent};
use std::fmt::Write as _;

/// The exact key sequence of one trace JSONL row.
pub const TRACE_KEYS: [&str; 4] = ["ts_us", "span", "labels", "dur_us"];

/// The exact top-level key sequence of the metrics JSON document.
pub const METRICS_KEYS: [&str; 3] = ["counters", "gauges", "histograms"];

/// The exact key sequence of one histogram object in the metrics JSON.
pub const HISTOGRAM_KEYS: [&str; 7] = ["count", "sum", "min", "max", "p50", "p90", "p99"];

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders the snapshot as an aligned, human-readable text table
/// (sections in [`METRICS_KEYS`] order; empty sections are skipped).
#[must_use]
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let width = snapshot
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snapshot.gauges.iter().map(|(n, _)| n.len()))
        .chain(snapshot.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    if !snapshot.counters.is_empty() {
        out.push_str("counters\n");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms\n");
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  count={} sum={} min={} max={} p50={} p90={} p99={}",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the snapshot as one metrics JSON document:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// sum, min, max, p50, p90, p99}}}`. Deterministic: names stay in the
/// snapshot's sorted order.
#[must_use]
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_str_json(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str(if snapshot.counters.is_empty() { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in snapshot.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_str_json(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str(if snapshot.gauges.is_empty() { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        push_str_json(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
        );
    }
    out.push_str(if snapshot.histograms.is_empty() { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

/// Renders one trace event as a single-line JSON object with exactly
/// the [`TRACE_KEYS`] keys.
#[must_use]
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"ts_us\": {}, \"span\": ", event.ts_us);
    push_str_json(&mut out, &event.span);
    out.push_str(", \"labels\": ");
    push_str_json(&mut out, &event.labels);
    let _ = write!(out, ", \"dur_us\": {}}}", event.dur_us);
    out
}

/// Renders events as a JSONL stream, one [`event_to_json`] row per
/// line.
#[must_use]
pub fn render_trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// A parsed JSON value (integers only — the schemas emit no floats;
/// `i128` covers the full `u64` and `i64` ranges).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Json {
    Int(i128),
    Str(String),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'-' | b'0'..=b'9') => self.parse_int(),
            Some(other) => Err(self.err(&format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_int(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the schema"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i128>().map(Json::Int).map_err(|_| self.err("integer out of range"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }
}

fn as_object(value: &Json, what: &str) -> Result<Vec<(String, Json)>, String> {
    match value {
        Json::Object(fields) => Ok(fields.clone()),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn as_int(value: &Json, what: &str) -> Result<i64, String> {
    match value {
        Json::Int(v) => i64::try_from(*v).map_err(|_| format!("{what}: integer out of i64 range")),
        _ => Err(format!("{what}: expected an integer")),
    }
}

fn as_nonneg(value: &Json, what: &str) -> Result<u64, String> {
    match value {
        Json::Int(v) => u64::try_from(*v)
            .map_err(|_| format!("{what}: expected a non-negative integer in u64 range, got {v}")),
        _ => Err(format!("{what}: expected an integer")),
    }
}

fn expect_keys(fields: &[(String, Json)], keys: &[&str], what: &str) -> Result<(), String> {
    let got: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if got == keys {
        Ok(())
    } else {
        Err(format!("{what}: keys {got:?}, expected {keys:?}"))
    }
}

/// Validates one trace JSONL row: exactly the [`TRACE_KEYS`] keys in
/// order, `ts_us`/`dur_us` non-negative integers, `span`/`labels`
/// strings with `span` non-empty.
///
/// # Errors
///
/// A description of the first schema violation.
pub fn validate_trace_jsonl_line(line: &str) -> Result<(), String> {
    let mut parser = Parser::new(line);
    let value = parser.parse_value()?;
    parser.finish()?;
    let fields = as_object(&value, "trace row")?;
    expect_keys(&fields, &TRACE_KEYS, "trace row")?;
    as_nonneg(&fields[0].1, "ts_us")?;
    let Json::Str(span) = &fields[1].1 else {
        return Err("span: expected a string".to_string());
    };
    if span.is_empty() {
        return Err("span: must be non-empty".to_string());
    }
    if !matches!(&fields[2].1, Json::Str(_)) {
        return Err("labels: expected a string".to_string());
    }
    as_nonneg(&fields[3].1, "dur_us")?;
    Ok(())
}

/// Validates a whole trace JSONL stream, returning the row count.
///
/// # Errors
///
/// The first offending line number and its schema violation.
pub fn validate_trace_jsonl(text: &str) -> Result<usize, String> {
    let mut rows = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_trace_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows += 1;
    }
    Ok(rows)
}

/// Validates a metrics JSON document: top-level [`METRICS_KEYS`]
/// objects, counter/histogram values non-negative, gauge values
/// integers, each histogram carrying exactly [`HISTOGRAM_KEYS`].
/// Returns the total number of metrics.
///
/// # Errors
///
/// A description of the first schema violation.
pub fn validate_metrics_json(text: &str) -> Result<usize, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.finish()?;
    let fields = as_object(&value, "metrics document")?;
    expect_keys(&fields, &METRICS_KEYS, "metrics document")?;
    let mut total = 0;
    for (name, v) in &as_object(&fields[0].1, "counters")? {
        as_nonneg(v, &format!("counter `{name}`"))?;
        total += 1;
    }
    for (name, v) in &as_object(&fields[1].1, "gauges")? {
        as_int(v, &format!("gauge `{name}`"))?;
        total += 1;
    }
    for (name, v) in &as_object(&fields[2].1, "histograms")? {
        let h = as_object(v, &format!("histogram `{name}`"))?;
        expect_keys(&h, &HISTOGRAM_KEYS, &format!("histogram `{name}`"))?;
        for (key, field) in &h {
            as_nonneg(field, &format!("histogram `{name}`.{key}"))?;
        }
        total += 1;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("cache.tape.hit").add(3);
        r.counter("cache.tape.miss").inc();
        r.gauge("pool.queue_depth").set(-2);
        for v in [10, 100, 1000] {
            r.histogram("pool.queue_wait_us").record(v);
        }
        r.snapshot()
    }

    #[test]
    fn metrics_json_round_trips_through_validator() {
        let json = render_json(&sample_snapshot());
        assert_eq!(validate_metrics_json(&json).unwrap(), 4);
        // Empty snapshot is also schema-valid.
        assert_eq!(validate_metrics_json(&render_json(&MetricsSnapshot::default())).unwrap(), 0);
    }

    #[test]
    fn metrics_validator_rejects_malformed_documents() {
        assert!(validate_metrics_json("{}").is_err());
        assert!(validate_metrics_json("{\"counters\": {}, \"gauges\": {}}").is_err());
        assert!(validate_metrics_json(
            "{\"counters\": {\"c\": -1}, \"gauges\": {}, \"histograms\": {}}"
        )
        .is_err());
        assert!(validate_metrics_json(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": {\"count\": 1}}}"
        )
        .is_err());
        assert!(validate_metrics_json("{\"counters\": {}, \"gauges\": {}, \"histograms\": {}} x")
            .is_err());
    }

    #[test]
    fn trace_jsonl_round_trips_through_validator() {
        // Satellite: schema round-trip, including escaping.
        let events = vec![
            TraceEvent {
                ts_us: 0,
                span: "session.t0_us".to_string(),
                labels: String::new(),
                dur_us: 42,
            },
            TraceEvent {
                ts_us: 17,
                span: "session.fault_sim_us".to_string(),
                labels: "circuit=\"s27\"\nbackend=packed\t\\".to_string(),
                dur_us: u64::MAX,
            },
        ];
        let text = render_trace_jsonl(&events);
        assert_eq!(validate_trace_jsonl(&text).unwrap(), 2);
        // Parse each line back and compare fields.
        for (line, event) in text.lines().zip(&events) {
            let mut parser = Parser::new(line);
            let Json::Object(fields) = parser.parse_value().unwrap() else { panic!() };
            assert_eq!(fields[0].1, Json::Int(i128::from(event.ts_us)));
            assert_eq!(fields[1].1, Json::Str(event.span.clone()));
            assert_eq!(fields[2].1, Json::Str(event.labels.clone()));
            assert_eq!(fields[3].1, Json::Int(i128::from(event.dur_us)));
        }
    }

    #[test]
    fn trace_validator_rejects_bad_rows() {
        assert!(validate_trace_jsonl_line("{}").is_err());
        assert!(validate_trace_jsonl_line(
            "{\"ts_us\": -1, \"span\": \"s\", \"labels\": \"\", \"dur_us\": 0}"
        )
        .is_err());
        assert!(validate_trace_jsonl_line(
            "{\"ts_us\": 0, \"span\": \"\", \"labels\": \"\", \"dur_us\": 0}"
        )
        .is_err());
        assert!(validate_trace_jsonl_line(
            "{\"ts_us\": 0, \"span\": \"s\", \"dur_us\": 0, \"labels\": \"\"}"
        )
        .is_err());
        assert!(validate_trace_jsonl_line(
            "{\"ts_us\": 0.5, \"span\": \"s\", \"labels\": \"\", \"dur_us\": 0}"
        )
        .is_err());
        assert!(validate_trace_jsonl("not json\n").is_err());
    }

    #[test]
    fn text_table_lists_every_metric() {
        let text = render_text(&sample_snapshot());
        for name in ["cache.tape.hit", "cache.tape.miss", "pool.queue_depth", "pool.queue_wait_us"]
        {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("count=3"), "{text}");
        assert_eq!(render_text(&MetricsSnapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn u64_max_survives_the_trace_schema() {
        let event =
            TraceEvent { ts_us: 0, span: "s".to_string(), labels: String::new(), dur_us: u64::MAX };
        let line = event_to_json(&event);
        assert!(line.contains(&u64::MAX.to_string()));
        assert!(validate_trace_jsonl_line(&line).is_ok());
        // One past u64::MAX is out of schema range.
        let over = line.replace(&u64::MAX.to_string(), "18446744073709551616");
        assert!(validate_trace_jsonl_line(&over).is_err());
    }
}
