//! The three metric primitives: monotonic [`Counter`]s, signed
//! [`Gauge`]s and log₂-bucketed [`Histogram`]s.
//!
//! Everything is lock-free (relaxed atomics): recording a value is a
//! handful of `fetch_add`/`fetch_min`/`fetch_max` operations, cheap
//! enough for sweep-level hot paths. Cross-thread *ordering* is never
//! needed — metrics are observational, and snapshots taken after a
//! `join` see every recorded value through the join's happens-before
//! edge.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..=u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed latency/value histogram over `u64`.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` (the last bucket's upper bound saturates at
/// `u64::MAX`). Percentiles are estimated by linear interpolation
/// inside the bucket containing the target rank, then clamped to the
/// recorded `[min, max]` so single-value histograms report exactly.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index of `v`: 0 for 0, else `64 − leading_zeros(v)`.
#[must_use]
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time summary. Concurrent recorders
    /// may race individual fields; quiescent reads are exact.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let total: u64 = buckets.iter().sum();
        let pct = |p: f64| percentile(&buckets, total.max(1), min, max, p);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        }
    }
}

/// Estimates the `p`-th percentile (0 < p ≤ 100) from bucket counts.
fn percentile(buckets: &[u64; BUCKETS], total: u64, min: u64, max: u64, p: f64) -> u64 {
    // 1-based target rank, at least 1, at most `total`.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cum += n;
        if cum < rank {
            continue;
        }
        if i == 0 {
            return 0;
        }
        // Interpolate linearly inside [2^(i-1), 2^i).
        #[allow(clippy::cast_precision_loss)]
        let lo = (1u128 << (i - 1)) as f64;
        #[allow(clippy::cast_precision_loss)]
        let hi = (1u128 << i) as f64;
        #[allow(clippy::cast_precision_loss)]
        let within = (rank - (cum - n)) as f64 / n as f64;
        let est = lo + (hi - lo) * within;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let est = if est >= u64::MAX as f64 { u64::MAX } else { est as u64 };
        return est.clamp(min, max);
    }
    max
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(20);
        assert_eq!(g.get(), -10);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Satellite: 0, 1, u64::MAX and exact powers of two land where
        // the log₂ rule says they must.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for k in 0..64 {
            assert_eq!(bucket_of(1u64 << k), k + 1, "2^{k}");
            if k > 0 {
                assert_eq!(bucket_of((1u64 << k) - 1), k, "2^{k} - 1");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        for v in [0, 1, 5, 1u64 << 40, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!((s.count, s.sum, s.min, s.max), (1, v, v, v), "{v}");
            assert_eq!((s.p50, s.p90, s.p99), (v, v, v), "{v}");
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn uniform_percentiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        // p50 of 1..=1000 lives in bucket [512, 1024); interpolation
        // keeps it inside.
        assert!((256..=1000).contains(&s.p50), "p50 = {}", s.p50);
        assert!(s.p99 >= 512, "p99 = {}", s.p99);
    }
}
