//! Property-based tests of the sequence algebra and the hardware model.

use bist_expand::expansion::ExpansionConfig;
use bist_expand::hardware::OnChipExpander;
use bist_expand::{TestSequence, TestVector};
use proptest::prelude::*;

/// Strategy: a test sequence with 1..=12 vectors of width 1..=20.
fn sequences() -> impl Strategy<Value = TestSequence> {
    (1usize..=20, 1usize..=12).prop_flat_map(|(width, len)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), width), len)
            .prop_map(|rows| {
                TestSequence::from_vectors(
                    rows.iter().map(|bits| TestVector::from_bits(bits)).collect(),
                )
                .expect("nonempty, uniform width")
            })
    })
}

proptest! {
    #[test]
    fn expansion_length_is_8nl(s in sequences(), n in 1usize..=6) {
        let cfg = ExpansionConfig::new(n).unwrap();
        prop_assert_eq!(cfg.expand(&s).len(), 8 * n * s.len());
    }

    #[test]
    fn expansion_starts_with_s(s in sequences(), n in 1usize..=4) {
        // Sexp begins with S itself — the property Procedure 2's
        // termination argument relies on.
        let cfg = ExpansionConfig::new(n).unwrap();
        let sexp = cfg.expand(&s);
        for (i, v) in s.iter().enumerate() {
            prop_assert_eq!(&sexp[i], v);
        }
    }

    #[test]
    fn expansion_is_palindromic(s in sequences(), n in 1usize..=4) {
        let cfg = ExpansionConfig::new(n).unwrap();
        let sexp = cfg.expand(&s);
        prop_assert_eq!(sexp.reversed(), sexp);
    }

    #[test]
    fn phases_equal_reference(s in sequences(), n in 1usize..=4) {
        let cfg = ExpansionConfig::new(n).unwrap();
        prop_assert_eq!(cfg.expand_by_phases(&s), cfg.expand(&s));
    }

    #[test]
    fn hardware_equals_software(s in sequences(), n in 1usize..=4) {
        let cfg = ExpansionConfig::new(n).unwrap();
        let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
        hw.load(&s).unwrap();
        prop_assert_eq!(hw.run().unwrap(), cfg.expand(&s));
    }

    #[test]
    fn complement_is_involution(s in sequences()) {
        prop_assert_eq!(s.complemented().complemented(), s.clone());
    }

    #[test]
    fn reverse_is_involution(s in sequences()) {
        prop_assert_eq!(s.reversed().reversed(), s.clone());
    }

    #[test]
    fn shift_has_period_width(s in sequences()) {
        let w = s.width();
        prop_assert_eq!(s.shifted(w), s.clone());
        prop_assert_eq!(s.shifted(1).shifted(w - 1), s.clone());
    }

    #[test]
    fn shift_commutes_with_complement(s in sequences(), k in 0usize..8) {
        prop_assert_eq!(s.shifted(k).complemented(), s.complemented().shifted(k));
    }

    #[test]
    fn repetition_multiplies_length(s in sequences(), n in 1usize..=5) {
        let r = s.repeated(n).unwrap();
        prop_assert_eq!(r.len(), n * s.len());
        // Every copy equals the original.
        for copy in 0..n {
            for u in 0..s.len() {
                prop_assert_eq!(&r[copy * s.len() + u], &s[u]);
            }
        }
    }

    #[test]
    fn display_parse_round_trip(s in sequences()) {
        let text = s.to_string();
        let back: TestSequence = text.parse().unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn storage_bits_consistent(s in sequences()) {
        prop_assert_eq!(s.storage_bits(), s.len() * s.width());
    }
}
