//! Property-based tests of the sequence algebra, the streaming expansion
//! and the hardware model, over seeded random sequences (the offline
//! environment has no proptest; a deterministic sample loop plays its
//! role).

use bist_expand::expansion::{CustomExpansion, Expand, ExpansionConfig};
use bist_expand::hardware::OnChipExpander;
use bist_expand::{TestSequence, TestVector, VectorSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 96;

/// A random test sequence with 1..=12 vectors of width 1..=20.
fn random_sequence(rng: &mut StdRng) -> TestSequence {
    let width = rng.gen_range(1usize..=20);
    let len = rng.gen_range(1usize..=12);
    TestSequence::from_vectors(
        (0..len).map(|_| TestVector::from_fn(width, |_| rng.gen_bool(0.5))).collect(),
    )
    .expect("nonempty, uniform width")
}

fn for_each_case(mut f: impl FnMut(&mut StdRng, TestSequence)) {
    let mut rng = StdRng::seed_from_u64(0x5eed_ca5e);
    for _ in 0..CASES {
        let s = random_sequence(&mut rng);
        f(&mut rng, s);
    }
}

#[test]
fn expansion_length_is_8nl() {
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=6);
        let cfg = ExpansionConfig::new(n).unwrap();
        assert_eq!(cfg.expand(&s).len(), 8 * n * s.len());
    });
}

#[test]
fn expansion_starts_with_s() {
    // Sexp begins with S itself — the property Procedure 2's
    // termination argument relies on.
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=4);
        let cfg = ExpansionConfig::new(n).unwrap();
        let sexp = cfg.expand(&s);
        for (i, v) in s.iter().enumerate() {
            assert_eq!(&sexp[i], v);
        }
    });
}

#[test]
fn expansion_is_palindromic() {
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=4);
        let cfg = ExpansionConfig::new(n).unwrap();
        let sexp = cfg.expand(&s);
        assert_eq!(sexp.reversed(), sexp);
    });
}

#[test]
fn phases_equal_reference() {
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=4);
        let cfg = ExpansionConfig::new(n).unwrap();
        assert_eq!(cfg.expand_by_phases(&s), cfg.expand(&s));
    });
}

/// The tentpole equivalence, for every paper `n`: the lazy streaming
/// iterator, the materialized software reference and the cycle-accurate
/// hardware model produce the identical `Sexp`, vector for vector.
#[test]
fn streaming_equals_materialized_equals_hardware_for_paper_ns() {
    let mut rng = StdRng::seed_from_u64(1999);
    for _ in 0..CASES {
        let s = random_sequence(&mut rng);
        for n in [2usize, 4, 8, 16] {
            let cfg = ExpansionConfig::new(n).unwrap();
            let materialized = cfg.expand(&s);

            // Iterator view.
            let streamed = TestSequence::from_vectors(cfg.stream(&s).collect()).unwrap();
            assert_eq!(streamed, materialized, "iterator view, n={n}");

            // Replayable visit view (what the simulators consume).
            let mut visited = Vec::new();
            cfg.stream(&s).visit(&mut |t, v| {
                assert_eq!(t, visited.len());
                visited.push(v.clone());
                true
            });
            assert_eq!(
                TestSequence::from_vectors(visited).unwrap(),
                materialized,
                "visit view, n={n}"
            );

            // Hardware model, clock for clock.
            let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
            hw.load(&s).unwrap();
            let mut stream = cfg.stream(&s);
            let mut clocks = 0usize;
            while let Some(hw_vector) = hw.clock() {
                assert_eq!(Some(hw_vector), stream.next(), "clock {clocks} diverges, n={n}");
                clocks += 1;
            }
            assert!(stream.next().is_none(), "stream longer than hardware, n={n}");
            assert_eq!(clocks, 8 * n * s.len());
        }
    }
}

#[test]
fn custom_recipes_stream_like_they_expand() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES {
        let s = random_sequence(&mut rng);
        let recipe = CustomExpansion::new(rng.gen_range(1usize..=4))
            .unwrap()
            .complement(rng.gen_bool(0.5))
            .shift(rng.gen_bool(0.5))
            .reverse(rng.gen_bool(0.5));
        let streamed = TestSequence::from_vectors(recipe.stream(&s).collect()).unwrap();
        assert_eq!(streamed, Expand::expand(&recipe, &s), "{}", recipe.describe());
        assert_eq!(
            recipe.stream(&s).num_vectors(),
            recipe.length_factor() * s.len(),
            "{}",
            recipe.describe()
        );
    }
}

#[test]
fn hardware_equals_software() {
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=4);
        let cfg = ExpansionConfig::new(n).unwrap();
        let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
        hw.load(&s).unwrap();
        assert_eq!(hw.run().unwrap(), cfg.expand(&s));
    });
}

#[test]
fn complement_is_involution() {
    for_each_case(|_, s| {
        assert_eq!(s.complemented().complemented(), s);
    });
}

#[test]
fn reverse_is_involution() {
    for_each_case(|_, s| {
        assert_eq!(s.reversed().reversed(), s);
    });
}

#[test]
fn shift_has_period_width() {
    for_each_case(|_, s| {
        let w = s.width();
        assert_eq!(s.shifted(w), s);
        assert_eq!(s.shifted(1).shifted(w - 1), s);
    });
}

#[test]
fn shift_commutes_with_complement() {
    for_each_case(|rng, s| {
        let k = rng.gen_range(0usize..8);
        assert_eq!(s.shifted(k).complemented(), s.complemented().shifted(k));
    });
}

#[test]
fn repetition_multiplies_length() {
    for_each_case(|rng, s| {
        let n = rng.gen_range(1usize..=5);
        let r = s.repeated(n).unwrap();
        assert_eq!(r.len(), n * s.len());
        // Every copy equals the original.
        for copy in 0..n {
            for u in 0..s.len() {
                assert_eq!(&r[copy * s.len() + u], &s[u]);
            }
        }
    });
}

#[test]
fn display_parse_round_trip() {
    for_each_case(|_, s| {
        let text = s.to_string();
        let back: TestSequence = text.parse().unwrap();
        assert_eq!(back, s);
    });
}

#[test]
fn storage_bits_consistent() {
    for_each_case(|_, s| {
        assert_eq!(s.storage_bits(), s.len() * s.width());
    });
}
