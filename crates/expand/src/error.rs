use std::fmt;

/// Errors from sequence construction and expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExpandError {
    /// A vector of the wrong width was pushed into a sequence.
    WidthMismatch {
        /// Width the sequence expects.
        expected: usize,
        /// Width that was supplied.
        got: usize,
    },
    /// A vector or sequence literal contained a character other than
    /// `0`/`1` (or whitespace between vectors).
    BadLiteral {
        /// The offending character.
        ch: char,
    },
    /// A sequence literal was empty or a vector literal had zero width.
    Empty,
    /// The repetition count `n` must be at least 1.
    BadRepetition {
        /// The rejected value.
        got: usize,
    },
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::WidthMismatch { expected, got } => {
                write!(f, "vector width {got} does not match sequence width {expected}")
            }
            ExpandError::BadLiteral { ch } => {
                write!(f, "invalid character `{ch}` in vector literal (expected 0 or 1)")
            }
            ExpandError::Empty => write!(f, "empty vector or sequence literal"),
            ExpandError::BadRepetition { got } => {
                write!(f, "repetition count must be at least 1, got {got}")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ExpandError::WidthMismatch { expected: 3, got: 4 },
            ExpandError::BadLiteral { ch: 'x' },
            ExpandError::Empty,
            ExpandError::BadRepetition { got: 0 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ExpandError>();
    }
}
