use crate::ExpandError;
use std::fmt;
use std::str::FromStr;

/// A fully specified (binary) test vector over a circuit's primary inputs.
///
/// Bit 0 is the *leftmost* position — the first primary input in circuit
/// declaration order — matching the paper's notation where `S << 1` moves
/// every bit one position to the left with the leftmost bit wrapping to the
/// rightmost position.
///
/// Vectors of arbitrary width are supported (bits are packed into `u64`
/// words).
///
/// # Example
///
/// ```
/// use bist_expand::TestVector;
///
/// let v: TestVector = "001".parse()?;
/// assert_eq!(v.rotate_left(1).to_string(), "010");   // paper's example
/// let w: TestVector = "101".parse()?;
/// assert_eq!(w.rotate_left(1).to_string(), "011");   // paper's example
/// assert_eq!(w.complement().to_string(), "010");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TestVector {
    words: Vec<u64>,
    width: usize,
}

impl TestVector {
    /// An all-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "test vector width must be positive");
        TestVector { words: vec![0; width.div_ceil(64)], width }
    }

    /// An all-one vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn ones(width: usize) -> Self {
        let mut v = TestVector::zeros(width);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Builds a vector from a bit slice (`bits[0]` is the leftmost bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = TestVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds a vector of the given width from a function of bit index.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn from_fn(width: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = TestVector::zeros(width);
        for i in 0..width {
            v.set(i, f(i));
        }
        v
    }

    /// The number of bits (primary inputs).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads bit `i` (0 = leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.width, "bit index {i} out of range (width {})", self.width);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i` (0 = leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.width, "bit index {i} out of range (width {})", self.width);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Returns the complemented vector (every bit inverted).
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Returns the vector circularly shifted left by `k` positions:
    /// `out[i] = self[(i + k) mod width]`. `rotate_left(1)` is the paper's
    /// `S << 1` applied to one vector.
    #[must_use]
    pub fn rotate_left(&self, k: usize) -> Self {
        let m = self.width;
        let k = k % m;
        if k == 0 {
            return self.clone();
        }
        TestVector::from_fn(m, |i| self.get((i + k) % m))
    }

    /// Iterates over the bits from leftmost to rightmost.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.get(i))
    }

    /// Number of bits set to 1.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears bits beyond `width` in the last word (internal invariant).
    fn mask_tail(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }
}

impl fmt::Display for TestVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromStr for TestVector {
    type Err = ExpandError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ExpandError::Empty);
        }
        let mut bits = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                other => return Err(ExpandError::BadLiteral { ch: other }),
            }
        }
        Ok(TestVector::from_bits(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "0110", "10101010101010101010"] {
            let v: TestVector = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
            assert_eq!(v.width(), s.len());
        }
    }

    #[test]
    fn parse_rejects_bad_chars() {
        assert_eq!("01x1".parse::<TestVector>(), Err(ExpandError::BadLiteral { ch: 'x' }));
        assert_eq!("".parse::<TestVector>(), Err(ExpandError::Empty));
        assert_eq!("  ".parse::<TestVector>(), Err(ExpandError::Empty));
    }

    #[test]
    fn complement_is_involution() {
        let v: TestVector = "0110010".parse().unwrap();
        assert_eq!(v.complement().complement(), v);
        assert_eq!(v.complement().to_string(), "1001101");
    }

    #[test]
    fn complement_wide_vector_masks_tail() {
        let v = TestVector::zeros(70);
        let c = v.complement();
        assert_eq!(c.count_ones(), 70);
        assert_eq!(c, TestVector::ones(70));
    }

    #[test]
    fn rotation_matches_paper_examples() {
        // Paper §2: S = (001, 101), S << 1 = (010, 011).
        let a: TestVector = "001".parse().unwrap();
        let b: TestVector = "101".parse().unwrap();
        assert_eq!(a.rotate_left(1).to_string(), "010");
        assert_eq!(b.rotate_left(1).to_string(), "011");
    }

    #[test]
    fn rotation_has_period_width() {
        let v: TestVector = "1101001".parse().unwrap();
        assert_eq!(v.rotate_left(7), v);
        assert_eq!(v.rotate_left(3).rotate_left(4), v);
        assert_eq!(v.rotate_left(0), v);
    }

    #[test]
    fn rotation_across_word_boundary() {
        let mut v = TestVector::zeros(65);
        v.set(0, true);
        let r = v.rotate_left(1);
        // out[i] = in[(i+1) % 65]; in[0] = 1 so out[64] = 1.
        assert!(r.get(64));
        assert_eq!(r.count_ones(), 1);
    }

    #[test]
    fn get_set_across_words() {
        let mut v = TestVector::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = TestVector::zeros(4);
        let _ = v.get(4);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = TestVector::zeros(0);
    }

    #[test]
    fn from_fn_and_iter_agree() {
        let v = TestVector::from_fn(9, |i| i % 3 == 0);
        let bits: Vec<bool> = v.iter().collect();
        assert_eq!(bits, (0..9).map(|i| i % 3 == 0).collect::<Vec<_>>());
    }
}
