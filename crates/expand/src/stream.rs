//! Streaming (lazy) views of test-vector sequences.
//!
//! The materialized [`expand`](crate::expansion::ExpansionConfig::expand)
//! allocates all `8·n·|S|` vectors of `Sexp` up front. The on-chip
//! hardware never does that: it re-walks the loaded memory once per phase,
//! producing one vector per clock. [`ExpansionIter`] is the software
//! equivalent — it computes each vector of `Sexp` on the fly from the
//! loaded sequence and the flat phase schedule, clock-for-clock identical
//! to [`OnChipExpander`](crate::hardware::OnChipExpander).
//!
//! [`VectorSource`] abstracts "a finite, replayable stream of equally
//! wide vectors" so that fault simulators can consume either a stored
//! [`TestSequence`] or a lazy expansion without the caller materializing
//! anything.

use crate::expansion::Phase;
use crate::{TestSequence, TestVector};

/// A finite, replayable stream of equally wide test vectors.
///
/// Implementors must produce the same vectors on every [`visit`] — fault
/// simulators replay the stream once per fault chunk. `Sync` is a
/// supertrait so that thread-sharded simulators can replay one stream
/// concurrently from several worker threads; [`visit`] takes `&self`, so
/// implementors need no interior mutability to satisfy it.
///
/// [`visit`]: VectorSource::visit
pub trait VectorSource: Sync {
    /// The vector width (number of primary inputs driven).
    fn width(&self) -> usize;

    /// Number of vectors in the stream.
    fn num_vectors(&self) -> usize;

    /// Whether the stream holds no vectors.
    fn is_empty(&self) -> bool {
        self.num_vectors() == 0
    }

    /// Visits every vector in application order. The visitor receives the
    /// time unit and the vector and returns `true` to continue; returning
    /// `false` stops the walk early (used by simulators once every fault
    /// of a pass has been detected).
    fn visit(&self, visitor: &mut dyn FnMut(usize, &TestVector) -> bool);

    /// Collects the stream into a stored sequence (mainly for tests and
    /// hardware co-simulation; defeats the purpose on hot paths).
    fn materialize(&self) -> TestSequence {
        let mut out = TestSequence::new(self.width());
        self.visit(&mut |_, v| {
            out.push(v.clone()).expect("uniform width by contract");
            true
        });
        out
    }
}

impl VectorSource for TestSequence {
    fn width(&self) -> usize {
        TestSequence::width(self)
    }

    fn num_vectors(&self) -> usize {
        TestSequence::len(self)
    }

    fn visit(&self, visitor: &mut dyn FnMut(usize, &TestVector) -> bool) {
        for (t, v) in self.iter().enumerate() {
            if !visitor(t, v) {
                return;
            }
        }
    }
}

/// A lazy `Sexp` stream: the expansion of a loaded sequence, produced one
/// vector at a time from a flat [`Phase`] schedule.
///
/// Obtained from [`Expand::stream`](crate::expansion::Expand::stream).
/// Implements [`Iterator`] for consumption and [`VectorSource`] for
/// replayable simulation; `visit` always replays the *entire* expansion,
/// regardless of how far the iterator cursor has advanced.
///
/// # Example
///
/// ```
/// use bist_expand::expansion::{Expand, ExpansionConfig};
/// use bist_expand::{TestSequence, VectorSource};
///
/// let s: TestSequence = "000 110".parse()?;
/// let cfg = ExpansionConfig::new(2)?;
/// let streamed = TestSequence::from_vectors(cfg.stream(&s).collect())?;
/// assert_eq!(streamed, cfg.expand(&s));
/// assert_eq!(cfg.stream(&s).len(), 8 * 2 * s.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExpansionIter<'s> {
    seq: &'s TestSequence,
    phases: Vec<Phase>,
    /// Current phase index (== `phases.len()` when exhausted).
    phase_idx: usize,
    /// Completed walks within the current phase.
    rep: usize,
    /// Offset within the current walk (0-based regardless of direction).
    pos: usize,
}

impl<'s> ExpansionIter<'s> {
    /// Creates a stream over `seq` for the given phase schedule.
    ///
    /// Degenerate inputs are well-defined rather than panics: an empty
    /// loaded sequence (or an all-zero-rep schedule) yields an empty
    /// stream — [`next`](Iterator::next) returns `None` and
    /// [`visit`](VectorSource::visit) makes no calls — identically on
    /// every replay. Zero-rep phases are skipped.
    #[must_use]
    pub fn new(seq: &'s TestSequence, phases: Vec<Phase>) -> Self {
        ExpansionIter { seq, phases, phase_idx: 0, rep: 0, pos: 0 }
    }

    /// The loaded sequence being expanded.
    #[must_use]
    pub fn loaded(&self) -> &'s TestSequence {
        self.seq
    }

    /// The phase schedule driving the stream.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total stream length: `|S| · Σ reps`.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.seq.len() * self.phases.iter().map(|p| p.reps).sum::<usize>()
    }

    /// Vectors already emitted through the iterator cursor.
    #[must_use]
    pub fn emitted(&self) -> usize {
        let walk = self.seq.len();
        let before: usize = self.phases[..self.phase_idx].iter().map(|p| p.reps * walk).sum();
        before + self.rep * walk + self.pos
    }

    /// The memory address read by phase `p` at walk offset `pos`.
    fn address(&self, p: &Phase, pos: usize) -> usize {
        if p.reverse {
            self.seq.len() - 1 - pos
        } else {
            pos
        }
    }
}

impl Iterator for ExpansionIter<'_> {
    type Item = TestVector;

    fn next(&mut self) -> Option<TestVector> {
        if self.seq.is_empty() {
            return None;
        }
        // Skip zero-rep phases (degenerate but legal schedules).
        while self.phase_idx < self.phases.len() && self.phases[self.phase_idx].reps == 0 {
            self.phase_idx += 1;
        }
        if self.phase_idx == self.phases.len() {
            return None;
        }
        let phase = self.phases[self.phase_idx];
        let out = phase.transform(&self.seq[self.address(&phase, self.pos)]);
        self.pos += 1;
        if self.pos == self.seq.len() {
            self.pos = 0;
            self.rep += 1;
            if self.rep == phase.reps {
                self.rep = 0;
                self.phase_idx += 1;
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total_len() - self.emitted();
        (left, Some(left))
    }
}

impl ExactSizeIterator for ExpansionIter<'_> {}

impl VectorSource for ExpansionIter<'_> {
    fn width(&self) -> usize {
        self.seq.width()
    }

    fn num_vectors(&self) -> usize {
        self.total_len()
    }

    fn visit(&self, visitor: &mut dyn FnMut(usize, &TestVector) -> bool) {
        // Replay through a cursor-reset copy so the walk logic lives only
        // in `Iterator::next`.
        let fresh = ExpansionIter::new(self.seq, self.phases.clone());
        for (t, v) in fresh.enumerate() {
            if !visitor(t, &v) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{CustomExpansion, Expand, ExpansionConfig};

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn iterator_equals_materialized_table1() {
        let s = seq("000 110");
        let cfg = ExpansionConfig::new(2).unwrap();
        let collected = TestSequence::from_vectors(cfg.stream(&s).collect()).unwrap();
        assert_eq!(collected, cfg.expand(&s));
    }

    #[test]
    fn visit_equals_iterator_and_restarts() {
        let s = seq("0010 1101 0111");
        for n in [1, 2, 4, 8, 16] {
            let cfg = ExpansionConfig::new(n).unwrap();
            let stream = cfg.stream(&s);
            let via_iter: Vec<TestVector> = stream.clone().collect();
            // visit twice: the stream must replay identically.
            for _ in 0..2 {
                let mut via_visit = Vec::new();
                stream.visit(&mut |t, v| {
                    assert_eq!(t, via_visit.len());
                    via_visit.push(v.clone());
                    true
                });
                assert_eq!(via_visit, via_iter, "n={n}");
            }
        }
    }

    #[test]
    fn visit_ignores_iterator_cursor() {
        let s = seq("01 10 11");
        let cfg = ExpansionConfig::new(2).unwrap();
        let mut stream = cfg.stream(&s);
        let full: Vec<TestVector> = stream.clone().collect();
        let _ = stream.next();
        let _ = stream.next();
        let mut replay = Vec::new();
        stream.visit(&mut |_, v| {
            replay.push(v.clone());
            true
        });
        assert_eq!(replay, full, "visit replays from the start");
    }

    #[test]
    fn early_exit_stops_walk() {
        let s = seq("01 10");
        let cfg = ExpansionConfig::new(4).unwrap();
        let stream = cfg.stream(&s);
        let mut seen = 0usize;
        stream.visit(&mut |_, _| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn exact_size_counts_down() {
        let s = seq("011 101");
        let cfg = ExpansionConfig::new(2).unwrap();
        let mut stream = cfg.stream(&s);
        let total = stream.total_len();
        assert_eq!(total, 8 * 2 * 2);
        for left in (0..total).rev() {
            assert_eq!(stream.len(), left + 1);
            stream.next().unwrap();
        }
        assert_eq!(stream.len(), 0);
        assert!(stream.next().is_none());
    }

    #[test]
    fn custom_recipe_streams_equal_expand() {
        let s = seq("001 110 010 101");
        for (c, sh, r) in [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, false),
            (true, false, true),
            (false, true, true),
            (true, true, true),
        ] {
            for n in [1, 2, 3] {
                let recipe = CustomExpansion::new(n).unwrap().complement(c).shift(sh).reverse(r);
                let streamed = TestSequence::from_vectors(recipe.stream(&s).collect()).unwrap();
                assert_eq!(
                    streamed,
                    Expand::expand(&recipe, &s),
                    "recipe {} n={n}",
                    recipe.describe()
                );
            }
        }
    }

    #[test]
    fn empty_sequence_streams_empty_on_every_replay() {
        let s = TestSequence::new(3);
        let cfg = ExpansionConfig::new(4).unwrap();
        let mut stream = cfg.stream(&s);
        assert_eq!(stream.total_len(), 0);
        assert_eq!(VectorSource::num_vectors(&stream), 0);
        assert!(VectorSource::is_empty(&stream));
        assert!(stream.next().is_none());
        assert!(stream.next().is_none(), "stays exhausted");
        // visit must make no calls — identically on every replay.
        for _ in 0..3 {
            stream.visit(&mut |_, _| panic!("empty stream must not visit"));
        }
        assert_eq!(stream.materialize(), s);
        // The materialized expansion of an empty sequence is empty too.
        assert_eq!(cfg.expand(&s), s);
    }

    #[test]
    fn zero_rep_phases_are_skipped() {
        let s = seq("01 10");
        let phases = vec![
            Phase { reverse: false, shift: false, complement: false, reps: 0 },
            Phase { reverse: false, shift: false, complement: true, reps: 1 },
            Phase { reverse: false, shift: false, complement: false, reps: 0 },
        ];
        let stream = ExpansionIter::new(&s, phases);
        assert_eq!(stream.total_len(), 2);
        let out = TestSequence::from_vectors(stream.clone().collect()).unwrap();
        assert_eq!(out.to_string(), "10 01");
        // Replay through visit matches the iterator.
        assert_eq!(stream.materialize(), out);
        // All-zero-rep schedules are an empty stream.
        let none = ExpansionIter::new(
            &s,
            vec![Phase { reverse: true, shift: true, complement: true, reps: 0 }],
        );
        assert_eq!(none.total_len(), 0);
        assert_eq!(none.clone().count(), 0);
        none.visit(&mut |_, _| panic!("must not visit"));
    }

    #[test]
    fn single_vector_sequence_replays_consistently() {
        let s = seq("1011");
        for n in [1, 2, 4] {
            let cfg = ExpansionConfig::new(n).unwrap();
            let stream = cfg.stream(&s);
            assert_eq!(stream.total_len(), 8 * n);
            let first = stream.materialize();
            let second = stream.materialize();
            assert_eq!(first, second, "replays identical at n={n}");
            assert_eq!(first, cfg.expand(&s), "stream equals materialized at n={n}");
        }
    }

    #[test]
    fn materialize_round_trips() {
        let s = seq("0110 1001");
        let cfg = ExpansionConfig::new(3).unwrap();
        assert_eq!(cfg.stream(&s).materialize(), cfg.expand(&s));
        assert_eq!(VectorSource::materialize(&s), s);
    }

    #[test]
    fn sequence_is_a_vector_source() {
        let s = seq("01 10 11");
        assert_eq!(VectorSource::num_vectors(&s), 3);
        assert_eq!(VectorSource::width(&s), 2);
        let mut seen = Vec::new();
        VectorSource::visit(&s, &mut |t, v| {
            seen.push((t, v.clone()));
            true
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2].1, s[2]);
    }
}
