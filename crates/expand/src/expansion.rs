//! The paper's expansion function `S → Sexp`.
//!
//! Section 2 composes the four operations into a single fixed recipe:
//!
//! ```text
//! S'    = S^n
//! S''   = S' · ~S'
//! S'''  = S'' · (S'' << 1)
//! Sexp  = S''' · r(S''')
//! ```
//!
//! giving `|Sexp| = 8·n·|S|`. The expansion is *the* test sequence applied
//! to the circuit; the loaded `S` itself is never applied directly.
//!
//! [`ExpansionConfig::expand`] computes `Sexp` by the definition above.
//! [`ExpansionConfig::phases`] exposes the equivalent flat phase schedule —
//! eight segments, each re-walking the stored memory with fixed
//! complement/shift/direction mux settings — which is exactly what the
//! hardware FSM executes. Unit tests prove both views identical.

use crate::stream::ExpansionIter;
use crate::{ExpandError, TestSequence, TestVector};
use std::fmt;

/// Anything that can expand a loaded sequence into an applied sequence.
///
/// Implemented by [`ExpansionConfig`] (the paper's full recipe) and
/// [`CustomExpansion`] (arbitrary subsets of the four operations, used by
/// the ablation study). The selection procedures in `bist-core` are
/// written against this trait, so the whole scheme can be re-run under a
/// weaker expander to measure what each operation buys.
///
/// Every recipe is equivalent to a flat [`Phase`] schedule — a list of
/// memory walks with fixed mux settings — which is what the on-chip
/// hardware executes and what [`stream`](Expand::stream) replays lazily.
/// The hot paths in `bist-core` consume the stream, so the full
/// `length_factor()·|S|`-vector expansion is never materialized there.
pub trait Expand {
    /// Expands `s` into the sequence applied to the circuit
    /// (materialized; prefer [`stream`](Expand::stream) on hot paths).
    fn expand(&self, s: &TestSequence) -> TestSequence;

    /// The fixed length multiplier: `expand(s).len() == length_factor() * s.len()`.
    fn length_factor(&self) -> usize;

    /// The flat phase schedule equivalent to [`expand`](Expand::expand):
    /// each entry re-walks the loaded memory with fixed complement /
    /// shift / direction settings.
    fn phase_schedule(&self) -> Vec<Phase>;

    /// A lazy, replayable view of `expand(s)` computed one vector at a
    /// time from the phase schedule — no `Sexp` allocation.
    fn stream<'s>(&self, s: &'s TestSequence) -> ExpansionIter<'s> {
        ExpansionIter::new(s, self.phase_schedule())
    }
}

/// One of the eight segments of `Sexp`.
///
/// During a phase the test memory is walked once per repetition (`reps`
/// times total), in ascending address order (`reverse == false`) or
/// descending order (`reverse == true`), with the complement and shift
/// multiplexers held at fixed settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Phase {
    /// Walk the memory in descending address order.
    pub reverse: bool,
    /// Route memory outputs through the circular-shift multiplexer.
    pub shift: bool,
    /// Route memory outputs through the inverters.
    pub complement: bool,
    /// Number of memory walks in this phase (the repetition count `n`).
    pub reps: usize,
}

impl Phase {
    /// Applies this phase's vector transformation to one memory word.
    #[must_use]
    pub fn transform(&self, v: &TestVector) -> TestVector {
        let v = if self.shift { v.rotate_left(1) } else { v.clone() };
        if self.complement {
            v.complement()
        } else {
            v
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}×{}",
            if self.reverse { "r" } else { "f" },
            if self.complement { "c" } else { "-" },
            if self.shift { "s" } else { "-" },
            self.reps
        )
    }
}

/// Configuration of the expansion function: the repetition count `n`.
///
/// The paper evaluates `n ∈ {2, 4, 8, 16}` and uses `n = 1` in the worked
/// s27 example; any `n ≥ 1` is accepted.
///
/// # Example
///
/// ```
/// use bist_expand::expansion::ExpansionConfig;
/// use bist_expand::TestSequence;
///
/// let cfg = ExpansionConfig::new(1)?;
/// let s: TestSequence = "1011".parse()?;
/// // §3.1 worked example: expanding T0[9,9] = (1011) with n = 1.
/// assert_eq!(
///     cfg.expand(&s).to_string(),
///     "1011 0100 0111 1000 1000 0111 0100 1011"
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpansionConfig {
    n: usize,
}

impl ExpansionConfig {
    /// Creates a configuration with repetition count `n`.
    ///
    /// # Errors
    ///
    /// [`ExpandError::BadRepetition`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, ExpandError> {
        if n == 0 {
            return Err(ExpandError::BadRepetition { got: 0 });
        }
        Ok(ExpansionConfig { n })
    }

    /// The repetition count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Length of `Sexp` for a loaded sequence of length `len`: `8·n·len`.
    #[must_use]
    pub fn expanded_len(&self, len: usize) -> usize {
        8 * self.n * len
    }

    /// Computes `Sexp` from `S` by the paper's definition.
    #[must_use]
    pub fn expand(&self, s: &TestSequence) -> TestSequence {
        let s1 = s.repeated(self.n).expect("n >= 1 by construction");
        let s2 = s1.concat(&s1.complemented()).expect("same width");
        let s3 = s2.concat(&s2.shifted(1)).expect("same width");
        s3.concat(&s3.reversed()).expect("same width")
    }

    /// The flat phase schedule equivalent to [`expand`](Self::expand):
    /// eight memory walks with fixed mux settings.
    ///
    /// Forward half (`S'''`): plain, complemented, shifted,
    /// complemented+shifted. Reverse half (`rS'''`): the same four in
    /// reverse order, walked backwards.
    #[must_use]
    pub fn phases(&self) -> [Phase; 8] {
        let n = self.n;
        let p = |reverse, complement, shift| Phase { reverse, shift, complement, reps: n };
        [
            p(false, false, false),
            p(false, true, false),
            p(false, false, true),
            p(false, true, true),
            p(true, true, true),
            p(true, false, true),
            p(true, true, false),
            p(true, false, false),
        ]
    }

    /// Computes `Sexp` by executing the phase schedule (the hardware's
    /// view). Equal to [`expand`](Self::expand) for every input; the
    /// software definition is kept as the reference.
    #[must_use]
    pub fn expand_by_phases(&self, s: &TestSequence) -> TestSequence {
        let len = s.len();
        let mut out = TestSequence::new(s.width());
        for phase in self.phases() {
            for _ in 0..phase.reps {
                for t in 0..len {
                    let addr = if phase.reverse { len - 1 - t } else { t };
                    out.push(phase.transform(&s[addr])).expect("same width");
                }
            }
        }
        out
    }
}

impl Expand for ExpansionConfig {
    fn expand(&self, s: &TestSequence) -> TestSequence {
        ExpansionConfig::expand(self, s)
    }

    fn length_factor(&self) -> usize {
        8 * self.n
    }

    fn phase_schedule(&self) -> Vec<Phase> {
        self.phases().to_vec()
    }
}

/// An arbitrary subset of the paper's expansion recipe, for ablation.
///
/// The stages compose exactly like the paper's (`repeat`, then
/// `· complement`, then `· shift`, then `· reverse`), but each doubling
/// stage can be disabled. With every stage enabled this is identical to
/// [`ExpansionConfig`]; with everything disabled it degenerates to plain
/// repetition (`repeat = 1` ⇒ the identity: loading `T0` fragments and
/// replaying them verbatim).
///
/// # Example
///
/// ```
/// use bist_expand::expansion::{CustomExpansion, Expand, ExpansionConfig};
/// use bist_expand::TestSequence;
///
/// let s: TestSequence = "000 110".parse()?;
/// let full = CustomExpansion::new(2)?.complement(true).shift(true).reverse(true);
/// assert_eq!(Expand::expand(&full, &s), ExpansionConfig::new(2)?.expand(&s));
/// let plain = CustomExpansion::new(1)?;
/// assert_eq!(Expand::expand(&plain, &s), s);   // identity
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomExpansion {
    repeat: usize,
    use_complement: bool,
    use_shift: bool,
    use_reverse: bool,
}

impl CustomExpansion {
    /// Repetition-only recipe with `n ≥ 1` repeats.
    ///
    /// # Errors
    ///
    /// [`ExpandError::BadRepetition`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, ExpandError> {
        if n == 0 {
            return Err(ExpandError::BadRepetition { got: 0 });
        }
        Ok(CustomExpansion {
            repeat: n,
            use_complement: false,
            use_shift: false,
            use_reverse: false,
        })
    }

    /// Enables/disables the complementation stage.
    #[must_use]
    pub fn complement(mut self, on: bool) -> Self {
        self.use_complement = on;
        self
    }

    /// Enables/disables the circular-shift stage.
    #[must_use]
    pub fn shift(mut self, on: bool) -> Self {
        self.use_shift = on;
        self
    }

    /// Enables/disables the reversal stage.
    #[must_use]
    pub fn reverse(mut self, on: bool) -> Self {
        self.use_reverse = on;
        self
    }

    /// Short recipe description, e.g. `"n4+c+s+r"`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "n{}{}{}{}",
            self.repeat,
            if self.use_complement { "+c" } else { "" },
            if self.use_shift { "+s" } else { "" },
            if self.use_reverse { "+r" } else { "" },
        )
    }
}

impl Expand for CustomExpansion {
    fn expand(&self, s: &TestSequence) -> TestSequence {
        let mut cur = s.repeated(self.repeat).expect("repeat >= 1");
        if self.use_complement {
            cur = cur.concat(&cur.complemented()).expect("same width");
        }
        if self.use_shift {
            cur = cur.concat(&cur.shifted(1)).expect("same width");
        }
        if self.use_reverse {
            cur = cur.concat(&cur.reversed()).expect("same width");
        }
        cur
    }

    fn length_factor(&self) -> usize {
        self.repeat
            * (1 << (usize::from(self.use_complement)
                + usize::from(self.use_shift)
                + usize::from(self.use_reverse)))
    }

    fn phase_schedule(&self) -> Vec<Phase> {
        // Each enabled doubling stage concatenates the current stream
        // with a transformed copy of itself; on the phase schedule that
        // is "append every phase with one mux toggled". Reversal also
        // flips segment order and walk direction (r(A·B) = rB·rA).
        let mut phases =
            vec![Phase { reverse: false, shift: false, complement: false, reps: self.repeat }];
        if self.use_complement {
            let tail: Vec<Phase> =
                phases.iter().map(|p| Phase { complement: !p.complement, ..*p }).collect();
            phases.extend(tail);
        }
        if self.use_shift {
            let tail: Vec<Phase> = phases.iter().map(|p| Phase { shift: !p.shift, ..*p }).collect();
            phases.extend(tail);
        }
        if self.use_reverse {
            let tail: Vec<Phase> =
                phases.iter().rev().map(|p| Phase { reverse: !p.reverse, ..*p }).collect();
            phases.extend(tail);
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    /// The golden test: Table 1 of the paper, reproduced bit for bit.
    #[test]
    fn table1_golden() {
        let s = seq("000 110");
        let cfg = ExpansionConfig::new(2).unwrap();

        let s1 = s.repeated(2).unwrap();
        assert_eq!(s1.to_string(), "000 110 000 110");

        let s2 = s1.concat(&s1.complemented()).unwrap();
        assert_eq!(s2.to_string(), "000 110 000 110 111 001 111 001");

        let s3 = s2.concat(&s2.shifted(1)).unwrap();
        assert_eq!(
            s3.to_string(),
            "000 110 000 110 111 001 111 001 000 101 000 101 111 010 111 010"
        );

        let sexp = cfg.expand(&s);
        assert_eq!(
            sexp.to_string(),
            "000 110 000 110 111 001 111 001 \
             000 101 000 101 111 010 111 010 \
             010 111 010 111 101 000 101 000 \
             001 111 001 111 110 000 110 000"
        );
    }

    /// The s27 worked example in §3.1: T' = (1011), n = 1.
    #[test]
    fn s27_single_vector_expansion() {
        let cfg = ExpansionConfig::new(1).unwrap();
        let sexp = cfg.expand(&seq("1011"));
        assert_eq!(sexp.to_string(), "1011 0100 0111 1000 1000 0111 0100 1011");
    }

    #[test]
    fn expanded_len_is_8nl() {
        for n in [1, 2, 4, 8, 16] {
            let cfg = ExpansionConfig::new(n).unwrap();
            for l in [1, 2, 5, 9] {
                let s = TestSequence::from_vectors(
                    (0..l).map(|i| TestVector::from_fn(5, |b| (b + i) % 2 == 0)).collect(),
                )
                .unwrap();
                let sexp = cfg.expand(&s);
                assert_eq!(sexp.len(), 8 * n * l);
                assert_eq!(sexp.len(), cfg.expanded_len(l));
            }
        }
    }

    #[test]
    fn phases_equal_reference() {
        for n in [1, 2, 3, 4] {
            let cfg = ExpansionConfig::new(n).unwrap();
            let s = seq("0010 1101 0111");
            assert_eq!(cfg.expand_by_phases(&s), cfg.expand(&s), "n={n}");
        }
    }

    #[test]
    fn phase_count_and_structure() {
        let cfg = ExpansionConfig::new(4).unwrap();
        let phases = cfg.phases();
        assert_eq!(phases.len(), 8);
        // First four forward, last four reverse.
        assert!(phases[..4].iter().all(|p| !p.reverse));
        assert!(phases[4..].iter().all(|p| p.reverse));
        // Mirror symmetry: phase 7-i has the same muxes as phase i.
        for i in 0..4 {
            assert_eq!(phases[i].complement, phases[7 - i].complement);
            assert_eq!(phases[i].shift, phases[7 - i].shift);
        }
        assert!(phases.iter().all(|p| p.reps == 4));
    }

    #[test]
    fn sexp_is_palindromic() {
        // Sexp = S''' · rS''', so reading Sexp backwards gives Sexp.
        let cfg = ExpansionConfig::new(2).unwrap();
        let sexp = cfg.expand(&seq("010 110 001"));
        assert_eq!(sexp.reversed(), sexp);
    }

    #[test]
    fn zero_n_rejected() {
        assert_eq!(ExpansionConfig::new(0), Err(ExpandError::BadRepetition { got: 0 }));
    }

    #[test]
    fn phase_display() {
        let cfg = ExpansionConfig::new(2).unwrap();
        let shown: Vec<String> = cfg.phases().iter().map(ToString::to_string).collect();
        assert_eq!(shown[0], "f--×2");
        assert_eq!(shown[3], "fcs×2");
        assert_eq!(shown[7], "r--×2");
    }
}
