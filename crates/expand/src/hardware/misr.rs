use crate::TestVector;

/// A multiple-input signature register (MISR) for output response
/// compaction.
///
/// The paper (§1) assumes the circuit's output responses are compressed
/// and compared against a precomputed fault-free signature. This model is
/// a standard type-2 LFSR with one XOR input per circuit primary output:
/// on every clock the register shifts by one position and XORs in the
/// feedback polynomial and the current output vector.
///
/// All inputs must be binary — the paper notes the circuit must be
/// synchronized before signature computation so no unknown values reach
/// the MISR; enforcing that is the caller's job (see
/// `bist_sim::LogicSim`).
///
/// # Example
///
/// ```
/// use bist_expand::hardware::Misr;
///
/// let mut a = Misr::new(8);
/// let mut b = Misr::new(8);
/// for step in 0u8..16 {
///     a.clock_bits(&[(step & 1) == 1; 8]);
///     b.clock_bits(&[(step & 1) == 1; 8]);
/// }
/// assert_eq!(a.signature(), b.signature());   // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: TestVector,
    /// Tap positions receiving the feedback bit (besides position 0).
    taps: Vec<usize>,
}

impl Misr {
    /// Creates a MISR of the given width (number of observed outputs),
    /// initialized to all zeros, with a default tap pattern.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "misr width must be positive");
        // A fixed, width-independent spread of taps. Primitivity is not
        // required for the reproduction; only determinism and mixing are.
        let taps = [1, 2, 7, 9, 12, 21, 38].into_iter().filter(|&t| t < width).collect();
        Misr { state: TestVector::zeros(width), taps }
    }

    /// Creates a MISR with explicit feedback taps (positions `< width`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or any tap is out of range.
    #[must_use]
    pub fn with_taps(width: usize, taps: Vec<usize>) -> Self {
        assert!(width > 0, "misr width must be positive");
        assert!(taps.iter().all(|&t| t < width), "tap out of range");
        Misr { state: TestVector::zeros(width), taps }
    }

    /// The register width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.state.width()
    }

    /// Resets the register to all zeros.
    pub fn reset(&mut self) {
        self.state = TestVector::zeros(self.width());
    }

    /// Clocks the register with one output response vector.
    ///
    /// # Panics
    ///
    /// Panics if `outputs.len() != width()`.
    pub fn clock_bits(&mut self, outputs: &[bool]) {
        assert_eq!(outputs.len(), self.width(), "misr input width mismatch");
        let w = self.width();
        let feedback = self.state.get(w - 1);
        let prev = self.state.clone();
        let mut next = TestVector::from_fn(w, |i| {
            let shifted = if i == 0 { feedback } else { prev.get(i - 1) };
            shifted ^ outputs[i]
        });
        if feedback {
            for &t in &self.taps {
                next.set(t, !next.get(t));
            }
        }
        self.state = next;
    }

    /// Clocks the register with a [`TestVector`] of responses.
    ///
    /// # Panics
    ///
    /// Panics if the vector width differs from the register width.
    pub fn clock_vector(&mut self, outputs: &TestVector) {
        let bits: Vec<bool> = outputs.iter().collect();
        self.clock_bits(&bits);
    }

    /// The current signature.
    #[must_use]
    pub fn signature(&self) -> &TestVector {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stream_keeps_zero_signature() {
        let mut m = Misr::new(6);
        for _ in 0..32 {
            m.clock_bits(&[false; 6]);
        }
        assert_eq!(m.signature().count_ones(), 0);
    }

    #[test]
    fn single_bit_difference_changes_signature() {
        let mut a = Misr::new(6);
        let mut b = Misr::new(6);
        for i in 0..32 {
            let mut bits = [i % 2 == 0, i % 3 == 0, false, true, i % 5 == 0, false];
            a.clock_bits(&bits);
            if i == 13 {
                bits[2] = true; // inject one faulty response bit
            }
            b.clock_bits(&bits);
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = Misr::new(10);
            for i in 0u32..100 {
                m.clock_bits(&std::array::from_fn::<bool, 10, _>(|b| (i >> (b % 8)) & 1 == 1));
            }
            m.signature().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_zero() {
        let mut m = Misr::new(4);
        m.clock_bits(&[true, false, true, true]);
        assert_ne!(m.signature().count_ones(), 0);
        m.reset();
        assert_eq!(m.signature().count_ones(), 0);
    }

    #[test]
    fn custom_taps_change_mixing() {
        let drive = |mut m: Misr| {
            for i in 0..40 {
                m.clock_bits(&[i % 2 == 0, i % 3 == 1, i % 7 == 3]);
            }
            m.signature().clone()
        };
        let a = drive(Misr::with_taps(3, vec![1]));
        let b = drive(Misr::with_taps(3, vec![2]));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut m = Misr::new(3);
        m.clock_bits(&[true; 4]);
    }

    #[test]
    fn wide_misr_works() {
        // s35932-class circuits have hundreds of outputs.
        let mut m = Misr::new(320);
        for _ in 0..10 {
            m.clock_bits(&vec![true; 320]);
        }
        assert!(m.signature().count_ones() > 0);
    }

    #[test]
    fn aliasing_free_for_short_distinct_streams() {
        // Not a primitiveness proof; just a sanity property on small cases.
        let sig = |pattern: &[bool]| {
            let mut m = Misr::new(4);
            for chunk in pattern.chunks(4) {
                let mut bits = [false; 4];
                bits[..chunk.len()].copy_from_slice(chunk);
                m.clock_bits(&bits);
            }
            m.signature().clone()
        };
        let a = sig(&[true, false, false, false, false, false, false, false]);
        let b = sig(&[false, false, false, false, true, false, false, false]);
        assert_ne!(a, b);
    }
}
