use crate::{ExpandError, TestSequence, TestVector};

/// The on-chip test memory holding one loaded subsequence.
///
/// Word width equals the number of circuit primary inputs; depth is fixed
/// at construction (the scheme sizes it for the longest subsequence in
/// `S`, cf. §1: *"the size of the memory need only be large enough to hold
/// the longest sequence contained in S"*).
///
/// # Example
///
/// ```
/// use bist_expand::hardware::TestMemory;
/// use bist_expand::TestSequence;
///
/// let mut mem = TestMemory::new(4, 3);
/// let s: TestSequence = "000 110".parse()?;
/// mem.load(&s)?;
/// assert_eq!(mem.used(), 2);
/// assert_eq!(mem.read(1).to_string(), "110");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestMemory {
    words: Vec<TestVector>,
    depth: usize,
    width: usize,
}

impl TestMemory {
    /// Creates a memory with `depth` words of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    #[must_use]
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0, "memory depth must be positive");
        assert!(width > 0, "memory width must be positive");
        TestMemory { words: Vec::with_capacity(depth), depth, width }
    }

    /// Loads a sequence, replacing the previous contents. This models the
    /// tester writing the subsequence into the memory at tester speed.
    ///
    /// # Errors
    ///
    /// [`ExpandError::WidthMismatch`] if the sequence width differs from
    /// the memory word width, and [`ExpandError::Empty`] if the sequence
    /// does not fit in `depth` words or is empty.
    pub fn load(&mut self, s: &TestSequence) -> Result<(), ExpandError> {
        if s.width() != self.width {
            return Err(ExpandError::WidthMismatch { expected: self.width, got: s.width() });
        }
        if s.is_empty() || s.len() > self.depth {
            return Err(ExpandError::Empty);
        }
        self.words.clear();
        self.words.extend(s.iter().cloned());
        Ok(())
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= used()`.
    #[must_use]
    pub fn read(&self, addr: usize) -> &TestVector {
        &self.words[addr]
    }

    /// Number of words currently loaded.
    #[must_use]
    pub fn used(&self) -> usize {
        self.words.len()
    }

    /// Total capacity in words.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total storage in bits (`depth × width`) — the hardware cost driver.
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        self.depth * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn load_and_read() {
        let mut m = TestMemory::new(8, 3);
        m.load(&seq("001 010 100")).unwrap();
        assert_eq!(m.used(), 3);
        assert_eq!(m.read(0).to_string(), "001");
        assert_eq!(m.read(2).to_string(), "100");
    }

    #[test]
    fn reload_replaces() {
        let mut m = TestMemory::new(8, 3);
        m.load(&seq("001 010 100")).unwrap();
        m.load(&seq("111")).unwrap();
        assert_eq!(m.used(), 1);
        assert_eq!(m.read(0).to_string(), "111");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut m = TestMemory::new(4, 3);
        assert_eq!(m.load(&seq("0101")), Err(ExpandError::WidthMismatch { expected: 3, got: 4 }));
    }

    #[test]
    fn overflow_rejected() {
        let mut m = TestMemory::new(2, 3);
        assert_eq!(m.load(&seq("000 001 010")), Err(ExpandError::Empty));
    }

    #[test]
    fn capacity_bits() {
        let m = TestMemory::new(16, 5);
        assert_eq!(m.capacity_bits(), 80);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = TestMemory::new(0, 3);
    }
}
