/// Result of stepping an [`UpDownCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The counter advanced without wrapping.
    Advanced,
    /// The counter wrapped around (end of a memory walk). The paper uses
    /// this event to increment the repetition counter.
    Wrapped,
}

/// A modulo-`modulus` up/down counter — the memory address counter of §2.
///
/// In up mode it counts `0, 1, …, modulus-1, 0, …`; reversal is
/// implemented by *"using an up/down counter in the down mode"*, counting
/// `modulus-1, …, 1, 0, modulus-1, …`.
///
/// # Example
///
/// ```
/// use bist_expand::hardware::{StepEvent, UpDownCounter};
///
/// let mut c = UpDownCounter::new(3);
/// assert_eq!(c.value(), 0);
/// assert_eq!(c.step_up(), StepEvent::Advanced);   // 0 -> 1
/// assert_eq!(c.step_up(), StepEvent::Advanced);   // 1 -> 2
/// assert_eq!(c.step_up(), StepEvent::Wrapped);    // 2 -> 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpDownCounter {
    value: usize,
    modulus: usize,
}

impl UpDownCounter {
    /// Creates a counter over `0..modulus`, starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    #[must_use]
    pub fn new(modulus: usize) -> Self {
        assert!(modulus > 0, "counter modulus must be positive");
        UpDownCounter { value: 0, modulus }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> usize {
        self.value
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> usize {
        self.modulus
    }

    /// Sets the value directly (used when switching walk direction).
    ///
    /// # Panics
    ///
    /// Panics if `value >= modulus`.
    pub fn set(&mut self, value: usize) {
        assert!(value < self.modulus, "counter value {value} out of range");
        self.value = value;
    }

    /// Increments modulo `modulus`, reporting a wrap at the top.
    pub fn step_up(&mut self) -> StepEvent {
        if self.value + 1 == self.modulus {
            self.value = 0;
            StepEvent::Wrapped
        } else {
            self.value += 1;
            StepEvent::Advanced
        }
    }

    /// Decrements modulo `modulus`, reporting a wrap at the bottom.
    pub fn step_down(&mut self) -> StepEvent {
        if self.value == 0 {
            self.value = self.modulus - 1;
            StepEvent::Wrapped
        } else {
            self.value -= 1;
            StepEvent::Advanced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_walk_covers_all_addresses() {
        let mut c = UpDownCounter::new(4);
        let mut seen = vec![c.value()];
        loop {
            let ev = c.step_up();
            if ev == StepEvent::Wrapped {
                break;
            }
            seen.push(c.value());
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn down_walk_covers_all_addresses() {
        let mut c = UpDownCounter::new(4);
        c.set(3);
        let mut seen = vec![c.value()];
        loop {
            let ev = c.step_down();
            if ev == StepEvent::Wrapped {
                break;
            }
            seen.push(c.value());
        }
        assert_eq!(seen, vec![3, 2, 1, 0]);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn modulus_one_always_wraps() {
        let mut c = UpDownCounter::new(1);
        assert_eq!(c.step_up(), StepEvent::Wrapped);
        assert_eq!(c.step_down(), StepEvent::Wrapped);
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut c = UpDownCounter::new(2);
        c.set(2);
    }

    #[test]
    fn up_then_down_round_trip() {
        let mut c = UpDownCounter::new(5);
        c.step_up();
        c.step_up();
        assert_eq!(c.value(), 2);
        c.step_down();
        c.step_down();
        assert_eq!(c.value(), 0);
    }
}
